"""The single labeling orchestrator: one configuration, three run modes.

Before this module, the repository had three separate pipeline entry
points — ``MAWILabPipeline.run`` for one closed trace,
``BatchRunner`` for archive fan-out, and ``StreamingPipeline`` for
sliding-window labeling — each wiring Step 1-4 on its own.
:class:`LabelingSession` unifies them: one session owns one
:class:`~repro.runner.config.PipelineConfig` (and therefore one
execution engine, one strategy, one granularity, one similarity
measure) and exposes every workload as a *run mode* of that single
configuration:

``label_trace``
    The offline 4-step method on one trace (Step 1-4, annotations
    welcome).
``label_archive``
    Archive days sharded across a process pool; workers regenerate
    each day locally, Step 1 alarms go through the shared
    :class:`~repro.runner.cache.AlarmCache`.
``label_traces``
    Arbitrary traces fanned out across the pool, shipped over the
    zero-copy shared-memory transport
    (:mod:`repro.runner.shm`) by default, or pickled on request.
``label_stream``
    The same configuration run online over a sliding window, with
    cross-window alarm dedup and label merging.

All modes share label export (:meth:`export`), and a full-coverage
stream or a one-day archive run reproduces ``label_trace`` output
byte-for-byte — the parity anchors the test suite pins.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.engine import (
    Engine,
    EngineSpec,
    resolve_engine,
    resolve_legacy_backend,
)
from repro.net.table import PacketTable
from repro.net.trace import Trace, TraceMetadata
from repro.runner import worker
from repro.runner.config import PipelineConfig, _strategy_for
from repro.runner.pool import ProgressCallback, parallel_map
from repro.runner.report import BatchReport, TraceReport
from repro.runner.shm import export_table

#: Accepted trace transports for pooled modes.  ``"auto"`` picks the
#: shared-memory transport whenever tasks actually cross a process
#: boundary (``workers > 1``) and in-process pickling-free hand-off
#: otherwise.
TRANSPORTS = ("auto", "shm", "pickle")


class LabelingSession:
    """One labeling configuration, runnable in every mode.

    Parameters
    ----------
    config:
        The pipeline description shared by all modes; defaults to the
        paper's configuration.
    engine:
        Optional engine override (any
        :func:`repro.engine.resolve_engine` spec); replaces
        ``config.engine``.
    workers:
        Process-pool size for the pooled modes; ``<= 1`` labels
        serially in-process.
    cache_dir:
        Optional directory for the Step 1 alarm cache shared by all
        workers (and by later runs with other combiners).  Keys are
        engine-agnostic — see :class:`~repro.runner.cache.AlarmCache`.
    out_dir:
        Optional directory receiving one ``labels-<date>.csv`` per
        trace in pooled modes; required for ``resume``.
    resume:
        Skip dates whose label CSV already exists in ``out_dir``.
    transport:
        How pooled traces reach workers: ``"shm"`` (zero-copy shared
        memory), ``"pickle"``, or ``"auto"``.  Archive days always use
        the cheaper regenerate-in-worker path.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        engine: EngineSpec = None,
        backend: EngineSpec = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        out_dir: Optional[str] = None,
        resume: bool = False,
        transport: str = "auto",
    ) -> None:
        engine = resolve_legacy_backend(engine, backend, what="session")
        if resume and not out_dir:
            raise ValueError("resume=True requires an out_dir")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; known: {list(TRANSPORTS)}"
            )
        config = config or PipelineConfig()
        if engine is not None:
            name = engine.name if isinstance(engine, Engine) else engine
            config = _dc_replace(config, engine=name)
        self.config = config
        #: The resolved execution engine every mode runs on.
        self.engine = resolve_engine(config.engine, what="session")
        self.workers = workers
        self.cache_dir = cache_dir
        self.out_dir = out_dir
        self.resume = resume
        self.transport = transport
        self._pipeline = None
        if out_dir:
            Path(out_dir).mkdir(parents=True, exist_ok=True)

    # -- shared wiring -------------------------------------------------

    @property
    def pipeline(self):
        """The in-process :class:`~repro.labeling.mawilab.MAWILabPipeline`.

        Built once from :attr:`config` and reused across
        :meth:`label_trace` calls; pooled modes rebuild the identical
        pipeline inside each worker from the same config.
        """
        if self._pipeline is None:
            self._pipeline = self.config.build_pipeline()
        return self._pipeline

    def streaming_pipeline(
        self, window: float, hop: Optional[float] = None
    ):
        """A streaming twin of :attr:`pipeline` (same Step 1-4 wiring)."""
        from repro.net.flow import Granularity
        from repro.stream import StreamingPipeline

        return StreamingPipeline(
            window=window,
            hop=hop,
            granularity=Granularity(self.config.granularity),
            strategy=_strategy_for(self.config.strategy),
            measure=self.config.measure,
            edge_threshold=self.config.edge_threshold,
            rule_support_pct=self.config.rule_support_pct,
            seed=self.config.seed,
            engine=self.engine,
        )

    # -- run modes -----------------------------------------------------

    def label_trace(self, trace: Trace, annotations: Sequence = ()):
        """Offline mode: the 4-step method on one closed trace."""
        return self.pipeline.run(trace, annotations=annotations)

    def label_archive(
        self,
        archive,
        dates: Sequence[str],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Archive mode: pool workers regenerate and label each day."""
        tasks = [
            worker.TraceTask(
                date=date,
                config=self.config,
                archive_seed=archive.seed,
                trace_duration=archive.trace_duration,
                cache_dir=self.cache_dir,
                out_dir=self.out_dir,
            )
            for date in dates
        ]
        return self._execute(tasks, progress)

    def label_traces(
        self,
        traces: Iterable[Trace],
        progress: Optional[ProgressCallback] = None,
        fingerprints: Optional[Sequence[Optional[str]]] = None,
        collect_alarms: bool = False,
    ) -> BatchReport:
        """Batch mode: arbitrary traces fanned out across the pool.

        Each trace is keyed by its metadata name (falling back to the
        date field), which names its output CSV and resume marker.
        With the shared-memory transport (the default whenever
        ``workers > 1``), each trace's packet table is exported to one
        segment workers attach zero-copy; a segment is freed as soon as
        its shard's report arrives, so peak shared memory is bounded by
        the shards in flight, not the corpus.

        ``fingerprints`` optionally names each trace's provenance for
        the alarm cache (index-aligned; ``None`` entries fall back to a
        content digest) — pass the archive fingerprint when shipping
        pregenerated archive days so cache keys stay
        transport-independent.

        ``collect_alarms=True`` makes every worker return its Step 1
        alarm table over the zero-copy shm result transport
        (:func:`repro.runner.shm.export_alarm_table`); the collected
        :class:`~repro.core.alarm_table.AlarmTable` objects land in
        ``BatchReport.alarm_tables`` keyed by trace name, and the
        segments are freed as each shard's report arrives.
        """
        traces = list(traces)
        if fingerprints is None:
            fingerprints = [None] * len(traces)
        elif len(fingerprints) != len(traces):
            raise ValueError("fingerprints must align with traces")
        transport = self.transport
        if transport == "auto":
            transport = "shm" if self.workers > 1 else "pickle"
        handle_of: dict[str, object] = {}
        alarm_tables: dict[str, object] = {}
        tasks = []
        try:
            for trace, fingerprint in zip(traces, fingerprints):
                name = trace.metadata.name or trace.metadata.date
                common = dict(
                    date=name,
                    config=self.config,
                    cache_dir=self.cache_dir,
                    out_dir=self.out_dir,
                    metadata=trace.metadata,
                    fingerprint=fingerprint,
                    return_alarms=collect_alarms,
                )
                if transport == "shm":
                    if name in handle_of:
                        raise ValueError(f"duplicate trace name {name!r}")
                    handle = export_table(trace.table)
                    handle_of[name] = handle
                    tasks.append(worker.TraceTask(shm=handle, **common))
                else:
                    tasks.append(worker.TraceTask(trace=trace, **common))

            def tracked_progress(done: int, total: int, report) -> None:
                # Free the shard's segment the moment its report lands.
                handle = handle_of.pop(getattr(report, "date", None), None)
                if handle is not None:
                    handle.unlink()
                result_handle = getattr(report, "alarms_shm", None)
                if result_handle is not None:
                    # Pull the worker's alarm table out of its result
                    # segment, then free it; the handle never outlives
                    # this callback.
                    try:
                        alarm_tables[report.date] = result_handle.to_table()
                    finally:
                        result_handle.unlink()
                    report.alarms_shm = None
                if progress is not None:
                    progress(done, total, report)

            batch = self._execute(tasks, tracked_progress)
            batch.alarm_tables.update(alarm_tables)
            return batch
        finally:
            for handle in handle_of.values():
                handle.unlink()

    def label_stream(
        self,
        chunks: Iterable[PacketTable],
        *,
        window: float,
        hop: Optional[float] = None,
        metadata: Optional[TraceMetadata] = None,
    ):
        """Streaming mode: sliding-window labeling of a packet stream."""
        return self.streaming_pipeline(window, hop).run(
            chunks, metadata=metadata
        )

    # -- label export ---------------------------------------------------

    @staticmethod
    def export(labels, fmt: str = "csv", trace_name: str = "trace") -> str:
        """Render labels in the public database format (csv / xml)."""
        from repro.labeling.mawilab import labels_to_csv, labels_to_xml

        if fmt == "csv":
            return labels_to_csv(labels)
        if fmt == "xml":
            return labels_to_xml(labels, trace_name=trace_name)
        raise ValueError(f"unknown label format {fmt!r}; known: csv, xml")

    # -- pooled execution ----------------------------------------------

    def _execute(
        self,
        tasks: list[worker.TraceTask],
        progress: Optional[ProgressCallback],
    ) -> BatchReport:
        seen: set[str] = set()
        for task in tasks:
            if task.date in seen:
                raise ValueError(f"duplicate trace name {task.date!r}")
            seen.add(task.date)

        pending: list[worker.TraceTask] = []
        reports: list[TraceReport] = []
        if self.resume:
            for task in tasks:
                existing = worker.csv_path_for(self.out_dir, task.date)
                if existing.is_file():
                    text = existing.read_text()
                    reports.append(
                        TraceReport(
                            date=task.date,
                            status="skipped",
                            csv_path=str(existing),
                            csv_sha256=hashlib.sha256(
                                text.encode()
                            ).hexdigest(),
                        )
                    )
                else:
                    pending.append(task)
        else:
            pending = tasks

        reports.extend(
            parallel_map(
                worker.run_task,
                pending,
                workers=self.workers,
                progress=progress,
            )
        )
        reports.sort(key=lambda r: r.date)
        return BatchReport(reports=reports)
