"""Traffic extractor (the "oracle" of the predecessor paper).

Retrieves the traffic described by each alarm at a chosen granularity
(paper Section 2.1.1).  The extracted traffic of an alarm is a set:

* packet granularity — a set of packet indices into the trace;
* uniflow / biflow granularity — a set of flow keys.

The granularity choice is the estimator's central trade-off (Fig. 1 and
Fig. 3): packets give precise but fragmented associations, flows relate
alarms that touch different packets of the same conversation.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.detectors.base import Alarm
from repro.net.flow import FlowKey, Granularity, biflow_key, uniflow_key
from repro.net.trace import Trace


class TrafficExtractor:
    """Extracts, per alarm, the associated traffic set.

    The extractor precomputes per-packet flow keys once per trace so
    that each alarm extraction costs only its own time window.
    """

    def __init__(self, trace: Trace, granularity: Granularity = Granularity.UNIFLOW) -> None:
        self.trace = trace
        self.granularity = granularity
        # Per-packet flow keys (lazy by granularity need).
        self._uniflow_of: list[FlowKey] = [uniflow_key(p) for p in trace]
        if granularity is Granularity.BIFLOW:
            self._biflow_of: list[FlowKey] = [biflow_key(p) for p in trace]
        else:
            self._biflow_of = []
        # Uniflow key -> packet indices, for flow-key alarms.
        self._uniflow_index: dict[FlowKey, list[int]] = {}
        for i, key in enumerate(self._uniflow_of):
            self._uniflow_index.setdefault(key, []).append(i)

    def extract(self, alarm: Alarm) -> FrozenSet:
        """Traffic set of one alarm at this extractor's granularity."""
        indices = self._packet_indices(alarm)
        if self.granularity is Granularity.PACKET:
            return frozenset(indices)
        if self.granularity is Granularity.UNIFLOW:
            return frozenset(self._uniflow_of[i] for i in indices)
        return frozenset(self._biflow_of[i] for i in indices)

    def extract_all(self, alarms: list[Alarm]) -> list[FrozenSet]:
        """Traffic sets for a list of alarms (index-aligned)."""
        return [self.extract(alarm) for alarm in alarms]

    def _packet_indices(self, alarm: Alarm) -> set[int]:
        """Packet indices designated by the alarm (filters + flow keys)."""
        trace = self.trace
        indices: set[int] = set()
        for feature_filter in alarm.filters:
            t0 = feature_filter.t0 if feature_filter.t0 is not None else alarm.t0
            t1 = feature_filter.t1 if feature_filter.t1 is not None else alarm.t1
            for i in trace.time_slice(t0, t1):
                if feature_filter.matches(trace[i]):
                    indices.add(i)
        if alarm.flow_keys:
            for key in alarm.flow_keys:
                for i in self._uniflow_index.get(key, ()):
                    if alarm.t0 <= trace[i].time < alarm.t1 or (
                        trace[i].time == alarm.t1 == trace.end_time
                    ):
                        indices.add(i)
        return indices

    def packets_of(self, traffic: FrozenSet) -> list[int]:
        """Expand a traffic set back to packet indices.

        For packet granularity this is the identity; for flow
        granularities it returns every packet of every listed flow.
        Used by the heuristics and the rule miner, which need packets.
        """
        if self.granularity is Granularity.PACKET:
            return sorted(int(i) for i in traffic)
        if self.granularity is Granularity.UNIFLOW:
            result: list[int] = []
            for key in traffic:
                result.extend(self._uniflow_index.get(key, ()))
            return sorted(result)
        # Biflow: collect both directions via the biflow key map.
        wanted = set(traffic)
        return sorted(
            i for i, key in enumerate(self._biflow_of) if key in wanted
        )
