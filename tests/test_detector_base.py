"""Unit tests for repro.detectors.base and registry."""

import pytest

from repro.detectors.base import Alarm, Configuration
from repro.detectors.registry import (
    DETECTOR_NAMES,
    default_ensemble,
    detector_for_config,
    run_ensemble,
)
from repro.errors import DetectorError
from repro.net.filters import FeatureFilter


class TestAlarm:
    def test_requires_traffic_designation(self):
        with pytest.raises(DetectorError):
            Alarm(detector="x", config="x/y", t0=0.0, t1=1.0)

    def test_rejects_negative_window(self):
        with pytest.raises(DetectorError):
            Alarm(
                detector="x",
                config="x/y",
                t0=2.0,
                t1=1.0,
                filters=(FeatureFilter(src=1),),
            )

    def test_describe(self):
        alarm = Alarm(
            detector="pca",
            config="pca/optimal",
            t0=0.0,
            t1=1.0,
            filters=(FeatureFilter(src=0x01020304),),
        )
        text = alarm.describe()
        assert "pca/optimal" in text
        assert "1.2.3.4" in text

    def test_hashable(self):
        a = Alarm(
            detector="x", config="x/y", t0=0.0, t1=1.0,
            filters=(FeatureFilter(src=1),),
        )
        assert a in {a}


class TestConfiguration:
    def test_name(self):
        config = Configuration(detector="kl", tuning="sensitive")
        assert config.name == "kl/sensitive"

    def test_params_dict(self):
        config = Configuration(
            detector="kl", tuning="optimal", params=(("threshold", 3.0),)
        )
        assert config.params_dict() == {"threshold": 3.0}


class TestDetectorBase:
    def test_unknown_parameter_rejected(self):
        from repro.detectors.pca import PCADetector

        with pytest.raises(DetectorError):
            PCADetector(not_a_param=1)

    def test_param_override(self):
        from repro.detectors.pca import PCADetector

        detector = PCADetector(threshold=9.0)
        assert detector.params["threshold"] == 9.0

    def test_config_name(self):
        from repro.detectors.kl import KLDetector

        assert KLDetector(tuning="sensitive").config_name == "kl/sensitive"


class TestRegistry:
    def test_default_ensemble_is_twelve(self):
        ensemble = default_ensemble()
        assert len(ensemble) == 12
        names = [d.config_name for d in ensemble]
        assert len(set(names)) == 12
        families = {n.split("/")[0] for n in names}
        assert families == set(DETECTOR_NAMES)

    def test_subset_selection(self):
        ensemble = default_ensemble(detectors=["kl"], tunings=["optimal"])
        assert [d.config_name for d in ensemble] == ["kl/optimal"]

    def test_unknown_detector_rejected(self):
        with pytest.raises(DetectorError):
            default_ensemble(detectors=["nope"])

    def test_unknown_tuning_rejected(self):
        with pytest.raises(DetectorError):
            default_ensemble(tunings=["wild"])

    def test_detector_for_config(self):
        detector = detector_for_config("gamma/sensitive")
        assert detector.config_name == "gamma/sensitive"

    def test_detector_for_config_bad_name(self):
        with pytest.raises(DetectorError):
            detector_for_config("gamma")
        with pytest.raises(DetectorError):
            detector_for_config("nope/optimal")

    def test_run_ensemble_stamps_configs(self, archive_day):
        alarms = run_ensemble(
            archive_day.trace, default_ensemble(detectors=["kl"])
        )
        assert all(a.detector == "kl" for a in alarms)
