"""Unit tests for the correspondence-analysis implementation."""

import numpy as np
import pytest

from repro.core.correspondence import CorrespondenceAnalysis
from repro.errors import CombinerError


def block_table(n_per_block=5):
    """Two clearly separated row blocks."""
    a = np.tile([5.0, 5.0, 0.0, 0.0], (n_per_block, 1))
    b = np.tile([0.0, 0.0, 5.0, 5.0], (n_per_block, 1))
    return np.vstack([a, b])


class TestValidation:
    def test_rejects_negative(self):
        with pytest.raises(CombinerError):
            CorrespondenceAnalysis(np.array([[1.0, -1.0]]))

    def test_rejects_empty(self):
        with pytest.raises(CombinerError):
            CorrespondenceAnalysis(np.zeros((0, 3)))

    def test_rejects_all_zero_row(self):
        with pytest.raises(CombinerError):
            CorrespondenceAnalysis(np.array([[1.0, 1.0], [0.0, 0.0]]))

    def test_rejects_1d(self):
        with pytest.raises(CombinerError):
            CorrespondenceAnalysis(np.array([1.0, 2.0]))

    def test_drops_zero_columns(self):
        table = np.array([[1.0, 0.0, 2.0], [2.0, 0.0, 1.0]])
        ca = CorrespondenceAnalysis(table)
        assert list(ca.kept_columns) == [0, 2]


class TestGeometry:
    def test_identical_rows_coincide(self):
        table = np.array([[3.0, 1.0], [3.0, 1.0], [6.0, 2.0], [1.0, 5.0]])
        ca = CorrespondenceAnalysis(table)
        coords = ca.row_coordinates
        # Rows 0, 1, 2 share the same profile -> same CA point.
        assert np.allclose(coords[0], coords[1])
        assert np.allclose(coords[0], coords[2])
        assert not np.allclose(coords[0], coords[3])

    def test_blocks_separate_on_first_axis(self):
        ca = CorrespondenceAnalysis(block_table())
        first_axis = ca.row_coordinates[:, 0]
        assert np.sign(first_axis[:5]).std() == 0  # one block same sign
        assert np.sign(first_axis[0]) != np.sign(first_axis[5])

    def test_transition_formula(self):
        """Projecting the fit table's own rows reproduces row coords."""
        rng = np.random.default_rng(3)
        table = rng.integers(0, 6, size=(8, 5)).astype(float) + 0.5
        ca = CorrespondenceAnalysis(table)
        projected = ca.project_rows(table)
        assert np.allclose(projected, ca.row_coordinates, atol=1e-8)

    def test_n_components_limits(self):
        ca = CorrespondenceAnalysis(block_table(), n_components=1)
        assert ca.n_components == 1
        assert ca.row_coordinates.shape[1] == 1

    def test_constant_columns_carry_no_inertia(self):
        """A detector always voting identically does not discriminate.

        With equal row sums (as vote-indicator tables have), a constant
        column contributes zero chi-square residual; the total inertia
        merely rescales by the mass fraction of the original columns.
        """
        rng = np.random.default_rng(0)
        votes = rng.integers(0, 2, size=(20, 3)).astype(float)
        indicator = np.zeros((20, 6))
        indicator[:, 0::2] = votes
        indicator[:, 1::2] = 1 - votes
        constant = np.ones((20, 1))
        with_constant = CorrespondenceAnalysis(
            np.hstack([indicator, constant])
        )
        without = CorrespondenceAnalysis(indicator)
        mass_fraction = indicator.sum() / (indicator.sum() + constant.sum())
        assert with_constant.inertia.sum() == pytest.approx(
            without.inertia.sum() * mass_fraction, rel=1e-6
        )

    def test_zero_supplementary_row_maps_to_origin(self):
        ca = CorrespondenceAnalysis(block_table())
        point = ca.project_rows(np.zeros(4))
        assert np.allclose(point, 0.0)

    def test_inertia_nonnegative_and_sorted(self):
        ca = CorrespondenceAnalysis(block_table())
        inertia = ca.inertia
        assert (inertia >= 0).all()
        assert all(a >= b for a, b in zip(inertia, inertia[1:]))
