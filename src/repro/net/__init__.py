"""Network substrate: packets, flows, traces and pcap I/O.

This subpackage provides the minimal — but complete — network data model
the MAWILab pipeline operates on.  MAWI traces are header-only (payload
stripped, addresses anonymized), so a packet here is a 5-tuple plus
timestamp, size, TCP flags and ICMP type.

The flow abstractions mirror the three traffic granularities evaluated in
the paper (Section 2.1.1): individual packets, unidirectional flows and
bidirectional flows.
"""

from repro.net.addresses import (
    PrefixPreservingAnonymizer,
    ip_to_int,
    ip_to_str,
    is_private,
    random_host_in,
)
from repro.net.packet import (
    FIN,
    SYN,
    RST,
    PSH,
    ACK,
    URG,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    flag_names,
)
from repro.net.flow import (
    Flow,
    FlowKey,
    Granularity,
    aggregate_flows,
    biflow_key,
    uniflow_key,
)
from repro.net.table import (
    PacketTable,
    aggregate_flows_table,
    flow_codes,
)
from repro.net.trace import Trace, TraceMetadata, merge_traces
from repro.net.pcap import read_pcap, write_pcap
from repro.net.stats import TraceStats, compute_stats
from repro.net.filters import (
    FeatureFilter,
    match_mask,
    match_packet,
)

__all__ = [
    "PrefixPreservingAnonymizer",
    "ip_to_int",
    "ip_to_str",
    "is_private",
    "random_host_in",
    "FIN",
    "SYN",
    "RST",
    "PSH",
    "ACK",
    "URG",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "flag_names",
    "Flow",
    "FlowKey",
    "Granularity",
    "aggregate_flows",
    "biflow_key",
    "uniflow_key",
    "PacketTable",
    "aggregate_flows_table",
    "flow_codes",
    "Trace",
    "TraceMetadata",
    "merge_traces",
    "read_pcap",
    "write_pcap",
    "TraceStats",
    "compute_stats",
    "FeatureFilter",
    "match_mask",
    "match_packet",
]
