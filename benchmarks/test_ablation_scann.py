"""Ablations on the SCANN combiner.

1. **Dimensionality** — SCANN with the default reduced space vs SCANN
   keeping every CA axis (``n_components=None``).  The reduction is
   the method's point; removing it must not improve the attack-ratio
   contrast much, and typically hurts acceptance volume.
2. **Threshold sweep** — Section 4.2.3: accepting rejected communities
   within relative distance 0.5 trades attack ratio for coverage; the
   paper saw no global improvement.  The sweep reports attack ratio as
   the acceptance boundary loosens.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.core.scann import SCANNStrategy
from repro.eval.metrics import attack_ratio
from repro.eval.report import format_table


def test_ablation_scann_dimensionality(corpus, pipeline, benchmark):
    def compute():
        results = {}
        for label, components in (("reduced(k=2)", 2), ("full", None)):
            strategy = SCANNStrategy(n_components=components)
            accepted, rejected = [], []
            for day in corpus:
                decisions = strategy.classify(
                    day.result.community_set, pipeline.config_names
                )
                for decision, heuristic in zip(decisions, day.heuristics):
                    (accepted if decision.accepted else rejected).append(
                        heuristic
                    )
            results[label] = {
                "n_acc": len(accepted),
                "acc_ratio": attack_ratio(accepted),
                "rej_ratio": attack_ratio(rejected),
            }
        return results

    results = run_once(benchmark, compute)
    rows = [
        [k, v["n_acc"], v["acc_ratio"], v["rej_ratio"]]
        for k, v in results.items()
    ]
    print()
    print(
        format_table(
            ["variant", "#accepted", "accepted ratio", "rejected ratio"],
            rows,
            title="Ablation — SCANN dimensionality reduction",
        )
    )

    reduced = results["reduced(k=2)"]
    full = results["full"]
    # Both discriminate.
    assert reduced["acc_ratio"] > reduced["rej_ratio"]
    assert full["acc_ratio"] > full["rej_ratio"]
    # The reduced space accepts at least as many communities (it is
    # what lets SCANN trust partially corroborated communities).
    assert reduced["n_acc"] >= full["n_acc"] * 0.8


def test_ablation_scann_threshold_sweep(corpus, pipeline, benchmark):
    def compute():
        strategy = SCANNStrategy()
        sweep = []
        for boundary in (0.0, 0.25, 0.5, 1.0, 2.0):
            accepted_labels = []
            n_accepted = 0
            for day in corpus:
                decisions = strategy.classify(
                    day.result.community_set, pipeline.config_names
                )
                for decision, heuristic in zip(decisions, day.heuristics):
                    take = decision.accepted or (
                        decision.relative_distance is not None
                        and decision.relative_distance <= boundary
                        and not decision.accepted
                    )
                    if take:
                        accepted_labels.append(heuristic)
                        n_accepted += 1
            sweep.append(
                (boundary, n_accepted, attack_ratio(accepted_labels))
            )
        return sweep

    sweep = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["extra boundary", "#accepted", "attack ratio"],
            sweep,
            title="Ablation — accepting rejected communities near the boundary",
        )
    )

    # Coverage grows monotonically with the boundary.
    counts = [n for _, n, _ in sweep]
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    # The paper's observation: loosening the boundary brings no global
    # attack-ratio improvement over strict SCANN.
    strict_ratio = sweep[0][2]
    loosest_ratio = sweep[-1][2]
    assert loosest_ratio <= strict_ratio + 0.05
