"""The ``backend=`` convention shared by every vectorized layer.

Layers with a columnar fast path (filters, extractor, detectors,
graph, heuristics, cache keys) accept ``backend="auto" | "numpy" |
"python"`` and resolve it through this single helper, so validation
and the meaning of ``"auto"`` cannot drift between layers.
"""

from __future__ import annotations

BACKENDS = ("auto", "numpy", "python")


def resolve_backend(backend: str, *, what: str = "engine") -> str:
    """Normalize a backend choice to ``"numpy"`` or ``"python"``.

    ``"auto"`` resolves to ``"numpy"``; anything outside
    :data:`BACKENDS` raises ``ValueError`` naming the offending layer.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown {what} backend {backend!r}; known: {list(BACKENDS)}"
        )
    return "numpy" if backend in ("auto", "numpy") else "python"
