"""Streaming engine acceptance: bounded memory, live throughput.

The ROADMAP's online workload claims two things the offline pipeline
cannot: labels arrive per window while the stream is still running,
and steady-state memory is bounded by the *window*, not the stream.
This benchmark pins both on a long synthetic day:

* the ring buffer's packet high-water mark stays a window-sized
  fraction of the stream (streaming never buffers the whole trace);
* the stream labels at a usable rate (packets/sec reported, sanity
  floor asserted) and produces labels overlapping the offline run's.
"""

from __future__ import annotations

from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv
from repro.mawi.archive import SyntheticArchive
from repro.stream import StreamingPipeline, chunk_table

from benchmarks.conftest import ARCHIVE_SEED

BENCH_DATE = "2005-06-01"
STREAM_DURATION = 90.0
WINDOW = 15.0
HOP = 7.5


def _long_trace():
    archive = SyntheticArchive(
        seed=ARCHIVE_SEED, trace_duration=STREAM_DURATION
    )
    return archive.day(BENCH_DATE).trace


def test_streaming_memory_bounded_and_throughput():
    trace = _long_trace()
    pipeline = StreamingPipeline(window=WINDOW, hop=HOP)
    result = pipeline.run(
        chunk_table(trace.table, 2048), metadata=trace.metadata
    )
    stats = result.stats

    assert stats.total_packets == len(trace)
    assert stats.n_windows >= int(STREAM_DURATION / HOP) - 2

    # Bounded steady-state memory: the ring's high-water mark is a
    # window-sized fraction of the stream.  The window spans 1/6 of
    # the trace; allow bursty days a 2x margin plus chunk slack.
    window_fraction = WINDOW / STREAM_DURATION
    bound = int(len(trace) * window_fraction * 2.0) + 2048
    assert stats.peak_ring_packets <= bound, (
        f"ring peaked at {stats.peak_ring_packets} packets "
        f"(bound {bound}, stream {len(trace)})"
    )

    # Live throughput: labeling keeps up with a meaningful packet rate
    # and p95 window latency is finite and recorded.
    assert stats.packets_per_sec > 1000, stats.to_dict()
    assert 0 < stats.p95_latency < 60.0
    assert len(result.labels) > 0


def test_streaming_full_window_parity_benchmark_trace():
    """Full-coverage streaming byte-matches offline on the benchmark
    day (the acceptance anchor, at benchmark scale)."""
    archive = SyntheticArchive(seed=ARCHIVE_SEED, trace_duration=30.0)
    trace = archive.day(BENCH_DATE).trace
    offline = labels_to_csv(MAWILabPipeline().run(trace).labels)
    streamed = (
        StreamingPipeline(window=10 * 30.0)
        .run(chunk_table(trace.table, 4096), metadata=trace.metadata)
        .to_csv()
    )
    assert streamed == offline
