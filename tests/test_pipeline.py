"""Integration tests for the end-to-end MAWILab pipeline."""


from repro.core.strategies import AverageStrategy
from repro.labeling.mawilab import (
    MAWILabPipeline,
    labels_to_csv,
    labels_to_xml,
)
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.flow import Granularity


class TestPipelineRun:
    def test_result_structure(self, pipeline_result):
        result = pipeline_result
        assert result.alarms
        assert result.community_set.communities
        assert len(result.decisions) == len(result.community_set.communities)
        assert len(result.labels) == len(result.decisions)
        assert len(result.config_names) == 12

    def test_taxonomy_partition(self, pipeline_result):
        labels = pipeline_result.labels
        anomalous = pipeline_result.anomalous()
        suspicious = pipeline_result.suspicious()
        notice = pipeline_result.notice()
        assert len(anomalous) + len(suspicious) + len(notice) == len(labels)

    def test_labels_have_rules_or_empty_traffic(self, pipeline_result):
        for record, community in zip(
            pipeline_result.labels, pipeline_result.community_set.communities
        ):
            if community.traffic:
                assert record.summary.n_transactions > 0

    def test_detectors_recorded(self, pipeline_result):
        for record in pipeline_result.labels:
            assert record.detectors
            assert all(
                d in ("pca", "gamma", "hough", "kl") for d in record.detectors
            )

    def test_scann_relative_distance_present(self, pipeline_result):
        assert all(
            r.relative_distance is not None for r in pipeline_result.labels
        )


class TestPipelineDetection:
    def test_detects_planted_attack(self):
        spec = WorkloadSpec(
            seed=77,
            duration=30.0,
            anomalies=[
                AnomalySpec("sasser", intensity=2.0),
                AnomalySpec("ping_flood", intensity=2.0),
            ],
        )
        trace, events = generate_trace(spec)
        result = MAWILabPipeline().run(trace)
        categories = {
            (r.heuristic.category, r.heuristic.detail)
            for r in result.anomalous()
        }
        # At least one injected attack should surface as an accepted
        # attack-labeled community.
        assert any(cat == "attack" for cat, _ in categories)

    def test_run_with_alarms_reuses_detections(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline()
        result = pipeline.run_with_alarms(archive_day.trace, day_alarms)
        assert len(result.alarms) == len(day_alarms)

    def test_alternative_strategy(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline(strategy=AverageStrategy())
        result = pipeline.run_with_alarms(archive_day.trace, day_alarms)
        assert all(r.relative_distance is None for r in result.labels)

    def test_packet_granularity(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline(granularity=Granularity.PACKET)
        result = pipeline.run_with_alarms(archive_day.trace, day_alarms)
        assert result.community_set.granularity is Granularity.PACKET
        assert result.labels


class TestExports:
    def test_csv(self, pipeline_result):
        csv = labels_to_csv(pipeline_result.labels)
        lines = csv.strip().split("\n")
        assert lines[0].startswith("community,taxonomy")
        assert len(lines) > len(pipeline_result.labels) * 0  # rules rows
        assert len(lines) >= 1 + len(pipeline_result.labels)

    def test_csv_taxonomy_values(self, pipeline_result):
        csv = labels_to_csv(pipeline_result.labels)
        for line in csv.strip().split("\n")[1:]:
            taxonomy = line.split(",")[1]
            assert taxonomy in ("anomalous", "suspicious", "notice")

    def test_xml_well_formed(self, pipeline_result):
        import xml.etree.ElementTree as ET

        xml = labels_to_xml(pipeline_result.labels, trace_name="t")
        root = ET.fromstring(xml)
        assert root.tag == "admd"
        anomalies = list(root)
        assert len(anomalies) == len(pipeline_result.labels)
        for element in anomalies:
            assert element.get("type") in ("anomalous", "suspicious", "notice")

    def test_label_describe(self, pipeline_result):
        text = pipeline_result.labels[0].describe()
        assert "alarms=" in text

    def test_xml_escapes_hostile_strings_round_trip(self):
        """&, <, > in filter/rule strings survive a parse round trip.

        The canonical rule rendering is ``<ip, port, ip, port>`` — all
        angle brackets — and heuristic details / annotation tags are
        free-form; none of them may break the XML.
        """
        import xml.etree.ElementTree as ET

        from repro.labeling.heuristics import HeuristicLabel
        from repro.labeling.mawilab import LabelRecord
        from repro.rules.itemsets import Rule
        from repro.rules.summarize import CommunitySummary

        rule = Rule(src=0x0A000001, sport=80, support=0.75, count=3)
        record = LabelRecord(
            community_id=0,
            taxonomy="anomalous",
            heuristic=HeuristicLabel(
                category="attack", detail='ports<1024 & "odd">'
            ),
            summary=CommunitySummary(rules=[rule]),
            t0=1.0,
            t1=2.0,
            n_alarms=4,
            detectors=("kl",),
            annotations=("p2p & <tagged>", "plain"),
        )
        xml = labels_to_xml(
            [record], trace_name='trace <&> "quoted"'
        )
        root = ET.fromstring(xml)  # raises on any unescaped & < >
        assert root.get("trace") == 'trace <&> "quoted"'
        anomaly = root.find("anomaly")
        assert anomaly.get("heuristic") == 'attack:ports<1024 & "odd">'
        filter_element = anomaly.find("filter")
        assert filter_element.get("rule") == rule.describe()
        assert "<" in rule.describe() and ">" in rule.describe()
        assert filter_element.text == "src_ip=10.0.0.1 src_port=80"
        tags = [e.text for e in anomaly.findall("annotation")]
        assert tags == ["p2p & <tagged>", "plain"]

    def test_xml_round_trip_on_pipeline_output(self, pipeline_result):
        import xml.etree.ElementTree as ET

        xml = labels_to_xml(pipeline_result.labels, trace_name="t")
        root = ET.fromstring(xml)
        for element, record in zip(root, pipeline_result.labels):
            rules = element.findall("filter")
            assert len(rules) == len(record.summary.rules)
            for parsed, rule in zip(rules, record.summary.rules):
                assert parsed.get("rule") == rule.describe()
                assert parsed.get("support") == f"{rule.support:.3f}"
