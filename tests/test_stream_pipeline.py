"""Streaming engine tests: parity, deltas, warm starts, dedup.

The central acceptance property: with one window covering the whole
trace, the streaming pipeline's CSV is byte-identical to the offline
:class:`~repro.labeling.mawilab.MAWILabPipeline`'s on both engines.
Around it, unit tests pin the incremental graph's delta algebra, the
Louvain warm start and the cross-window label merging.
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicSimilarityGraph
from repro.core.graph import SimilarityGraph, build_similarity_graph
from repro.core.louvain import louvain, modularity
from repro.errors import GraphError, StreamError
from repro.labeling.mawilab import labels_to_csv
from repro.net.flow import Granularity
from repro.stream import StreamingPipeline, chunk_table


# -- incremental similarity graph --------------------------------------


class TestDynamicGraph:
    def test_matches_offline_builder(self):
        sets = [
            frozenset({"a", "b", "c"}),
            frozenset({"b", "c", "d"}),
            frozenset({"x"}),
            frozenset({"c", "x"}),
        ]
        dynamic = DynamicSimilarityGraph(measure="simpson")
        dynamic.add_alarms(sets)
        graph, node_of = dynamic.build()
        reference = build_similarity_graph(sets, engine="python")
        assert node_of == {0: 0, 1: 1, 2: 2, 3: 3}
        assert _ordered(graph) == _ordered(reference)

    def test_expiry_equals_rebuild_without_expired(self):
        sets = [
            frozenset({1, 2, 3}),
            frozenset({2, 3}),
            frozenset({3, 4}),
            frozenset({4, 5}),
        ]
        dynamic = DynamicSimilarityGraph(measure="jaccard")
        ids = dynamic.add_alarms(sets)
        dynamic.expire_alarms([ids[1]])
        graph, node_of = dynamic.build()
        survivors = [sets[0], sets[2], sets[3]]
        reference = build_similarity_graph(
            survivors, measure="jaccard", engine="python"
        )
        assert graph.n_nodes == 3
        assert _ordered(graph) == _ordered(reference)
        # Stable ids: survivors keep their original ids, compacted.
        assert node_of == {ids[0]: 0, ids[2]: 1, ids[3]: 2}

    def test_interleaved_deltas_match_final_population(self):
        rng = np.random.default_rng(3)
        dynamic = DynamicSimilarityGraph(measure="simpson")
        live: dict[int, frozenset] = {}
        for step in range(60):
            if live and rng.random() < 0.35:
                victim = int(rng.choice(sorted(live)))
                dynamic.expire_alarms([victim])
                del live[victim]
            else:
                traffic = frozenset(
                    int(v) for v in rng.integers(0, 12, rng.integers(1, 6))
                )
                live[dynamic.add_alarm(traffic)] = traffic
        graph, node_of = dynamic.build()
        ordered_ids = sorted(live)
        reference = build_similarity_graph(
            [live[i] for i in ordered_ids], engine="python"
        )
        assert _ordered(graph) == _ordered(reference)

    def test_intersection_accessor(self):
        dynamic = DynamicSimilarityGraph()
        a = dynamic.add_alarm({1, 2, 3})
        b = dynamic.add_alarm({2, 3, 4})
        assert dynamic.intersection(a, b) == 2
        assert dynamic.intersection(b, a) == 2
        dynamic.expire_alarms([a])
        assert dynamic.intersection(a, b) == 0

    def test_expire_unknown_raises(self):
        dynamic = DynamicSimilarityGraph()
        with pytest.raises(GraphError):
            dynamic.expire_alarms([7])

    def test_unknown_measure_raises(self):
        with pytest.raises(GraphError):
            DynamicSimilarityGraph(measure="nope")


def _ordered(graph: SimilarityGraph):
    return {
        node: list(neighbors.items())
        for node, neighbors in graph.adjacency.items()
    }


# -- louvain warm start ------------------------------------------------


def _ring_of_cliques(n_cliques: int = 4, size: int = 4) -> SimilarityGraph:
    graph = SimilarityGraph(n_nodes=n_cliques * size)
    for c in range(n_cliques):
        base = c * size
        for i in range(size):
            for j in range(i + 1, size):
                graph.add_edge(base + i, base + j, 1.0)
        graph.add_edge(
            base + size - 1, ((c + 1) % n_cliques) * size, 0.1
        )
    return graph


class TestLouvainWarmStart:
    def test_default_is_cold_start(self):
        graph = _ring_of_cliques()
        assert louvain(graph, seed=3) == louvain(
            graph, seed=3, seed_partition=None
        )

    def test_seeding_with_result_is_stable(self):
        graph = _ring_of_cliques()
        cold = louvain(graph, seed=0)
        warm = louvain(graph, seed=0, seed_partition=cold)
        assert modularity(graph, warm) >= modularity(graph, cold) - 1e-12

    def test_warm_start_escapes_glued_seed(self):
        # All nodes seeded into one mega-community: refinement must
        # split it back apart instead of keeping the glue.
        graph = _ring_of_cliques()
        glued = {node: 0 for node in range(graph.n_nodes)}
        warm = louvain(graph, seed=0, seed_partition=glued)
        cold = louvain(graph, seed=0)
        assert len(set(warm.values())) > 1
        assert modularity(graph, warm) >= modularity(graph, cold) - 1e-9

    def test_partial_seed_gives_new_nodes_singletons(self):
        graph = _ring_of_cliques(n_cliques=2, size=3)
        seed_partition = {0: 0, 1: 0}  # nodes 2..5 unseeded
        partition = louvain(graph, seed=1, seed_partition=seed_partition)
        assert set(partition) == set(range(graph.n_nodes))
        labels = set(partition.values())
        assert labels == set(range(len(labels)))  # contiguous

    def test_warm_start_deterministic(self):
        graph = _ring_of_cliques(5, 3)
        seed_partition = {node: node % 3 for node in range(graph.n_nodes)}
        first = louvain(graph, seed=9, seed_partition=seed_partition)
        second = louvain(graph, seed=9, seed_partition=dict(seed_partition))
        assert first == second

    def test_empty_graph_warm_start(self):
        graph = SimilarityGraph(n_nodes=3)
        partition = louvain(graph, seed_partition={0: 0, 1: 0, 2: 1})
        assert set(partition) == {0, 1, 2}


# -- streaming pipeline ------------------------------------------------


@pytest.fixture(scope="module")
def archive_trace():
    from repro.mawi.archive import SyntheticArchive

    return SyntheticArchive(seed=2010, trace_duration=20.0).day(
        "2005-06-01"
    ).trace


class TestStreamingParity:
    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_full_window_matches_offline_csv(self, archive_trace, engine):
        from repro.labeling.mawilab import MAWILabPipeline

        offline = labels_to_csv(
            MAWILabPipeline(engine=engine).run(archive_trace).labels
        )
        pipeline = StreamingPipeline(window=1e9, engine=engine)
        result = pipeline.run(
            chunk_table(archive_trace.table, 400),
            metadata=archive_trace.metadata,
        )
        assert len(result.windows) == 1
        assert result.to_csv() == offline

    def test_chunk_size_invariance(self, archive_trace):
        outputs = {
            chunk: StreamingPipeline(window=1e9)
            .run(chunk_table(archive_trace.table, chunk))
            .to_csv()
            for chunk in (100, 1000, 10**6)
        }
        assert len(set(outputs.values())) == 1


class TestStreamingWindows:
    def test_hop_emits_expected_windows(self, archive_trace):
        pipeline = StreamingPipeline(window=8.0, hop=4.0)
        result = pipeline.run(chunk_table(archive_trace.table, 300))
        assert result.stats.n_windows >= 3
        # Windows advance by hop.
        starts = [w.t0 for w in result.windows[:-1]]
        assert all(
            b - a == pytest.approx(4.0) for a, b in zip(starts, starts[1:])
        )
        # Ring stays bounded below the whole trace.
        assert result.stats.peak_ring_packets < len(archive_trace)
        assert result.stats.total_packets == len(archive_trace)
        assert result.stats.packets_per_sec > 0
        assert result.stats.p95_latency >= max(
            w.latency for w in result.windows
        ) * 0.0  # non-negative, defined
        assert len(result.stats.window_latencies) == len(result.windows)

    def test_overlap_merges_labels_with_extended_spans(self, archive_trace):
        pipeline = StreamingPipeline(window=8.0, hop=4.0)
        result = pipeline.run(chunk_table(archive_trace.table, 300))
        per_window = sum(len(w.labels) for w in result.windows)
        assert 0 < len(result.labels) < per_window
        assert any(
            label.t1 - label.t0 > 8.0 + 1e-9 for label in result.labels
        )
        # Renumbered contiguously.
        assert [label.community_id for label in result.labels] == list(
            range(len(result.labels))
        )

    def test_overlap_dedupes_alarms(self, archive_trace):
        pipeline = StreamingPipeline(window=8.0, hop=4.0)
        result = pipeline.run(chunk_table(archive_trace.table, 300))
        later = result.windows[1:]
        assert all(w.n_new_alarms <= w.n_live_alarms for w in later)
        # At least one window carried alarms over instead of
        # re-detecting everything from scratch.
        assert any(w.n_new_alarms < w.n_live_alarms for w in later)

    def test_expired_alarms_leave_the_graph(self, archive_trace):
        pipeline = StreamingPipeline(window=5.0, hop=5.0)
        result = pipeline.run(chunk_table(archive_trace.table, 300))
        # Tumbling windows: no alarm survives its window, so the live
        # population equals each window's own detections.
        final_live = pipeline._graph.n_live
        assert final_live == result.windows[-1].n_live_alarms
        assert final_live < sum(w.n_new_alarms for w in result.windows)


class TestLabelMerging:
    def test_same_key_interleaved_labels_keep_emission_order(self):
        """Within one window, same-key labels interleaved with others
        must come out in emission order — the offline CSV order."""
        from dataclasses import replace as dc_replace

        from repro.labeling.heuristics import HeuristicLabel
        from repro.labeling.mawilab import LabelRecord
        from repro.rules.summarize import CommunitySummary

        def record(community_id, detail, t0, t1):
            return LabelRecord(
                community_id=community_id,
                taxonomy="notice",
                heuristic=HeuristicLabel(category="unknown", detail=detail),
                summary=CommunitySummary(),
                t0=t0,
                t1=t1,
                n_alarms=1,
                detectors=("kl",),
            )

        pipeline = StreamingPipeline(window=10.0)
        emitted = [
            record(0, "Unknown", 0.0, 5.0),
            record(1, "Other", 1.0, 2.0),
            record(2, "Unknown", 3.0, 6.0),  # same key as the first
        ]
        pipeline._merge_labels(emitted)
        merged = pipeline.merged_labels()
        assert [r.heuristic.detail for r in merged] == [
            "Unknown",
            "Other",
            "Unknown",
        ]
        assert [r.community_id for r in merged] == [0, 1, 2]
        assert [(r.t0, r.t1) for r in merged] == [
            (r.t0, r.t1) for r in emitted
        ]
        # Across windows the same key *does* merge.
        pipeline._window_index += 1
        pipeline._merge_labels([dc_replace(emitted[2], t0=5.0, t1=9.0)])
        merged = pipeline.merged_labels()
        assert len(merged) == 3
        assert (merged[2].t0, merged[2].t1) == (3.0, 9.0)


class TestStreamingValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(StreamError):
            StreamingPipeline(window=0.0)

    def test_rejects_bad_hop(self):
        with pytest.raises(StreamError):
            StreamingPipeline(window=10.0, hop=20.0)
        with pytest.raises(StreamError):
            StreamingPipeline(window=10.0, hop=0.0)

    def test_rejects_packet_granularity(self):
        with pytest.raises(StreamError):
            StreamingPipeline(window=10.0, granularity=Granularity.PACKET)

    def test_empty_stream_yields_nothing(self):
        pipeline = StreamingPipeline(window=10.0)
        assert list(pipeline.process(iter(()))) == []
        assert pipeline.merged_labels() == []


class TestKLBaselineCarry:
    def test_first_window_matches_offline(self, archive_trace):
        from repro.detectors.kl import KLDetector

        detector = KLDetector()
        state: dict = {}
        streamed = detector.analyze_stream(archive_trace, state)
        assert streamed == detector.analyze(archive_trace)
        assert "baseline" in state
        assert set(state["baseline"]) == {"src", "dst", "sport", "dport"}
        # The last bin's transactions ride along for the lift filter.
        assert isinstance(state["baseline_transactions"], list)

    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_engines_agree_with_baseline(self, archive_trace, engine):
        """Both engines carry identical baselines and agree on the
        windows where alarms fire."""
        from repro.detectors.kl import KLDetector

        half = archive_trace.duration / 2
        t0 = archive_trace.start_time
        first = _slice_trace(archive_trace, t0, t0 + half)
        second = _slice_trace(archive_trace, t0 + half, t0 + 2 * half + 1)

        results = {}
        baselines = {}
        transactions = {}
        for b in ("numpy", "python"):
            detector = KLDetector(engine=b)
            state: dict = {}
            detector.analyze_stream(first, state)
            baselines[b] = state["baseline"]
            transactions[b] = state["baseline_transactions"]
            results[b] = detector.analyze_stream(second, state)
        assert baselines["numpy"] == baselines["python"]
        assert transactions["numpy"] == transactions["python"]
        # Alarm *selections* are identical; scores may differ in the
        # last float ulp (the engines accumulate divergence in
        # different orders — the same documented property as offline).
        assert [
            (a.config, a.t0, a.t1, a.filters, a.flow_keys)
            for a in results["numpy"]
        ] == [
            (a.config, a.t0, a.t1, a.filters, a.flow_keys)
            for a in results["python"]
        ]
        for fast, reference in zip(results["numpy"], results["python"]):
            assert fast.score == pytest.approx(reference.score)


def _slice_trace(trace, t0, t1):
    from repro.net.trace import Trace

    window = trace.time_slice(t0, t1)
    return Trace.from_table(
        trace.table.take(np.arange(window.start, window.stop))
    )
