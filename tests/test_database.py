"""Tests for the on-disk label database."""

import os

import pytest

from repro.errors import LabelingError
from repro.eval.benchmark import benchmark_detector
from repro.labeling.database import LabelDatabase


@pytest.fixture
def database(tmp_path, pipeline_result):
    db = LabelDatabase(str(tmp_path / "mawilab"))
    db.store_day("2004-06-01", pipeline_result)
    return db


class TestStore:
    def test_layout(self, database):
        path = os.path.join(database.root, "2004", "06")
        assert os.path.isdir(path)
        assert os.path.exists(
            os.path.join(path, "01_anomalous_suspicious.csv")
        )
        assert os.path.exists(os.path.join(database.root, "index.csv"))

    def test_index_counts(self, database, pipeline_result):
        summary = database.summary("2004-06-01")
        assert summary["n_communities"] == len(pipeline_result.labels)
        assert summary["n_anomalous"] == len(pipeline_result.anomalous())
        assert summary["n_alarms"] == len(pipeline_result.alarms)

    def test_dates(self, database, pipeline_result):
        assert database.dates() == ["2004-06-01"]
        database.store_day("2004-06-02", pipeline_result)
        assert database.dates() == ["2004-06-01", "2004-06-02"]

    def test_restore_overwrites(self, database, pipeline_result):
        database.store_day("2004-06-01", pipeline_result)
        assert database.dates() == ["2004-06-01"]

    def test_bad_date_rejected(self, database, pipeline_result):
        with pytest.raises(LabelingError):
            database.store_day("June 1st", pipeline_result)


class TestLoad:
    def test_missing_day(self, database):
        with pytest.raises(LabelingError):
            database.load_day("1999-01-01")
        with pytest.raises(LabelingError):
            database.summary("1999-01-01")

    def test_rows_round_trip(self, database, pipeline_result):
        rows = database.load_day("2004-06-01")
        assert rows
        stored_ids = {row.community_id for row in rows}
        original_ids = {r.community_id for r in pipeline_result.labels}
        assert stored_ids == original_ids
        taxonomies = {row.taxonomy for row in rows}
        assert taxonomies <= {"anomalous", "suspicious", "notice"}

    def test_records_round_trip(self, database, pipeline_result):
        records = database.load_day_records("2004-06-01")
        assert len(records) == len(pipeline_result.labels)
        by_id = {r.community_id: r for r in records}
        for original in pipeline_result.labels:
            restored = by_id[original.community_id]
            assert restored.taxonomy == original.taxonomy
            assert restored.heuristic == original.heuristic
            assert restored.n_alarms == original.n_alarms
            assert restored.detectors == original.detectors
            assert restored.t0 == pytest.approx(original.t0, abs=1e-3)
            assert len(restored.summary.rules) == len(original.summary.rules)

    def test_restored_records_usable_for_benchmarking(
        self, database, archive_day
    ):
        from repro.detectors.kl import KLDetector

        records = database.load_day_records("2004-06-01")
        score = benchmark_detector(
            KLDetector(tuning="sensitive", threshold=1.8),
            archive_day.trace,
            records,
        )
        assert 0.0 <= score.recall <= 1.0
        assert score.true_positive + score.false_negative == sum(
            1 for r in records if r.taxonomy == "anomalous"
        )


class TestAtomicWrites:
    def test_crashed_store_leaves_old_day_intact(
        self, database, pipeline_result, monkeypatch
    ):
        """A write failing mid-publish (injected at os.replace) must
        leave the previous day file and index untouched and no tmp
        litter behind — readers never observe a partial write."""
        import repro.ioutil as ioutil

        day_path = os.path.join(
            database.root, "2004", "06", "01_anomalous_suspicious.csv"
        )
        with open(day_path) as handle:
            day_before = handle.read()
        with open(os.path.join(database.root, "index.csv")) as handle:
            index_before = handle.read()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(ioutil.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            database.store_day("2004-06-01", pipeline_result)
        monkeypatch.undo()

        with open(day_path) as handle:
            assert handle.read() == day_before
        with open(os.path.join(database.root, "index.csv")) as handle:
            assert handle.read() == index_before
        for dirpath, _dirnames, filenames in os.walk(database.root):
            assert not [n for n in filenames if n.endswith(".tmp")], dirpath

    def test_rebuild_index_after_partial_write(
        self, database, pipeline_result
    ):
        """A truncated index (simulating a pre-atomic-write crash) is
        fully recovered from the day files, counts included."""
        database.store_day("2004-06-02", pipeline_result)
        summary_before = database.summary("2004-06-01")
        index_path = os.path.join(database.root, "index.csv")
        with open(index_path) as handle:
            content = handle.read()
        with open(index_path, "w") as handle:
            handle.write(content[: len(content) // 2])  # partial write

        rebuilt = database.rebuild_index()
        assert rebuilt == ["2004-06-01", "2004-06-02"]
        assert database.dates() == ["2004-06-01", "2004-06-02"]
        assert database.summary("2004-06-01") == summary_before

    def test_rebuild_index_after_missing_index(
        self, database, pipeline_result
    ):
        os.unlink(os.path.join(database.root, "index.csv"))
        assert database.dates() == []
        assert database.rebuild_index() == ["2004-06-01"]
        summary = database.summary("2004-06-01")
        assert summary["n_alarms"] == len(pipeline_result.alarms)

    def test_multi_day_dates_ordering(self, database, pipeline_result):
        """dates() sorts chronologically however days were stored."""
        for date in ("2004-12-25", "2004-06-02", "2003-01-31"):
            database.store_day(date, pipeline_result)
        assert database.dates() == [
            "2003-01-31",
            "2004-06-01",
            "2004-06-02",
            "2004-12-25",
        ]
        assert database.rebuild_index() == database.dates()


class TestLiveLabelIndex:
    @pytest.fixture
    def index(self, pipeline_result):
        from repro.labeling.database import LiveLabelIndex

        live = LiveLabelIndex()
        live.publish_result("2004-06-01", pipeline_result)
        return live

    def test_query_matches_store(self, index, pipeline_result):
        rows = index.query(date="2004-06-01")
        assert len(rows) == len(pipeline_result.labels)
        assert {row["taxonomy"] for row in rows} <= {
            "anomalous",
            "suspicious",
            "notice",
        }

    def test_taxonomy_filter(self, index, pipeline_result):
        anomalous = index.query(date="2004-06-01", taxonomy="anomalous")
        assert len(anomalous) == len(pipeline_result.anomalous())
        with pytest.raises(LabelingError, match="unknown taxonomy"):
            index.query(taxonomy="bogus")

    def test_time_overlap_filter(self, index, pipeline_result):
        t0 = min(r.t0 for r in pipeline_result.labels)
        everything = index.query(t0=t0 - 10.0, t1=1e9)
        assert len(everything) == len(pipeline_result.labels)
        assert index.query(t0=1e9, t1=2e9) == []

    def test_src_filter_dotted_and_int(self, index, pipeline_result):
        from repro.net.addresses import ip_to_str

        record = next(
            r
            for r in pipeline_result.labels
            if any(rule.src is not None for rule in r.summary.rules)
        )
        src = next(
            rule.src
            for rule in record.summary.rules
            if rule.src is not None
        )
        dotted = index.query(src=ip_to_str(src))
        numeric = index.query(src=src)
        assert dotted == numeric
        assert any(
            row["community"] == record.community_id for row in dotted
        )
        with pytest.raises(LabelingError, match="address"):
            index.query(src="not-an-ip")

    def test_limit_and_multi_day_order(self, index, pipeline_result):
        index.publish_result("2004-06-02", pipeline_result)
        rows = index.query()
        dates = [row["date"] for row in rows]
        assert dates == sorted(dates)
        assert len(index.query(limit=3)) == 3

    def test_store_for_and_drop(self, index):
        assert len(index.store_for("2004-06-01"))
        with pytest.raises(LabelingError):
            index.store_for("1999-01-01")
        index.drop("2004-06-01")
        assert index.dates() == []

    def test_counters(self, index):
        index.query(date="2004-06-01")
        counters = index.counters()
        assert counters["days"] == 1
        assert counters["publishes"] == 1
        assert counters["queries"] >= 1
        assert counters["labels"] > 0

    def test_publish_replaces_day_atomically(self, index, pipeline_result):
        before = len(index.query(date="2004-06-01"))
        index.publish_result("2004-06-01", pipeline_result)
        assert len(index.query(date="2004-06-01")) == before
        assert index.counters()["publishes"] == 2
