"""The streaming labeling pipeline: windows in, labels out.

:class:`StreamingPipeline` runs the paper's 4-step method continuously
over a sliding window of a packet stream:

1. **ingest** — packet batches (from
   :func:`~repro.net.pcap.iter_pcap` or any generator of
   :class:`~repro.net.table.PacketTable`) land in a
   :class:`~repro.stream.window.TraceWindow` ring; expired packets are
   evicted columnarly, so memory is bounded by the window span;
2. **detect** — the ensemble runs as
   :class:`~repro.detectors.streaming.StreamingDetector` wrappers,
   carrying per-configuration state (sketch hashers, KL histogram
   baselines) across window advances;
3. **associate** — new alarms join a
   :class:`~repro.core.dynamic.DynamicSimilarityGraph` incrementally
   (expired alarms leave it), and Louvain is *warm-started* from the
   previous window's partition (``louvain(..., seed_partition=...)``)
   so each window refines the clustering instead of recomputing it;
4. **classify + label** — the offline combiner and Step 4 machinery
   run unchanged on the live communities, and re-accepted communities
   from overlapping windows are merged into one label with an extended
   time span.

Parity anchor: when one window covers the whole trace, every stage
degenerates to its offline twin (empty detector state, cold Louvain
start, single-window label merge), and :meth:`StreamResult.to_csv` is
byte-identical to ``labels_to_csv(MAWILabPipeline.run(trace).labels)``
on every engine.
"""

from __future__ import annotations

import time as _time
import weakref
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.alarm_table import AlarmTable
from repro.core.community import CommunitySet
from repro.core.dynamic import DynamicSimilarityGraph
from repro.core.estimator import SimilarityEstimator
from repro.core.extractor import TrafficExtractor
from repro.core.louvain import louvain
from repro.detectors.base import Alarm, Detector
from repro.detectors.streaming import StreamingDetector, wrap_ensemble
from repro.engine import EngineSpec, resolve_engine, resolve_legacy_backend
from repro.errors import StreamError
from repro.labeling.mawilab import LabelRecord, MAWILabPipeline, labels_to_csv
from repro.labeling.store import LabelStore
from repro.labeling.taxonomy import assign_taxonomy_batch
from repro.net.flow import Granularity
from repro.net.table import PacketTable
from repro.net.trace import Trace, TraceMetadata
from repro.detectors.planes import plane_cache_for
from repro.runner.config import PipelineConfig
from repro.runner.pool import WorkerPool
from repro.runner.shm import PlaneArena, TableArena
from repro.stream.planes import StreamingPlanes
from repro.stream.window import TraceWindow


@dataclass
class WindowResult:
    """Everything one window emission produced."""

    index: int
    t0: float
    t1: float
    n_packets: int
    n_new_alarms: int
    n_live_alarms: int
    n_communities: int
    labels: list[LabelRecord]
    #: Wall seconds spent labeling this window (detect -> label).
    latency: float

    def describe(self) -> str:
        return (
            f"window#{self.index} {self.t0:.1f}-{self.t1:.1f}s "
            f"packets={self.n_packets} alarms={self.n_live_alarms} "
            f"(+{self.n_new_alarms}) communities={self.n_communities} "
            f"labels={len(self.labels)} latency={self.latency * 1e3:.1f}ms"
        )


@dataclass
class _MergedLabel:
    """One deduplicated stream label under construction."""

    record: LabelRecord
    t0: float
    t1: float
    windows: int = 1
    #: Index of the last window that contributed; merging only spans
    #: *different* windows — two same-key communities inside one window
    #: are genuinely distinct labels and stay separate.
    last_window: int = -1


@dataclass
class StreamStats:
    """Throughput / latency / memory accounting for one stream run."""

    n_windows: int = 0
    total_packets: int = 0
    processing_seconds: float = 0.0
    peak_ring_packets: int = 0
    window_latencies: list[float] = field(default_factory=list)

    @property
    def packets_per_sec(self) -> float:
        if self.processing_seconds <= 0:
            return 0.0
        return self.total_packets / self.processing_seconds

    @property
    def p95_latency(self) -> float:
        """95th-percentile window latency in seconds (0 when empty)."""
        if not self.window_latencies:
            return 0.0
        ordered = sorted(self.window_latencies)
        rank = max(int(np.ceil(0.95 * len(ordered))) - 1, 0)
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "n_windows": self.n_windows,
            "total_packets": self.total_packets,
            "processing_seconds": round(self.processing_seconds, 6),
            "packets_per_sec": round(self.packets_per_sec, 1),
            "p95_window_latency": round(self.p95_latency, 6),
            "peak_ring_packets": self.peak_ring_packets,
        }


@dataclass
class StreamResult:
    """Final output of one stream run."""

    windows: list[WindowResult]
    #: Cross-window deduplicated labels, renumbered ``0..n-1`` in first
    #: appearance order, spans extended over merged re-acceptances.
    labels: list[LabelRecord]
    stats: StreamStats
    #: The same labels columnarly (``labels`` are its lazy views).
    label_store: Optional[LabelStore] = None

    def to_csv(self) -> str:
        """The merged labels in the offline database CSV format."""
        return labels_to_csv(self.labels)


def _label_key(record: LabelRecord) -> tuple:
    """Identity of a label for cross-window deduplication.

    Two windows re-accepting the same community produce records with
    the same taxonomy, heuristic, detector set and concise rules; time
    spans and alarm counts differ, so they are excluded.
    """
    return (
        record.taxonomy,
        record.heuristic.category,
        record.heuristic.detail,
        record.detectors,
        frozenset(
            (rule.src, rule.sport, rule.dst, rule.dport)
            for rule in record.summary.rules
        ),
    )


class StreamingPipeline:
    """The 4-step MAWILab method over a sliding packet window.

    Parameters
    ----------
    window:
        Window span in seconds; each emitted labeling covers the last
        ``window`` seconds of traffic.
    hop:
        Advance between emissions in seconds; defaults to ``window``
        (tumbling windows).  ``hop < window`` makes windows overlap —
        alarms re-detected in the overlap are deduplicated, and their
        communities merge into labels with extended spans.
    ensemble:
        Detector configurations (wrapped for streaming); defaults to
        the paper's 12.
    granularity:
        Traffic granularity of the association step.  Packet
        granularity is rejected: packet indices are not stable across
        window advances (flows are).
    engine:
        Execution-engine spec, as everywhere (see
        :func:`repro.engine.resolve_engine`).
    pool:
        Optional persistent :class:`~repro.runner.pool.WorkerPool`.
        When the pool is parallel, every window's Step 1 fans the
        detector configurations across its workers against one shared
        window segment (recycled via a :class:`TableArena`, pinned by
        the workers' segment registries) — the streaming twin of the
        session's intra-trace fan-out, and byte-identical to the
        serial window loop.  Requires ``config`` (workers rebuild
        their configurations from it) and the default ensemble.  The
        pool is borrowed, never shut down here.
    config:
        The :class:`~repro.runner.config.PipelineConfig` describing
        this pipeline, required by ``pool``.

    Remaining parameters mirror
    :class:`~repro.labeling.mawilab.MAWILabPipeline` exactly, which is
    what makes full-coverage streaming output byte-identical.
    """

    def __init__(
        self,
        window: float,
        hop: Optional[float] = None,
        ensemble: Optional[Sequence[Detector]] = None,
        granularity: Granularity = Granularity.UNIFLOW,
        strategy=None,
        measure: str = "simpson",
        edge_threshold: float = 0.1,
        rule_support_pct: float = 20.0,
        seed: int = 0,
        engine: EngineSpec = "auto",
        backend: EngineSpec = None,
        pool: Optional[WorkerPool] = None,
        config: Optional[PipelineConfig] = None,
        max_ring_packets: Optional[int] = None,
    ) -> None:
        engine = resolve_legacy_backend(engine, backend, what="stream")
        if window <= 0:
            raise StreamError(f"window must be positive, got {window}")
        hop = window if hop is None else hop
        if not 0 < hop <= window:
            raise StreamError(
                f"hop must be in (0, window], got hop={hop} window={window}"
            )
        if granularity is Granularity.PACKET:
            raise StreamError(
                "packet granularity is not streamable: packet indices are "
                "window-local; use uniflow or biflow"
            )
        self.window = float(window)
        self.hop = float(hop)
        self.granularity = granularity
        self.seed = seed
        self.engine = resolve_engine(engine, what="stream")
        self.pipeline = MAWILabPipeline(
            ensemble=ensemble,
            granularity=granularity,
            strategy=strategy,
            measure=measure,
            edge_threshold=edge_threshold,
            rule_support_pct=rule_support_pct,
            seed=seed,
            engine=self.engine,
        )
        self.detectors: list[StreamingDetector] = wrap_ensemble(
            self.pipeline.ensemble
        )
        if pool is not None and pool.parallel and ensemble is not None:
            raise StreamError(
                "pooled streaming requires the config-described ensemble; "
                "pass config instead of a custom ensemble"
            )
        if pool is not None and pool.parallel and config is None:
            raise StreamError(
                "pooled streaming requires a PipelineConfig (workers "
                "rebuild their detector configurations from it)"
            )
        #: Borrowed pool for per-window detector fan-out (``None`` =>
        #: serial windows); the pool's owner shuts it down.
        self.pool = pool if pool is not None and pool.parallel else None
        self._config = config
        #: Recycled export segment for pooled windows; window fan-out
        #: is synchronous, so one arena suffices and recycling is safe.
        self._arena = TableArena() if self.pool is not None else None
        if self._arena is not None:
            weakref.finalize(self, TableArena.close, self._arena)
        #: Recycled export segment for each window's seeded planes
        #: (pooled vectorized mode only).
        self._plane_arena = (
            PlaneArena()
            if self.pool is not None and self.engine.vectorized
            else None
        )
        if self._plane_arena is not None:
            weakref.finalize(self, PlaneArena.close, self._plane_arena)
        #: Incrementally maintained plane bases: chunk appends grow the
        #: value dictionaries, each window's histograms / sketch
        #: buckets are then derived by searchsorted instead of
        #: recomputed from scratch (vectorized engine only; the
        #: reference engine recomputes — it is the oracle).
        self._stream_planes = (
            StreamingPlanes(self.pipeline.ensemble)
            if self.engine.vectorized
            else None
        )
        #: ``max_ring_packets`` caps the ring (see
        #: :meth:`TraceWindow.has_room`): the serving layer's feeds
        #: block their reader on a full ring instead of growing it.
        self.ring = TraceWindow(max_packets=max_ring_packets)
        self._graph = DynamicSimilarityGraph(
            measure=measure, edge_threshold=edge_threshold
        )
        #: Live alarms, columnar: row ``i`` of the table is the alarm
        #: with graph id ``_live_ids[i]``.  Ids are assigned
        #: monotonically and eviction preserves order, so ``_live_ids``
        #: stays ascending — the same order ``DynamicSimilarityGraph``
        #: compacts in.
        self._live_table: AlarmTable = AlarmTable.empty()
        self._live_ids: np.ndarray = np.empty(0, dtype=np.int64)
        #: Alarm identity -> live alarm ids carrying it.  A detector
        #: may legitimately emit identical alarms within one window
        #: (they are distinct graph nodes offline too), so identities
        #: map to id *lists*, not single ids.
        self._alarm_keys: dict[tuple, list[int]] = {}
        self._partition: dict[int, int] = {}
        #: Merge index: label identity -> its entries (latest last).
        self._merged: dict[tuple, list[_MergedLabel]] = {}
        #: The same entries in emission order — the output order, so a
        #: single-window run reproduces the offline label order exactly
        #: even when same-key labels interleave with others.
        self._merged_order: list[_MergedLabel] = []
        self._window_index = 0
        self._latencies: list[float] = []
        self._metadata: Optional[TraceMetadata] = None

    # -- streaming loop ------------------------------------------------

    def process(
        self,
        chunks: Iterable[PacketTable],
        metadata: Optional[TraceMetadata] = None,
    ) -> Iterator[WindowResult]:
        """Consume packet batches; yield one result per emitted window.

        Emission is driven by packet timestamps: a window ``[e - w, e)``
        is labeled as soon as a packet at or past ``e`` arrives.  When
        the stream ends, the remaining buffered packets form one final
        window (closed at the last timestamp) — for a stream shorter
        than ``window`` that final window is the only one, covering the
        whole stream.
        """
        self._metadata = metadata
        next_emit: Optional[float] = None
        last_emitted_end: Optional[float] = None
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            self.ring.extend(chunk)
            if self._stream_planes is not None:
                self._stream_planes.append(chunk)
            if next_emit is None:
                next_emit = self.ring.t_min + self.window
            while self.ring.t_max >= next_emit:
                yield self._emit(next_emit, inclusive=False)
                last_emitted_end = next_emit
                next_emit += self.hop
        if len(self.ring) and (
            last_emitted_end is None or self.ring.t_max >= last_emitted_end
        ):
            yield self._emit(self.ring.t_max, inclusive=True)

    def run(
        self,
        chunks: Iterable[PacketTable],
        metadata: Optional[TraceMetadata] = None,
    ) -> StreamResult:
        """Consume the whole stream; return the merged result."""
        windows = list(self.process(chunks, metadata=metadata))
        store = self.merged_label_store()
        return StreamResult(
            windows=windows,
            labels=store.to_records(),
            stats=self.stats(),
            label_store=store,
        )

    # -- one window ----------------------------------------------------

    def _emit(self, window_end: float, inclusive: bool) -> WindowResult:
        started = _time.perf_counter()
        window_t0 = window_end - self.window
        self.ring.evict_before(window_t0)
        if self._stream_planes is not None:
            self._stream_planes.evict_before(window_t0)
        table = self.ring.table()
        in_window = (
            table.time <= window_end if inclusive else table.time < window_end
        )
        trace = Trace.from_table(
            table.take(np.nonzero(in_window)[0]), self._metadata
        )

        # Retire alarms that slid out of the window entirely: one
        # vectorized compare on the live table's t1 column, one column
        # slice to compact the survivors.
        expired_mask = self._live_table.t1 <= window_t0
        if expired_mask.any():
            expired = [int(i) for i in self._live_ids[expired_mask]]
            self._graph.expire_alarms(expired)
            self._live_table = self._live_table.take(~expired_mask)
            self._live_ids = self._live_ids[~expired_mask]
            for alarm_id in expired:
                self._partition.pop(alarm_id, None)
            dead = set(expired)
            self._alarm_keys = {
                key: kept
                for key, ids in self._alarm_keys.items()
                if (kept := [i for i in ids if i not in dead])
            }

        labels: list[LabelRecord] = []
        n_communities = 0
        fresh: list[tuple[tuple, Alarm]] = []
        if len(trace):
            if self._stream_planes is not None:
                # Seed the window trace's plane cache from the
                # incrementally maintained dictionaries; detectors (and
                # pooled workers, via the plane export below) resolve
                # the same cache and skip the from-scratch unique/hash.
                self._stream_planes.seed_window(
                    trace, plane_cache_for(trace, self.engine)
                )
            # Step 1, stateful: every configuration sees the window.
            # Cross-window alarm dedup: a re-detection in an
            # overlapping window is absorbed by a live copy from a
            # previous window, but duplicates *beyond* the live count
            # are kept — the offline pipeline keeps same-window
            # duplicates as distinct graph nodes, and so must we.
            seen_this_window: dict[tuple, int] = {}
            for alarm in self._detect_window(trace):
                key = (
                    alarm.config,
                    alarm.t0,
                    alarm.t1,
                    alarm.filters,
                    alarm.flow_keys,
                )
                seen = seen_this_window.get(key, 0)
                seen_this_window[key] = seen + 1
                if seen < len(self._alarm_keys.get(key, ())):
                    continue
                fresh.append((key, alarm))
            extractor = TrafficExtractor(
                trace, self.granularity, engine=self.engine
            )
            # Step 2, incremental: deltas into the live graph; fresh
            # alarms batch-append onto the live table as one
            # concatenation.
            traffic_sets = extractor.extract_all(
                [alarm for _, alarm in fresh]
            )
            new_ids = self._graph.add_alarms(traffic_sets)
            for (key, _alarm), alarm_id in zip(fresh, new_ids):
                self._alarm_keys.setdefault(key, []).append(alarm_id)
            if fresh:
                self._live_table = AlarmTable.concatenate(
                    [
                        self._live_table,
                        AlarmTable.from_alarms(
                            [alarm for _, alarm in fresh],
                            engine=self.engine,
                        ),
                    ]
                )
                self._live_ids = np.concatenate(
                    [self._live_ids, np.asarray(new_ids, dtype=np.int64)]
                )
            graph, node_of = self._graph.build()
            live_ids = [int(i) for i in self._live_ids]
            seed_partition = {
                node_of[alarm_id]: self._partition[alarm_id]
                for alarm_id in live_ids
                if alarm_id in self._partition
            }
            partition = louvain(
                graph,
                seed=self.seed,
                seed_partition=seed_partition or None,
            )
            for alarm_id in live_ids:
                self._partition[alarm_id] = partition[node_of[alarm_id]]
            # Steps 3-4: the offline machinery over the live table
            # (communities are index vectors over its rows).
            traffic_list = [
                self._graph.traffic_of(alarm_id) for alarm_id in live_ids
            ]
            communities = SimilarityEstimator._materialize(
                self._live_table, traffic_list, partition
            )
            n_communities = len(communities)
            community_set = CommunitySet(
                communities=communities,
                alarms=self._live_table,
                traffic_sets=traffic_list,
                granularity=self.granularity,
                graph=graph,
                extractor=extractor,
                alarm_table=self._live_table,
            )
            decisions = self.pipeline.strategy.classify(
                community_set, self.pipeline.config_names
            )
            taxonomies = assign_taxonomy_batch(decisions, engine=self.engine)
            labels = [
                self.pipeline._label_one(
                    community_set, community, decision, taxonomy
                )
                for community, decision, taxonomy in zip(
                    communities, decisions, taxonomies
                )
            ]

        self._merge_labels(labels)
        latency = _time.perf_counter() - started
        result = WindowResult(
            index=self._window_index,
            t0=window_t0,
            t1=window_end,
            n_packets=len(trace),
            n_new_alarms=len(fresh),
            n_live_alarms=self._graph.n_live,
            n_communities=n_communities,
            labels=labels,
            latency=latency,
        )
        self._window_index += 1
        self._latencies.append(latency)
        return result

    # -- Step 1 over one window (serial or pooled) ---------------------

    def _detect_window(self, trace: Trace) -> Iterator[Alarm]:
        """Every configuration's alarms for one window, ensemble order.

        Serial mode walks the stateful wrappers; pooled mode fans the
        configurations across the borrowed pool (states ride the tasks
        and return updated) and yields the identical alarm sequence.
        """
        if self.pool is None:
            for detector in self.detectors:
                yield from detector.analyze_window(trace)
            return
        yield from self._detect_window_pooled(trace)

    def _detect_window_pooled(self, trace: Trace) -> Iterator[Alarm]:
        from repro.runner.worker import DetectTask, run_detect

        n = len(self.detectors)
        n_groups = max(min(self.pool.workers, n), 1)
        bounds = [round(i * n / n_groups) for i in range(n_groups + 1)]
        groups = [
            tuple(range(lo, hi))
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]
        # One export per window into the recycled arena; workers pin
        # the mapping, so steady state is a single parent-side memcpy.
        handle = self._arena.export(trace.table)
        planes_handle = None
        if self._plane_arena is not None and self._stream_planes is not None:
            # Ship the window's seeded base planes next to the table so
            # every group starts from the shared histograms / buckets
            # instead of recomputing them per worker.
            planes_handle = self._plane_arena.export(
                plane_cache_for(trace, self.engine).exportable_items()
            )
        futures = [
            self.pool.submit(
                run_detect,
                DetectTask(
                    config=self._config,
                    config_indices=group,
                    shm=handle,
                    metadata=self._metadata,
                    pin_segment=True,
                    stream_states=tuple(
                        dict(self.detectors[i].state) for i in group
                    ),
                    planes=planes_handle,
                ),
            )
            for group in groups
        ]
        # Synchronous barrier: all groups read the segment, so the
        # next window may recycle the arena only after every result
        # lands — which gathering here guarantees.
        results = [future.result() for future in futures]
        failures = [r for r in results if not r.ok]
        if failures:
            raise StreamError(
                "pooled window detection failed: "
                + "; ".join(f.error for f in failures)
            )
        for group, result in zip(groups, results):
            for position, index in enumerate(group):
                wrapper = self.detectors[index]
                wrapper.state = dict(result.states[position])
                wrapper.windows_seen += 1
            yield from result.alarms.to_alarms()

    def close(self) -> None:
        """Unlink the window-export arena (pooled mode; idempotent).

        The borrowed pool is *not* shut down — its owner (usually a
        :class:`~repro.session.LabelingSession`) does that.
        """
        if self._arena is not None:
            self._arena.close()
        if self._plane_arena is not None:
            self._plane_arena.close()

    # -- cross-window label merging ------------------------------------

    def _merge_labels(self, labels: Sequence[LabelRecord]) -> None:
        for record in labels:
            key = _label_key(record)
            entries = self._merged.setdefault(key, [])
            if (
                entries
                and entries[-1].last_window != self._window_index
                and record.t0 <= entries[-1].t1
            ):
                # Same community re-accepted in an overlapping window:
                # one label, extended span.
                entry = entries[-1]
                entry.t0 = min(entry.t0, record.t0)
                entry.t1 = max(entry.t1, record.t1)
                entry.record = record
                entry.windows += 1
                entry.last_window = self._window_index
            else:
                entry = _MergedLabel(
                    record=record,
                    t0=record.t0,
                    t1=record.t1,
                    last_window=self._window_index,
                )
                entries.append(entry)
                self._merged_order.append(entry)

    def merged_label_store(self) -> LabelStore:
        """Deduplicated labels as one columnar store.

        Renumbering and span extension are whole-column writes
        (:meth:`LabelStore.with_columns`): ids become an ``arange`` in
        first-appearance order, spans the merge entries' extended
        envelopes — no per-record ``dataclasses.replace``.
        """
        entries = self._merged_order
        n = len(entries)
        store = LabelStore.from_records(
            [entry.record for entry in entries], engine=self.engine
        )
        return store.with_columns(
            community_id=np.arange(n, dtype=np.int64),
            t0=np.fromiter((e.t0 for e in entries), np.float64, count=n),
            t1=np.fromiter((e.t1 for e in entries), np.float64, count=n),
        )

    def merged_labels(self) -> list[LabelRecord]:
        """Deduplicated labels, renumbered in first-appearance order."""
        return self.merged_label_store().to_records()

    def stats(self) -> StreamStats:
        return StreamStats(
            n_windows=self._window_index,
            total_packets=self.ring.total_ingested,
            processing_seconds=sum(self._latencies),
            peak_ring_packets=self.ring.peak_packets,
            window_latencies=list(self._latencies),
        )
