"""Unit tests for the streaming ingestion layer.

Covers :func:`repro.net.pcap.iter_pcap` (chunked parsing equals
whole-file parsing; error behaviour on corrupt tails) and
:class:`repro.stream.window.TraceWindow` (columnar eviction, bounded
peaks, trace materialization).
"""

import io

import numpy as np
import pytest

from repro.errors import PcapFormatError, StreamError
from repro.net.pcap import iter_pcap, read_pcap, write_pcap
from repro.net.table import COLUMNS, PacketTable
from repro.net.trace import Trace
from repro.stream.window import TraceWindow, chunk_table
from tests.conftest import make_packet


def _pcap_bytes(trace: Trace) -> bytes:
    buffer = io.BytesIO()
    write_pcap(trace, buffer)
    return buffer.getvalue()


def _many_packets(n: int = 100) -> Trace:
    return Trace(
        [
            make_packet(time=i * 0.1, sport=1000 + (i % 7), dport=80)
            for i in range(n)
        ]
    )


class TestIterPcap:
    @pytest.mark.parametrize("chunk_packets", [1, 3, 17, 1000])
    def test_chunks_concatenate_to_read_pcap(self, chunk_packets):
        trace = _many_packets(50)
        data = _pcap_bytes(trace)
        chunks = list(
            iter_pcap(io.BytesIO(data), chunk_packets=chunk_packets)
        )
        assert all(len(c) <= chunk_packets for c in chunks)
        merged = Trace.from_table(PacketTable.concatenate(chunks))
        reference = read_pcap(io.BytesIO(data))
        for column in COLUMNS:
            assert np.array_equal(
                merged.table.column(column), reference.table.column(column)
            )

    def test_file_path_round_trip(self, tmp_path):
        trace = _many_packets(20)
        path = str(tmp_path / "stream.pcap")
        write_pcap(trace, path)
        chunks = list(iter_pcap(path, chunk_packets=6))
        assert sum(len(c) for c in chunks) == len(trace)
        assert len(chunks) == 4  # 6+6+6+2

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            list(iter_pcap(io.BytesIO(b""), chunk_packets=0))

    def test_yields_complete_prefix_before_corrupt_tail(self):
        trace = _many_packets(10)
        data = _pcap_bytes(trace)[:-5]  # truncate mid-record
        batches = []
        with pytest.raises(PcapFormatError):
            for batch in iter_pcap(io.BytesIO(data), chunk_packets=4):
                batches.append(batch)
        # The complete leading batches arrived before the error.
        assert sum(len(b) for b in batches) >= 8


class TestPcapFormatErrors:
    def test_truncated_global_header_offset(self):
        with pytest.raises(PcapFormatError) as excinfo:
            read_pcap(io.BytesIO(b"\x00" * 10))
        assert excinfo.value.offset == 0
        assert "offset 0" in str(excinfo.value)

    def test_bad_magic_offset(self):
        with pytest.raises(PcapFormatError) as excinfo:
            read_pcap(io.BytesIO(b"\xde\xad\xbe\xef" + b"\x00" * 20))
        assert excinfo.value.offset == 0

    def test_truncated_record_header_offset(self):
        trace = _many_packets(3)
        data = _pcap_bytes(trace)
        # Chop into the middle of the second record header.
        cut = 24 + 16 + 40 + 8  # global + rec1 header + rec1 body + 8
        with pytest.raises(PcapFormatError) as excinfo:
            read_pcap(io.BytesIO(data[:cut]))
        assert excinfo.value.offset == 24 + 16 + 40

    def test_truncated_record_body_offset(self):
        trace = _many_packets(2)
        data = _pcap_bytes(trace)
        with pytest.raises(PcapFormatError) as excinfo:
            read_pcap(io.BytesIO(data[:-1]))
        assert excinfo.value.offset == len(data) - 40 - 16 + 16

    def test_absurd_caplen_is_corruption_not_allocation(self):
        import struct

        header = struct.pack(
            "<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101
        )
        record = struct.pack("<IIII", 0, 0, 0x7FFFFFFF, 0x7FFFFFFF)
        with pytest.raises(PcapFormatError) as excinfo:
            read_pcap(io.BytesIO(header + record))
        assert excinfo.value.offset == 24
        assert "caplen" in str(excinfo.value)

    def test_random_garbage_never_raises_bare_struct_error(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            blob = rng.integers(0, 256, rng.integers(0, 80)).astype(
                np.uint8
            ).tobytes()
            try:
                read_pcap(io.BytesIO(blob))
            except PcapFormatError:
                pass
            # Anything else (struct.error, ValueError, ...) propagates
            # and fails the test.


class TestTraceWindow:
    def test_extend_and_len(self):
        window = TraceWindow()
        trace = _many_packets(30)
        for chunk in chunk_table(trace.table, 10):
            window.extend(chunk)
        assert len(window) == 30
        assert window.total_ingested == 30
        assert window.peak_packets == 30
        assert window.t_min == pytest.approx(0.0)
        assert window.t_max == pytest.approx(2.9)

    def test_evict_matches_naive_filter(self):
        trace = _many_packets(100)
        window = TraceWindow()
        for chunk in chunk_table(trace.table, 7):
            window.extend(chunk)
        evicted = window.evict_before(4.05)
        kept = window.table()
        reference = trace.table.time[trace.table.time >= 4.05]
        assert evicted == 100 - len(reference)
        assert np.array_equal(np.sort(kept.time), np.sort(reference))

    def test_eviction_bounds_memory(self):
        window = TraceWindow()
        for i in range(20):
            table = Trace(
                [make_packet(time=i * 1.0 + j * 0.1) for j in range(10)]
            ).table
            window.extend(table)
            window.evict_before(i * 1.0 - 2.0)  # keep ~3 seconds
        assert len(window) <= 40
        assert window.total_ingested == 200
        assert window.peak_packets <= 50

    def test_fully_expired_out_of_order_chunk_is_dropped(self):
        # A late chunk older than the cutoff must vanish entirely;
        # leaving a zero-length chunk behind poisons t_min/t_max.
        window = TraceWindow()
        window.extend(
            PacketTable.from_packets(
                [make_packet(time=t) for t in (10.0, 20.0)]
            )
        )
        window.extend(
            PacketTable.from_packets(
                [make_packet(time=t) for t in (5.0, 8.0)]
            )
        )
        assert window.evict_before(9.0) == 2
        assert len(window) == 2
        assert window.t_min == pytest.approx(10.0)
        assert window.t_max == pytest.approx(20.0)
        assert window.evict_before(25.0) == 2
        assert len(window) == 0

    def test_unsorted_chunk_is_sorted_on_ingest(self):
        packets = [make_packet(time=t) for t in (3.0, 1.0, 2.0)]
        table = PacketTable.from_packets(packets)
        window = TraceWindow()
        window.extend(table)
        assert window.evict_before(1.5) == 1
        assert len(window) == 2

    def test_empty_window_raises(self):
        window = TraceWindow()
        with pytest.raises(StreamError):
            _ = window.t_min
        with pytest.raises(StreamError):
            _ = window.t_max

    def test_trace_materialization_sorted(self):
        window = TraceWindow()
        window.extend(
            PacketTable.from_packets([make_packet(time=5.0)])
        )
        window.extend(
            PacketTable.from_packets([make_packet(time=4.0)])
        )
        trace = window.trace()
        assert [p.time for p in trace] == [4.0, 5.0]

    def test_chunk_table_rejects_nonpositive(self):
        with pytest.raises(StreamError):
            list(chunk_table(PacketTable.empty(), 0))
