"""Fig. 10 — relative distance of rejected communities by label.

The paper observes that rejected communities labeled "Attack" sit
closer to the SCANN decision boundary (lower relative distance) than
those labeled "Special" or "Unknown" — the basis for the *suspicious*
taxonomy class.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.metrics import histogram_pdf, quantile_summary
from repro.eval.report import format_table


def test_fig10_relative_distance(corpus, benchmark):
    def compute():
        distances = {"attack": [], "special": [], "unknown": []}
        for day in corpus:
            for decision, label in zip(day.result.decisions, day.heuristics):
                if decision.accepted:
                    continue
                if decision.relative_distance is None:
                    continue
                if np.isfinite(decision.relative_distance):
                    distances[label.category].append(
                        decision.relative_distance
                    )
        return distances

    distances = run_once(benchmark, compute)

    rows = []
    for category, values in distances.items():
        summary = quantile_summary(values)
        rows.append(
            [
                category,
                len(values),
                summary["median"],
                summary["mean"],
                summary["p90"],
            ]
        )
    print()
    print(
        format_table(
            ["label", "n", "median", "mean", "p90"],
            rows,
            title="Fig. 10 — relative distance of rejected communities",
        )
    )
    for category, values in distances.items():
        centers, density = histogram_pdf(values, bins=8, value_range=(0, 4))
        print(
            f"  PDF [{category}]: " + ", ".join(f"{d:.2f}" for d in density)
        )

    assert distances["attack"], "need rejected attack communities"
    non_attack = distances["special"] + distances["unknown"]
    assert non_attack, "need rejected non-attack communities"
    # Rejected attacks are nearer the boundary than rejected non-attacks.
    assert np.median(distances["attack"]) <= np.median(non_attack) + 0.25
    # All relative distances are non-negative by construction.
    for values in distances.values():
        assert all(v >= 0 for v in values)
