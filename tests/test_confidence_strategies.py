"""Unit tests for confidence scores and the avg/min/max strategies.

Includes the paper's Fig. 2 worked example.
"""

import pytest

from repro.core.community import Community, CommunitySet
from repro.core.confidence import (
    confidence_scores,
    configs_by_detector,
    vote_vector,
)
from repro.core.strategies import (
    AverageStrategy,
    MaximumStrategy,
    MinimumStrategy,
    split_by_decision,
)
from repro.detectors.base import Alarm
from repro.errors import CombinerError
from repro.net.filters import FeatureFilter


def make_community(config_names, community_id=0):
    alarms = tuple(
        Alarm(
            detector=name.split("/")[0],
            config=name,
            t0=0.0,
            t1=1.0,
            filters=(FeatureFilter(src=1),),
        )
        for name in config_names
    )
    return Community(
        id=community_id,
        alarm_ids=tuple(range(len(alarms))),
        alarms=alarms,
    )


# The paper's Fig. 2: detectors A, B, C with tunings 0, 1, 2; community
# holds alarms from A0, A1, B0, B1, B2.
FIG2_CONFIGS = [f"{d}/{i}" for d in "ABC" for i in range(3)]
FIG2_COMMUNITY = make_community(["A/0", "A/1", "B/0", "B/1", "B/2"])


class TestConfidence:
    def test_fig2_scores(self):
        scores = confidence_scores(
            FIG2_COMMUNITY, configs_by_detector(FIG2_CONFIGS)
        )
        assert scores["A"] == pytest.approx(2 / 3)
        assert scores["B"] == pytest.approx(1.0)
        assert scores["C"] == pytest.approx(0.0)

    def test_configs_by_detector(self):
        grouped = configs_by_detector(["pca/a", "pca/b", "kl/a"])
        assert grouped == {"pca": ["pca/a", "pca/b"], "kl": ["kl/a"]}

    def test_empty_config_list_rejected(self):
        with pytest.raises(CombinerError):
            confidence_scores(FIG2_COMMUNITY, {"A": []})

    def test_vote_vector(self):
        votes = vote_vector(FIG2_COMMUNITY, FIG2_CONFIGS)
        assert votes == [1, 1, 0, 1, 1, 1, 0, 0, 0]


def community_set_of(communities):
    return CommunitySet(
        communities=communities,
        alarms=[],
        traffic_sets=[],
    )


class TestStrategies:
    def test_fig2_average_accepts(self):
        # Average of confidence scores = (2/3 + 1 + 0)/3 = 5/9 > 0.5.
        decisions = AverageStrategy().classify(
            community_set_of([FIG2_COMMUNITY]), FIG2_CONFIGS
        )
        assert decisions[0].accepted
        assert decisions[0].mu == pytest.approx(5 / 9)

    def test_fig2_minimum_rejects(self):
        decisions = MinimumStrategy().classify(
            community_set_of([FIG2_COMMUNITY]), FIG2_CONFIGS
        )
        assert not decisions[0].accepted
        assert decisions[0].mu == 0.0

    def test_fig2_maximum_accepts(self):
        decisions = MaximumStrategy().classify(
            community_set_of([FIG2_COMMUNITY]), FIG2_CONFIGS
        )
        assert decisions[0].accepted
        assert decisions[0].mu == 1.0

    def test_average_rejects_single_detector_community(self):
        # Reported by every tuning of one of four detectors:
        # mu = 1/4 <= 0.5 -> inherently rejected (paper Section 4.2.3).
        configs = [f"{d}/{i}" for d in "ABCD" for i in range(3)]
        community = make_community(["A/0", "A/1", "A/2"])
        decisions = AverageStrategy().classify(
            community_set_of([community]), configs
        )
        assert not decisions[0].accepted

    def test_no_configs_rejected(self):
        with pytest.raises(CombinerError):
            AverageStrategy().classify(community_set_of([FIG2_COMMUNITY]), [])

    def test_decisions_aligned(self):
        c0 = make_community(["A/0"], community_id=0)
        c1 = make_community(FIG2_CONFIGS, community_id=1)
        decisions = MaximumStrategy().classify(
            community_set_of([c0, c1]), FIG2_CONFIGS
        )
        assert [d.community_id for d in decisions] == [0, 1]
        assert decisions[1].accepted

    def test_split_by_decision(self):
        c0 = make_community(["A/0"], community_id=0)
        c1 = make_community(FIG2_CONFIGS, community_id=1)
        communities = [c0, c1]
        decisions = MaximumStrategy().classify(
            community_set_of(communities), FIG2_CONFIGS
        )
        accepted, rejected = split_by_decision(communities, decisions)
        assert [c.id for c in accepted] == [0, 1] or len(accepted) + len(
            rejected
        ) == 2

    def test_split_length_mismatch(self):
        with pytest.raises(CombinerError):
            split_by_decision([FIG2_COMMUNITY], [])
