"""Unit tests for repro.net.addresses."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.net.addresses import (
    PrefixPreservingAnonymizer,
    ip_to_int,
    ip_to_str,
    is_private,
    random_host_in,
)


class TestConversions:
    def test_round_trip(self):
        for addr in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "203.178.148.19"):
            assert ip_to_str(ip_to_int(addr)) == addr

    def test_known_value(self):
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_rejects_short_form(self):
        with pytest.raises(TraceError):
            ip_to_int("1.2.3")

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(TraceError):
            ip_to_int("1.2.3.256")

    def test_rejects_garbage(self):
        with pytest.raises(TraceError):
            ip_to_int("a.b.c.d")

    def test_ip_to_str_rejects_negative(self):
        with pytest.raises(TraceError):
            ip_to_str(-1)

    def test_ip_to_str_rejects_too_large(self):
        with pytest.raises(TraceError):
            ip_to_str(1 << 32)


class TestIsPrivate:
    def test_rfc1918_blocks(self):
        assert is_private(ip_to_int("10.1.2.3"))
        assert is_private(ip_to_int("172.16.0.1"))
        assert is_private(ip_to_int("172.31.255.255"))
        assert is_private(ip_to_int("192.168.1.1"))

    def test_public_addresses(self):
        assert not is_private(ip_to_int("8.8.8.8"))
        assert not is_private(ip_to_int("172.32.0.1"))
        assert not is_private(ip_to_int("192.169.0.1"))
        assert not is_private(ip_to_int("203.178.148.19"))


class TestRandomHostIn:
    def test_host_in_prefix(self):
        rng = np.random.default_rng(0)
        prefix = ip_to_int("203.178.0.0")
        for _ in range(50):
            host = random_host_in(prefix, 16, rng)
            assert host >> 16 == prefix >> 16

    def test_full_prefix_is_identity(self):
        rng = np.random.default_rng(0)
        addr = ip_to_int("1.2.3.4")
        assert random_host_in(addr, 32, rng) == addr

    def test_bad_prefix_length(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            random_host_in(0, 33, rng)


class TestAnonymizer:
    def test_deterministic(self):
        a = PrefixPreservingAnonymizer(key=b"k1")
        b = PrefixPreservingAnonymizer(key=b"k1")
        addr = ip_to_int("203.178.148.19")
        assert a.anonymize(addr) == b.anonymize(addr)

    def test_key_changes_output(self):
        addr = ip_to_int("203.178.148.19")
        a = PrefixPreservingAnonymizer(key=b"k1").anonymize(addr)
        b = PrefixPreservingAnonymizer(key=b"k2").anonymize(addr)
        assert a != b

    def test_prefix_preserving(self):
        anon = PrefixPreservingAnonymizer(key=b"test")
        x = anon.anonymize(ip_to_int("192.0.2.1"))
        y = anon.anonymize(ip_to_int("192.0.2.200"))
        z = anon.anonymize(ip_to_int("192.0.3.1"))
        # /24 shared -> /24 preserved.
        assert x >> 8 == y >> 8
        # /23 shared between .2.1 and .3.1 -> first 23 bits equal,
        # 24th differs.
        assert x >> 9 == z >> 9
        assert (x >> 8) != (z >> 8)

    def test_injective_on_sample(self):
        anon = PrefixPreservingAnonymizer(key=b"inj")
        rng = np.random.default_rng(7)
        addresses = set(int(v) for v in rng.integers(0, 1 << 32, size=500))
        images = anon.anonymize_many(sorted(addresses))
        assert len(set(images)) == len(addresses)

    def test_rejects_empty_key(self):
        with pytest.raises(TraceError):
            PrefixPreservingAnonymizer(key=b"")

    def test_rejects_bad_address(self):
        anon = PrefixPreservingAnonymizer()
        with pytest.raises(TraceError):
            anon.anonymize(1 << 32)
