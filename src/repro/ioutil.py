"""Small shared I/O helpers.

:func:`write_atomic` is the repository's one way to publish a file
other processes may be reading concurrently: the text lands in a
temporary file in the destination directory and moves into place with
``os.replace``, so a reader opening the path sees either the previous
complete contents or the new complete contents — never a torn write.
The batch workers' per-day label CSVs, the label database's day files
and index, and the serve scheduler's journal all go through it.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def write_atomic_bytes(path: Union[str, Path], payload: bytes) -> None:
    """Binary twin of :func:`write_atomic` (tmp file + ``os.replace``).

    The warehouse's columnar segment files go through this: a reader
    memory-mapping the path sees either the previous complete segment
    or the new complete segment, never a torn one.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_atomic(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file is created in ``path``'s directory so the final
    rename stays on one filesystem (cross-device renames are copies,
    not atomic).  On any failure the temporary file is removed and the
    destination is left untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
