"""The per-trace labeling task executed inside pool workers.

:func:`run_task` must stay a module-level function (pickled by
reference into pool workers) and must never raise: every failure is
folded into a ``status="failed"`` :class:`TraceReport` so one bad
shard cannot take down a batch.

A task's packets reach the worker over one of three transports:

* **regenerate** — the worker rebuilds the archive day from
  ``(archive_seed, trace_duration, date)``; nothing but a date string
  crosses the process boundary;
* **pickle** — an embedded :class:`~repro.net.trace.Trace` rides the
  task pipe (two copies + pickle framing);
* **shm** — a :class:`~repro.runner.shm.SharedTableHandle` names a
  shared-memory segment the worker attaches zero-copy.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.net.trace import Trace, TraceMetadata
from repro.runner.config import PipelineConfig
from repro.runner.report import TraceReport
from repro.runner.shm import SharedTableHandle


@dataclass(frozen=True)
class TraceTask:
    """One shard: label one trace (generated, embedded, or shared).

    When both ``trace`` and ``shm`` are ``None`` the worker regenerates
    the archive day from ``(archive_seed, trace_duration, date)`` —
    pickling a date string is far cheaper than pickling a packet trace.
    An embedded ``trace`` or a shared-memory ``shm`` handle supports
    labeling arbitrary traces (e.g. loaded pcaps).
    """

    date: str
    config: PipelineConfig = PipelineConfig()
    archive_seed: int = 2010
    trace_duration: float = 60.0
    trace: Optional[Trace] = None
    shm: Optional[SharedTableHandle] = None
    metadata: Optional[TraceMetadata] = None
    #: Trace-source fingerprint for alarm-cache keys.  Callers that
    #: know the provenance (e.g. an archive day shipped over shm) pass
    #: it so the cache key is transport-independent; ``None`` falls
    #: back to a content digest of the packets.
    fingerprint: Optional[str] = None
    cache_dir: Optional[str] = None
    out_dir: Optional[str] = None
    #: When true, the worker exports its Step 1 alarm table to a
    #: shared-memory segment and the report carries the handle — the
    #: parent attaches the *results* zero-copy (and owns the unlink).
    return_alarms: bool = False


def csv_path_for(out_dir: str | Path, date: str) -> Path:
    """Where one trace's label CSV lands inside ``out_dir``."""
    return Path(out_dir) / f"labels-{date}.csv"


def fingerprint_trace(trace: Trace) -> str:
    """Content-derived digest of an inline trace.

    Cache keys for embedded traces must reflect the packets themselves
    — two different traces sharing a name/length/duration must not
    share Step 1 alarms.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{trace.metadata.name}:{len(trace)}".encode())
    for pkt in trace:
        hasher.update(
            f"{pkt.time!r},{pkt.src},{pkt.dst},{pkt.sport},{pkt.dport},"
            f"{pkt.proto},{pkt.size},{pkt.tcp_flags},{pkt.icmp_type};".encode()
        )
    return f"inline:{hasher.hexdigest()[:16]}"


def _write_atomic(path: Path, text: str) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run_task(task: TraceTask) -> TraceReport:
    """Label one trace; never raises (failures become reports)."""
    started = time.perf_counter()
    try:
        report = _run_task_inner(task)
    except Exception as exc:  # noqa: BLE001 - shard isolation is the point
        report = TraceReport(
            date=task.date,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )
    report.elapsed = time.perf_counter() - started
    return report


def _run_task_inner(task: TraceTask) -> TraceReport:
    if task.shm is not None:
        attached = task.shm.attach()
        try:
            trace = Trace.from_table(attached.table, task.metadata)
            return _label_trace(task, trace, fingerprint=task.fingerprint)
        finally:
            attached.close()
    if task.trace is not None:
        return _label_trace(task, task.trace, fingerprint=task.fingerprint)
    from repro.mawi.archive import SyntheticArchive

    archive = SyntheticArchive(
        seed=task.archive_seed, trace_duration=task.trace_duration
    )
    trace = archive.day(task.date).trace
    return _label_trace(task, trace, fingerprint=archive.fingerprint())


def _label_trace(
    task: TraceTask, trace: Trace, fingerprint: Optional[str]
) -> TraceReport:
    """Shared Step 1-4 body behind every transport.

    ``fingerprint`` identifies the trace source for the alarm cache;
    ``None`` means content-derived (embedded/shared traces), computed
    only when a cache is actually configured — it costs a full packet
    scan.
    """
    from repro.labeling.mawilab import labels_to_csv
    from repro.runner.cache import AlarmCache

    pipeline = task.config.build_pipeline()

    cache = AlarmCache(task.cache_dir) if task.cache_dir else None
    alarms = None
    key = ""
    if cache is not None:
        if fingerprint is None:
            fingerprint = fingerprint_trace(trace)
        key_parts = (
            fingerprint,
            task.date,
            pipeline.ensemble_fingerprint(),
        )
        key = AlarmCache.make_key(*key_parts)
        alarms = cache.get(key, legacy=AlarmCache.legacy_keys(*key_parts))
    cache_hit = alarms is not None
    if alarms is None:
        # Step 1 batch-emits columnarly; the cache stores the table.
        alarms = pipeline.detect_table(trace)
        if cache is not None:
            cache.put(key, alarms)

    result = pipeline.run_with_alarms(trace, alarms)
    csv_text = labels_to_csv(result.labels)

    alarms_shm = None
    if task.return_alarms:
        from repro.core.alarm_table import AlarmTable
        from repro.runner.shm import export_alarm_table

        if not isinstance(alarms, AlarmTable):
            alarms = AlarmTable.from_alarms(list(alarms))
        alarms_shm = export_alarm_table(alarms)

    csv_path = ""
    if task.out_dir:
        out_path = csv_path_for(task.out_dir, task.date)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        _write_atomic(out_path, csv_text)
        csv_path = str(out_path)

    return TraceReport(
        date=task.date,
        status="ok",
        n_alarms=len(result.alarms),
        n_communities=len(result.community_set.communities),
        n_anomalous=len(result.anomalous()),
        n_suspicious=len(result.suspicious()),
        n_notice=len(result.notice()),
        cache_hit=cache_hit,
        csv_path=csv_path,
        csv_sha256=hashlib.sha256(csv_text.encode()).hexdigest(),
        alarms_shm=alarms_shm,
    )
