"""Streaming labeling engine: the online face of the 4-step method.

Where the offline pipeline (:mod:`repro.labeling.mawilab`) labels one
closed trace at a time, this package labels traffic *as it arrives*,
in bounded memory, emitting results per sliding window:

* :class:`~repro.stream.window.TraceWindow` — the columnar ring buffer
  (chunk ingestion, O(1) whole-chunk eviction);
* :class:`~repro.stream.pipeline.StreamingPipeline` — windowed
  detection with carried detector state, incremental alarm
  association, warm-started Louvain, and cross-window label
  deduplication;
* :class:`~repro.stream.pipeline.WindowResult` /
  :class:`~repro.stream.pipeline.StreamResult` — per-window and
  end-of-stream outputs, with throughput and latency accounting.

Parity guarantee: a window covering the whole stream reproduces the
offline label CSV byte-for-byte, on every engine.
"""

from repro.stream.pipeline import (
    StreamingPipeline,
    StreamResult,
    StreamStats,
    WindowResult,
)
from repro.stream.window import TraceWindow, chunk_table

__all__ = [
    "StreamingPipeline",
    "StreamResult",
    "StreamStats",
    "WindowResult",
    "TraceWindow",
    "chunk_table",
]
