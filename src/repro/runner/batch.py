"""The batch runner: longitudinal labeling across a process pool.

Historically the archive orchestrator; since the engine layer the
orchestration itself lives in one place —
:class:`repro.session.LabelingSession` — and :class:`BatchRunner` is a
thin, stable facade over its pooled run modes, kept because the batch
workload is this package's oldest public entry point.

Failure and restart semantics (provided by the session): a crashing
shard becomes a ``status="failed"`` report instead of aborting the
batch, and with ``resume=True`` a re-run skips every date whose label
CSV already exists in ``out_dir``, so only failed or missing shards
are recomputed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.mawi.archive import SyntheticArchive
from repro.net.trace import Trace
from repro.runner.config import PipelineConfig
from repro.runner.pool import ProgressCallback
from repro.runner.report import BatchReport


class BatchRunner:
    """Label many traces with one pipeline configuration.

    Parameters
    ----------
    config:
        Pipeline description applied to every trace.
    workers:
        Process-pool size; ``<= 1`` labels serially in-process.
    cache_dir:
        Optional directory for the Step 1 alarm cache shared by all
        workers (and by later runs with other combiners).
    out_dir:
        Optional directory receiving one ``labels-<date>.csv`` per
        trace; required for ``resume``.
    resume:
        Skip dates whose label CSV already exists in ``out_dir``.
    transport:
        Trace transport for :meth:`run_traces` — ``"shm"`` (zero-copy
        shared memory), ``"pickle"``, or ``"auto"`` (shm whenever the
        pool actually crosses process boundaries).
    fanout:
        Parallelism axis — ``"shard"`` (one task per trace, the
        default), ``"detector"`` or ``"trace"`` (intra-trace detector
        fan-out; see ``docs/architecture-fanout.md``).
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        out_dir: Optional[str] = None,
        resume: bool = False,
        transport: str = "auto",
        fanout: str = "shard",
    ) -> None:
        from repro.session import LabelingSession

        self.session = LabelingSession(
            config=config,
            workers=workers,
            cache_dir=cache_dir,
            out_dir=out_dir,
            resume=resume,
            transport=transport,
            fanout=fanout,
        )

    @property
    def config(self) -> PipelineConfig:
        return self.session.config

    @property
    def workers(self) -> int:
        return self.session.workers

    def run(
        self,
        archive: SyntheticArchive,
        dates: Sequence[str],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Label the archive days ``dates``; workers regenerate traces."""
        return self.session.label_archive(archive, dates, progress=progress)

    def run_traces(
        self,
        traces: Iterable[Trace],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Label arbitrary traces (shipped over the session transport)."""
        return self.session.label_traces(traces, progress=progress)

    def close(self) -> None:
        """Stop the pool and unlink shared-memory segments."""
        self.session.close()
