"""Traffic extractor (the "oracle" of the predecessor paper).

Retrieves the traffic described by each alarm at a chosen granularity
(paper Section 2.1.1).  The extracted traffic of an alarm is a set:

* packet granularity — a set of packet indices into the trace;
* uniflow / biflow granularity — a set of flow keys.

The granularity choice is the estimator's central trade-off (Fig. 1 and
Fig. 3): packets give precise but fragmented associations, flows relate
alarms that touch different packets of the same conversation.

Two interchangeable backends implement the retrieval, following the
same ``backend=`` convention as
:func:`~repro.core.graph.build_similarity_graph`:

* ``"numpy"`` (default) — alarm filters become boolean masks over the
  trace's :class:`~repro.net.table.PacketTable`, flows are dense
  integer codes (:func:`~repro.net.table.flow_codes`), and
  :meth:`TrafficExtractor.extract_all_codes` hands the per-alarm code
  arrays straight to the vectorized similarity-graph builder without
  ever constructing Python sets.
* ``"python"`` — the original per-packet predicate loop, kept as the
  readable reference; property tests assert both backends extract
  identical traffic sets.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

import numpy as np

from repro.backends import resolve_backend
from repro.detectors.base import Alarm
from repro.errors import TraceError
from repro.net.flow import FlowKey, Granularity, biflow_key, uniflow_key
from repro.net.trace import Trace


class TrafficExtractor:
    """Extracts, per alarm, the associated traffic set.

    The extractor precomputes per-packet flow keys (or dense flow
    codes, on the numpy backend) once per trace so that each alarm
    extraction costs only its own time window.

    Parameters
    ----------
    trace:
        The trace alarms refer to.
    granularity:
        Traffic granularity of the extracted sets.
    backend:
        ``"numpy"``, ``"python"`` or ``"auto"`` (numpy).  Both produce
        identical traffic sets.
    """

    def __init__(
        self,
        trace: Trace,
        granularity: Granularity = Granularity.UNIFLOW,
        backend: str = "auto",
    ) -> None:
        self.trace = trace
        self.granularity = granularity
        self.backend = resolve_backend(backend, what="extractor")
        if self.backend == "numpy":
            self._init_numpy()
        else:
            self._init_python()

    # -- python (reference) backend ------------------------------------

    def _init_python(self) -> None:
        trace = self.trace
        # Per-packet flow keys (lazy by granularity need).
        self._uniflow_of: list[FlowKey] = [uniflow_key(p) for p in trace]
        if self.granularity is Granularity.BIFLOW:
            self._biflow_of: list[FlowKey] = [biflow_key(p) for p in trace]
        else:
            self._biflow_of = []
        # Uniflow key -> packet indices, for flow-key alarms.
        self._uniflow_index: dict[FlowKey, list[int]] = {}
        for i, key in enumerate(self._uniflow_of):
            self._uniflow_index.setdefault(key, []).append(i)

    def _packet_indices(self, alarm: Alarm) -> set[int]:
        """Packet indices designated by the alarm (filters + flow keys)."""
        trace = self.trace
        indices: set[int] = set()
        for feature_filter in alarm.filters:
            t0 = feature_filter.t0 if feature_filter.t0 is not None else alarm.t0
            t1 = feature_filter.t1 if feature_filter.t1 is not None else alarm.t1
            for i in trace.time_slice(t0, t1):
                if feature_filter.matches(trace[i]):
                    indices.add(i)
        if alarm.flow_keys:
            for key in alarm.flow_keys:
                for i in self._uniflow_index.get(key, ()):
                    if alarm.t0 <= trace[i].time < alarm.t1 or (
                        trace[i].time == alarm.t1 == trace.end_time
                    ):
                        indices.add(i)
        return indices

    # -- numpy backend -------------------------------------------------

    def _init_numpy(self) -> None:
        trace = self.trace
        self._codes, self._keys = trace.flow_code_table(Granularity.UNIFLOW)
        self._key_to_code = {key: c for c, key in enumerate(self._keys)}
        if self.granularity is Granularity.BIFLOW:
            self._bicodes, self._bikeys = trace.flow_code_table(
                Granularity.BIFLOW
            )
            self._bikey_to_code = {
                key: c for c, key in enumerate(self._bikeys)
            }
        else:
            self._bicodes = np.empty(0, dtype=np.int64)
            self._bikeys = []
            self._bikey_to_code = {}

    def _alarm_mask(self, alarm: Alarm) -> np.ndarray:
        """Boolean packet mask designated by the alarm."""
        table = self.trace.table
        mask = np.zeros(len(table), dtype=bool)
        for feature_filter in alarm.filters:
            t0 = feature_filter.t0 if feature_filter.t0 is not None else alarm.t0
            t1 = feature_filter.t1 if feature_filter.t1 is not None else alarm.t1
            if t1 < t0:
                # Mirror Trace.time_slice on the reference path.
                raise TraceError(f"empty interval [{t0}, {t1})")
            mask |= feature_filter.mask(table, t0=t0, t1=t1)
        if alarm.flow_keys:
            wanted = [
                self._key_to_code[key]
                for key in alarm.flow_keys
                if key in self._key_to_code
            ]
            if wanted:
                in_flows = np.isin(self._codes, np.array(wanted, dtype=np.int64))
                time = table.time
                in_window = (time >= alarm.t0) & (time < alarm.t1)
                if alarm.t1 == self.trace.end_time:
                    in_window |= time == alarm.t1
                mask |= in_flows & in_window
        return mask

    def _codes_for_mask(self, mask: np.ndarray) -> np.ndarray:
        """Sorted unique traffic codes (or packet indices) of a mask."""
        if self.granularity is Granularity.PACKET:
            return np.nonzero(mask)[0]
        if self.granularity is Granularity.UNIFLOW:
            return np.unique(self._codes[mask])
        return np.unique(self._bicodes[mask])

    def codes_to_traffic(self, codes: np.ndarray) -> FrozenSet:
        """Materialize a code array as the public traffic set."""
        if self.granularity is Granularity.PACKET:
            return frozenset(int(i) for i in codes)
        keys = (
            self._keys
            if self.granularity is Granularity.UNIFLOW
            else self._bikeys
        )
        return frozenset(keys[int(c)] for c in codes)

    # -- public API ----------------------------------------------------

    def extract(self, alarm: Alarm) -> FrozenSet:
        """Traffic set of one alarm at this extractor's granularity."""
        if self.backend == "numpy":
            return self.codes_to_traffic(
                self._codes_for_mask(self._alarm_mask(alarm))
            )
        indices = self._packet_indices(alarm)
        if self.granularity is Granularity.PACKET:
            return frozenset(indices)
        if self.granularity is Granularity.UNIFLOW:
            return frozenset(self._uniflow_of[i] for i in indices)
        return frozenset(self._biflow_of[i] for i in indices)

    def extract_all(self, alarms: Sequence[Alarm]) -> list[FrozenSet]:
        """Traffic sets for a list of alarms (index-aligned)."""
        if self.backend == "numpy":
            return [
                self.codes_to_traffic(codes)
                for codes in self.extract_all_codes(alarms)
            ]
        return [self.extract(alarm) for alarm in alarms]

    def extract_all_codes(self, alarms: Sequence[Alarm]) -> list[np.ndarray]:
        """Batched extraction as dense int arrays (numpy backend only).

        Element ``i`` holds the sorted unique traffic codes (flow ids,
        or packet indices at packet granularity) of alarm ``i`` — the
        exact integer alphabet
        :func:`~repro.core.graph.build_similarity_graph` consumes
        directly, skipping Python set construction entirely.
        """
        if self.backend != "numpy":
            raise ValueError(
                "extract_all_codes requires the numpy extractor backend"
            )
        return [
            self._codes_for_mask(self._alarm_mask(alarm)) for alarm in alarms
        ]

    def packets_of(self, traffic: FrozenSet) -> list[int]:
        """Expand a traffic set back to packet indices.

        For packet granularity this is the identity; for flow
        granularities it returns every packet of every listed flow.
        Used by the heuristics and the rule miner, which need packets.
        """
        if self.backend == "numpy":
            return [int(i) for i in self.packet_index_array(traffic)]
        if self.granularity is Granularity.PACKET:
            return sorted(int(i) for i in traffic)
        if self.granularity is Granularity.UNIFLOW:
            result: list[int] = []
            for key in traffic:
                result.extend(self._uniflow_index.get(key, ()))
            return sorted(result)
        # Biflow: collect both directions via the biflow key map.
        wanted = set(traffic)
        return sorted(
            i for i, key in enumerate(self._biflow_of) if key in wanted
        )

    def packet_index_array(self, traffic: FrozenSet) -> np.ndarray:
        """Vectorized :meth:`packets_of` (sorted int64 array).

        Only available on the numpy backend; the heuristics use it to
        label community traffic without materializing packet objects.
        """
        if self.backend != "numpy":
            raise ValueError(
                "packet_index_array requires the numpy extractor backend"
            )
        if self.granularity is Granularity.PACKET:
            return np.array(sorted(int(i) for i in traffic), dtype=np.int64)
        if self.granularity is Granularity.UNIFLOW:
            key_to_code: dict = self._key_to_code
            codes = self._codes
        else:
            key_to_code = self._bikey_to_code
            codes = self._bicodes
        wanted = [key_to_code[key] for key in traffic if key in key_to_code]
        if not wanted:
            return np.empty(0, dtype=np.int64)
        mask = np.isin(codes, np.array(wanted, dtype=np.int64))
        return np.nonzero(mask)[0].astype(np.int64)
