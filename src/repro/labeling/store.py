"""Columnar label storage: the struct-of-arrays MAWILab database.

A :class:`LabelStore` holds one array per
:class:`~repro.labeling.mawilab.LabelRecord` field — community ids,
taxonomy / heuristic codes, time spans, alarm counts, the combiner's
confidence columns (``mu``, relative distance) — plus small
first-appearance name pools and ragged per-record detector /
annotation blocks.  It is the output-side twin of
:class:`~repro.core.alarm_table.AlarmTable`: records materialize
lazily (and cache) on indexed access, so the CSV/XML exporters — which
iterate records — render byte-identical output from a store or a plain
record list.

The streaming pipeline's cross-window label merging uses
:meth:`with_columns`: re-accepted labels get their renumbered ids and
extended spans written as whole-column overrides instead of per-record
``dataclasses.replace`` calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.labeling.taxonomy import TAXONOMY_ORDER

#: Per-record numeric columns.
LABEL_COLUMN_DTYPES: dict[str, np.dtype] = {
    "community_id": np.dtype(np.int64),
    "taxonomy_code": np.dtype(np.int8),
    "category_code": np.dtype(np.int16),
    "detail_code": np.dtype(np.int16),
    "t0": np.dtype(np.float64),
    "t1": np.dtype(np.float64),
    "n_alarms": np.dtype(np.int64),
    "relative_distance": np.dtype(np.float64),  # NaN = no metric
    "mu": np.dtype(np.float64),
}

LABEL_COLUMNS = tuple(LABEL_COLUMN_DTYPES)
LABEL_BOUND_COLUMNS = ("detector_bounds", "annotation_bounds")


class LabelStore:
    """Struct-of-arrays label records with lazy views."""

    __slots__ = LABEL_COLUMNS + LABEL_BOUND_COLUMNS + (
        "categories",
        "details",
        "detector_names",
        "annotation_tags",
        "summaries",
        "_record_cache",
    )

    def __init__(
        self,
        community_id,
        taxonomy_code,
        category_code,
        detail_code,
        t0,
        t1,
        n_alarms,
        relative_distance,
        mu,
        detector_bounds,
        annotation_bounds,
        categories: Sequence[str] = (),
        details: Sequence[str] = (),
        detector_names: Sequence[str] = (),
        annotation_tags: Sequence[str] = (),
        summaries: Sequence = (),
    ) -> None:
        values = dict(
            zip(
                LABEL_COLUMNS + LABEL_BOUND_COLUMNS,
                (
                    community_id, taxonomy_code, category_code, detail_code,
                    t0, t1, n_alarms, relative_distance, mu,
                    detector_bounds, annotation_bounds,
                ),
            )
        )
        dtypes = {
            **LABEL_COLUMN_DTYPES,
            "detector_bounds": np.dtype(np.int64),
            "annotation_bounds": np.dtype(np.int64),
        }
        for name, value in values.items():
            column = np.asarray(value, dtype=dtypes[name])
            if column.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            object.__setattr__(self, name, column)
        object.__setattr__(self, "categories", tuple(categories))
        object.__setattr__(self, "details", tuple(details))
        object.__setattr__(self, "detector_names", tuple(detector_names))
        object.__setattr__(self, "annotation_tags", tuple(annotation_tags))
        object.__setattr__(self, "summaries", tuple(summaries))
        n = len(self.community_id)
        for name in LABEL_COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} length mismatch")
        for name, pool in (
            ("detector_bounds", self.detector_names),
            ("annotation_bounds", self.annotation_tags),
        ):
            bounds = getattr(self, name)
            if len(bounds) != n + 1 or (n and int(bounds[-1]) != len(pool)):
                raise ValueError(f"{name} inconsistent with its pool")
        if len(self.summaries) != n:
            raise ValueError("one summary object per record required")
        object.__setattr__(self, "_record_cache", [None] * n)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("LabelStore is immutable")

    def __reduce__(self):
        return (
            LabelStore,
            tuple(
                getattr(self, name)
                for name in LABEL_COLUMNS + LABEL_BOUND_COLUMNS
            )
            + (
                self.categories,
                self.details,
                self.detector_names,
                self.annotation_tags,
                self.summaries,
            ),
        )

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence, engine="auto") -> "LabelStore":
        """Columnarize label records (lazy views give them back)."""
        from repro.engine import resolve_engine

        engine = resolve_engine(engine, what="label-store")
        records = list(records)
        n = len(records)
        alarm_codes = engine.kernel("alarm_codes")
        taxonomy_of = {name: code for code, name in enumerate(TAXONOMY_ORDER)}
        category_code, categories = alarm_codes(
            [r.heuristic.category for r in records]
        )
        detail_code, details = alarm_codes(
            [r.heuristic.detail for r in records]
        )
        detector_bounds = np.zeros(n + 1, dtype=np.int64)
        annotation_bounds = np.zeros(n + 1, dtype=np.int64)
        for i, record in enumerate(records):
            detector_bounds[i + 1] = detector_bounds[i] + len(record.detectors)
            annotation_bounds[i + 1] = (
                annotation_bounds[i] + len(record.annotations)
            )
        store = cls(
            community_id=np.fromiter(
                (r.community_id for r in records), np.int64, count=n
            ),
            taxonomy_code=np.fromiter(
                (taxonomy_of[r.taxonomy] for r in records), np.int8, count=n
            ),
            category_code=category_code.astype(np.int16),
            detail_code=detail_code.astype(np.int16),
            t0=np.fromiter((r.t0 for r in records), np.float64, count=n),
            t1=np.fromiter((r.t1 for r in records), np.float64, count=n),
            n_alarms=np.fromiter(
                (r.n_alarms for r in records), np.int64, count=n
            ),
            relative_distance=np.fromiter(
                (
                    np.nan if r.relative_distance is None else r.relative_distance
                    for r in records
                ),
                np.float64,
                count=n,
            ),
            mu=np.fromiter((r.mu for r in records), np.float64, count=n),
            detector_bounds=detector_bounds,
            annotation_bounds=annotation_bounds,
            categories=categories,
            details=details,
            detector_names=tuple(
                name for r in records for name in r.detectors
            ),
            annotation_tags=tuple(
                tag for r in records for tag in r.annotations
            ),
            summaries=tuple(r.summary for r in records),
        )
        object.__setattr__(store, "_record_cache", list(records))
        return store

    @classmethod
    def concatenate(cls, stores: Iterable["LabelStore"]) -> "LabelStore":
        """Stack stores row-wise (records keep their own ids)."""
        stores = [s for s in stores]
        if not stores:
            return cls.from_records([])
        if len(stores) == 1:
            return stores[0]
        records = [record for store in stores for record in store]
        return cls.from_records(records)

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.community_id)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator:
        for i in range(len(self)):
            yield self.record(i)

    def __getitem__(self, index: int):
        return self.record(index)

    def taxonomy_name(self, index: int) -> str:
        return TAXONOMY_ORDER[int(self.taxonomy_code[index])]

    def record(self, index: int):
        """Materialize row ``index`` as a :class:`LabelRecord` (cached)."""
        cached = self._record_cache[index]
        if cached is None:
            from repro.labeling.heuristics import HeuristicLabel
            from repro.labeling.mawilab import LabelRecord

            distance = float(self.relative_distance[index])
            lo, hi = (
                int(self.detector_bounds[index]),
                int(self.detector_bounds[index + 1]),
            )
            alo, ahi = (
                int(self.annotation_bounds[index]),
                int(self.annotation_bounds[index + 1]),
            )
            cached = self._record_cache[index] = LabelRecord(
                community_id=int(self.community_id[index]),
                taxonomy=self.taxonomy_name(index),
                heuristic=HeuristicLabel(
                    category=self.categories[int(self.category_code[index])],
                    detail=self.details[int(self.detail_code[index])],
                ),
                summary=self.summaries[index],
                t0=float(self.t0[index]),
                t1=float(self.t1[index]),
                n_alarms=int(self.n_alarms[index]),
                detectors=self.detector_names[lo:hi],
                relative_distance=None if np.isnan(distance) else distance,
                mu=float(self.mu[index]),
                annotations=self.annotation_tags[alo:ahi],
            )
        return cached

    def to_records(self) -> list:
        return [self.record(i) for i in range(len(self))]

    # -- column algebra -------------------------------------------------

    def with_columns(self, **overrides) -> "LabelStore":
        """A new store with whole numeric columns replaced.

        Only per-record numeric columns may be overridden; ragged
        blocks and pools are shared with the source store.  This is the
        streaming merge's column-slice operation: renumbered ids and
        extended spans in three vectorized writes.
        """
        unknown = set(overrides) - set(LABEL_COLUMNS)
        if unknown:
            raise KeyError(f"unknown label columns {sorted(unknown)}")
        columns = {
            name: overrides.get(name, getattr(self, name))
            for name in LABEL_COLUMNS
        }
        return LabelStore(
            **columns,
            detector_bounds=self.detector_bounds,
            annotation_bounds=self.annotation_bounds,
            categories=self.categories,
            details=self.details,
            detector_names=self.detector_names,
            annotation_tags=self.annotation_tags,
            summaries=self.summaries,
        )

    def take(self, rows) -> "LabelStore":
        """Row subset (index array or boolean mask), order preserved.

        A pure column gather — numeric columns slice, ragged blocks
        re-pack, name pools carry over (codes stay valid); no records
        are materialized.
        """
        from repro.core.alarm_table import _ragged_take

        rows = np.asarray(rows)
        if rows.dtype == bool:
            rows = np.nonzero(rows)[0]
        rows = rows.astype(np.int64)
        detector_bounds, detector_idx = _ragged_take(
            self.detector_bounds, rows
        )
        annotation_bounds, annotation_idx = _ragged_take(
            self.annotation_bounds, rows
        )
        return LabelStore(
            **{name: getattr(self, name)[rows] for name in LABEL_COLUMNS},
            detector_bounds=detector_bounds,
            annotation_bounds=annotation_bounds,
            categories=self.categories,
            details=self.details,
            detector_names=tuple(
                self.detector_names[int(i)] for i in detector_idx
            ),
            annotation_tags=tuple(
                self.annotation_tags[int(i)] for i in annotation_idx
            ),
            summaries=tuple(self.summaries[int(i)] for i in rows),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, LabelStore):
            return NotImplemented
        return self.to_records() == other.to_records()

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabelStore(n={len(self)})"


def taxonomy_counts(store: LabelStore) -> dict[str, int]:
    """Per-taxonomy record counts from the code column (no views)."""
    counts = np.bincount(
        store.taxonomy_code, minlength=len(TAXONOMY_ORDER)
    )
    return {name: int(counts[i]) for i, name in enumerate(TAXONOMY_ORDER)}
