"""Stdlib-only HTTP/JSON surface over the labeling service.

:class:`LabelServer` exposes a :class:`~repro.serve.daemon.LabelingService`
over a minimal HTTP/1.1 server built on :mod:`asyncio` — no third-party
web framework, matching the repository's no-new-dependencies rule.

Routes
------
``GET /health``
    Liveness/readiness summary (status, uptime, open feeds).
``GET /metrics``
    Ingest/query counters, per-feed queue depths and peaks,
    per-phase p95 latencies (window labeling, commit-to-queryable).
``GET /feeds``
    Per-feed status (state, packets in, windows labeled, queue).
``GET /labels``
    Query the live index: ``date``, ``taxonomy``, ``src``, ``dst``,
    ``t0``, ``t1``, ``limit`` filters; ``format=csv`` renders the
    day's full store through
    :func:`~repro.labeling.mawilab.labels_to_csv`, byte-identical to
    the offline ``repro label`` CSV for a fully ingested day.
``POST /feeds/<name>``
    Open a feed (JSON body: ``date``, ``window``, ``hop``,
    ``max_ring_packets``).
``POST /feeds/<name>/packets``
    Push a chunk: ``{"packets": [[time, src, dst, sport, dport,
    proto, size, tcp_flags, icmp_type], ...]}``.  The push runs in an
    executor thread so feed backpressure (a full ring) blocks this
    HTTP request — and therefore the remote producer — instead of
    buffering unboundedly in the server.
``POST /feeds/<name>/close``
    Drain and close a feed; returns its final status.

Queries never touch the pipeline: ``/labels`` reads the
:class:`~repro.labeling.database.LiveLabelIndex` snapshot only.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.errors import LabelingError, ServeError
from repro.net.table import COLUMNS, PacketTable
from repro.serve.daemon import LabelingService

_MAX_REQUEST_BYTES = 64 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def table_to_rows(table: PacketTable) -> list[list[float]]:
    """Render a packet table as JSON-serializable rows (wire format)."""
    columns = [getattr(table, name).tolist() for name in COLUMNS]
    return [list(row) for row in zip(*columns)]


def rows_to_table(rows: list[list[float]]) -> PacketTable:
    """Parse the wire format back into a :class:`PacketTable`."""
    if not rows:
        return PacketTable.empty()
    width = len(COLUMNS)
    for row in rows:
        if len(row) != width:
            raise ServeError(
                f"packet rows need {width} fields "
                f"({', '.join(COLUMNS)}); got {len(row)}"
            )
    matrix = np.asarray(rows, dtype=np.float64)
    return PacketTable(
        **{name: matrix[:, i] for i, name in enumerate(COLUMNS)}
    )


def _query_param(params: dict, name: str) -> Optional[str]:
    values = params.get(name)
    return values[-1] if values else None


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class LabelServer:
    """Serve one :class:`LabelingService` over HTTP.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` once :meth:`start` (or :meth:`start_background`)
    returns.  :meth:`serve_forever` blocks for CLI use;
    :meth:`start_background` runs the event loop on a daemon thread
    for tests and the bench harness.
    """

    def __init__(
        self,
        service: LabelingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.requests = 0
        self.errors = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def serve_forever(self) -> None:
        """Run the server on this thread until cancelled (CLI mode)."""

        async def _run() -> None:
            await self.start()
            assert self._server is not None
            async with self._server:
                await self._server.serve_forever()

        try:
            asyncio.run(_run())
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass

    def start_background(self, timeout: float = 10.0) -> "LabelServer":
        """Run the event loop on a daemon thread; returns when bound."""

        def _run() -> None:
            asyncio.run(self._background_main())

        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=_run, name="label-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("HTTP server failed to start in time")
        return self

    async def _background_main(self) -> None:
        self._stop_event = asyncio.Event()
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._stop_event.wait()
        self._started.clear()

    def stop_background(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "LabelServer":
        return self.start_background()

    def __exit__(self, *exc) -> None:
        self.stop_background()

    # -- request handling ----------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                self.requests += 1
                try:
                    status, payload, content_type = await self._route(
                        method, path, body
                    )
                except _HTTPError as exc:
                    self.errors += 1
                    status = exc.status
                    payload = json.dumps({"error": exc.message}) + "\n"
                    content_type = "application/json"
                except Exception as exc:  # noqa: BLE001 - server isolation
                    self.errors += 1
                    status = 500
                    payload = (
                        json.dumps(
                            {"error": f"{type(exc).__name__}: {exc}"}
                        )
                        + "\n"
                    )
                    content_type = "application/json"
                await self._respond(
                    writer, status, payload, content_type, keep_alive
                )
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split(" ")
        if len(parts) != 3:
            raise _HTTPError(400, "malformed request line")
        method, path, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_REQUEST_BYTES:
            raise _HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and version == "HTTP/1.1"
        )
        return method.upper(), path, body, keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: str,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        data = payload.encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode() + data)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes):
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)
        if method == "GET":
            if path == "/health":
                return self._json(self.service.health())
            if path == "/metrics":
                metrics = self.service.metrics()
                metrics["http"] = {
                    "requests": self.requests,
                    "errors": self.errors,
                }
                return self._json(metrics)
            if path == "/feeds":
                return self._json({"feeds": self.service.feeds_status()})
            if path == "/labels":
                return self._labels(params)
            raise _HTTPError(404, f"no route {path!r}")
        if method == "POST":
            segments = [s for s in path.split("/") if s]
            if len(segments) == 2 and segments[0] == "feeds":
                return self._open_feed(segments[1], body)
            if (
                len(segments) == 3
                and segments[0] == "feeds"
                and segments[2] == "packets"
            ):
                return await self._push_packets(segments[1], body)
            if (
                len(segments) == 3
                and segments[0] == "feeds"
                and segments[2] == "close"
            ):
                return await self._close_feed(segments[1])
            raise _HTTPError(404, f"no route {path!r}")
        raise _HTTPError(405, f"method {method} not supported")

    @staticmethod
    def _json(payload: dict, status: int = 200):
        return status, json.dumps(payload) + "\n", "application/json"

    @staticmethod
    def _body_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HTTPError(400, "JSON body must be an object")
        return payload

    def _labels(self, params: dict):
        from repro.errors import WarehouseError

        date = _query_param(params, "date")
        fmt = _query_param(params, "format") or "json"
        if fmt == "csv":
            if not date:
                raise _HTTPError(400, "format=csv requires date=")
            try:
                # Warehouse-first: a fully-ingested day renders from
                # its mmap columns, not the live index.
                return 200, self.service.labels_csv(date), "text/csv"
            except LabelingError as exc:
                raise _HTTPError(404, str(exc)) from exc
            except WarehouseError as exc:
                raise _HTTPError(500, str(exc)) from exc
        if fmt != "json":
            raise _HTTPError(400, f"unknown format {fmt!r}")

        def _float(name: str) -> Optional[float]:
            raw = _query_param(params, name)
            if raw is None:
                return None
            try:
                return float(raw)
            except ValueError as exc:
                raise _HTTPError(
                    400, f"{name}= must be a number, got {raw!r}"
                ) from exc

        def _int(name: str) -> Optional[int]:
            raw = _query_param(params, name)
            if raw is None:
                return None
            try:
                return int(raw)
            except ValueError as exc:
                raise _HTTPError(
                    400, f"{name}= must be an integer, got {raw!r}"
                ) from exc

        limit = _int("limit")
        try:
            rows = self.service.query_labels(
                date=date,
                taxonomy=_query_param(params, "taxonomy"),
                src=_query_param(params, "src"),
                dst=_query_param(params, "dst"),
                sport=_int("sport"),
                dport=_int("dport"),
                t0=_float("t0"),
                t1=_float("t1"),
                limit=limit,
            )
        except LabelingError as exc:
            raise _HTTPError(400, str(exc)) from exc
        except WarehouseError as exc:
            raise _HTTPError(400, str(exc)) from exc
        return self._json({"labels": rows, "count": len(rows)})

    def _open_feed(self, name: str, body: bytes):
        options = self._body_json(body)
        try:
            feed = self.service.open_feed(
                name,
                date=options.get("date"),
                window=options.get("window"),
                hop=options.get("hop"),
                max_ring_packets=options.get("max_ring_packets"),
            )
        except ServeError as exc:
            raise _HTTPError(409, str(exc)) from exc
        return self._json(feed.status())

    async def _push_packets(self, name: str, body: bytes):
        payload = self._body_json(body)
        rows = payload.get("packets")
        if not isinstance(rows, list):
            raise _HTTPError(400, 'body must carry {"packets": [...]}')
        try:
            table = rows_to_table(rows)
        except (ServeError, ValueError) as exc:
            raise _HTTPError(400, str(exc)) from exc
        loop = asyncio.get_running_loop()
        try:
            # Executor hand-off: a full feed ring blocks this request
            # (backpressure reaches the remote producer) without
            # stalling the event loop for other clients.
            await loop.run_in_executor(
                None, lambda: self.service.push(name, table)
            )
        except ServeError as exc:
            raise _HTTPError(409, str(exc)) from exc
        return self._json({"accepted": len(table)})

    async def _close_feed(self, name: str):
        loop = asyncio.get_running_loop()
        try:
            status = await loop.run_in_executor(
                None, lambda: self.service.close_feed(name)
            )
        except ServeError as exc:
            raise _HTTPError(409, str(exc)) from exc
        return self._json(status)
