"""Process-pool fan-out shared by the batch runner, sweeps and streams.

Two layers:

* :class:`WorkerPool` — a lazily spawned, *persistent*
  ``ProcessPoolExecutor`` wrapper.  The executor survives across
  ``map`` calls, so a session fanning out many shards (or a streaming
  pipeline fanning out every window) pays worker start-up once, and
  worker-side caches — module imports, the pinned
  :class:`~repro.runner.shm.SegmentRegistry` — stay warm between
  calls.  ``workers <= 1`` runs inline in the calling process — no
  fork, no pickling — which keeps tests debuggable and lets
  monkeypatched worker internals take effect.
* :func:`parallel_map` — the historical one-shot helper, now a thin
  wrapper that opens a temporary :class:`WorkerPool` for one call.

Both preserve input order in their results while firing progress
callbacks in completion order, so sharded results are deterministic
regardless of scheduling.  :meth:`WorkerPool.map_pipelined` adds the
overlap primitive the zero-copy transport needs: tasks are *produced
lazily* (the producing iterator performs the shared-memory export)
and at most ``in_flight`` of them exist at once, so the parent exports
shard ``i + k`` while workers still compute shards ``i..i + k - 1``
instead of serializing all exports up front.
"""

from __future__ import annotations

import os
import signal
import threading
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: ``progress(done, total, result)`` called after each item finishes.
ProgressCallback = Callable[[int, int, object], None]

#: Every live pool, so a dying daemon can stop all workers at once.
_live_pools: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()

#: Extra teardown callbacks (shared-memory arena unlinks, session
#: finalizers) run before the pools are stopped on a fatal signal.
#: Entries are ``weakref.finalize`` objects or plain callables; spent
#: finalizers are pruned on each run.
_signal_cleanups: list[Callable[[], None]] = []
_signal_lock = threading.Lock()
_installed_handlers: dict[int, object] = {}


def register_signal_cleanup(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a teardown callback for :func:`install_signal_handlers`.

    ``fn`` should be idempotent (``weakref.finalize`` objects are
    ideal: they run at most once and report liveness).  Returns an
    unregister function.
    """
    with _signal_lock:
        _signal_cleanups.append(fn)

    def unregister() -> None:
        with _signal_lock:
            try:
                _signal_cleanups.remove(fn)
            except ValueError:
                pass

    return unregister


def shutdown_all_pools() -> None:
    """Stop every live :class:`WorkerPool` (idempotent)."""
    for pool in list(_live_pools):
        pool.shutdown()


def _run_signal_cleanup() -> None:
    """Run registered teardown, then stop all pools.

    Errors are swallowed: this runs on the way down from SIGTERM /
    SIGINT, where the only job left is not leaking workers or
    ``/dev/shm`` segments.
    """
    with _signal_lock:
        callbacks = list(_signal_cleanups)
        # Prune finalizers that already ran (their sessions closed).
        _signal_cleanups[:] = [
            fn
            for fn in _signal_cleanups
            if getattr(fn, "alive", True)
        ]
    for fn in callbacks:
        try:
            fn()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
    try:
        shutdown_all_pools()
    except Exception:  # noqa: BLE001 - teardown must not raise
        pass


def install_signal_handlers(
    signums: Sequence[int] = (signal.SIGTERM, signal.SIGINT),
) -> None:
    """Make SIGTERM/SIGINT stop workers and unlink shm before dying.

    A killed daemon must leave no orphan worker processes and no
    leaked ``/dev/shm`` segments; the default handlers give the
    parent's executors and arenas no chance to clean up.  The
    installed handler runs :func:`_run_signal_cleanup` and then
    *chains*: a previous Python-level handler is invoked (so
    ``KeyboardInterrupt`` semantics survive for SIGINT), otherwise the
    original disposition is restored and the signal re-raised so the
    process still dies with the conventional status.

    Idempotent; only callable from the main thread (a no-op
    otherwise, matching :mod:`signal` rules).
    """
    if threading.current_thread() is not threading.main_thread():
        return
    for signum in signums:
        if signum in _installed_handlers:
            continue

        def _handler(signum: int, frame) -> None:
            previous = _installed_handlers.get(signum, signal.SIG_DFL)
            _run_signal_cleanup()
            if callable(previous):
                previous(signum, frame)
            elif previous != signal.SIG_IGN:
                signal.signal(signum, signal.SIG_DFL)
                _installed_handlers.pop(signum, None)
                os.kill(os.getpid(), signum)

        _installed_handlers[signum] = signal.signal(signum, _handler)


def uninstall_signal_handlers() -> None:
    """Restore the pre-install handlers (test hygiene)."""
    for signum, previous in list(_installed_handlers.items()):
        signal.signal(signum, previous)  # type: ignore[arg-type]
        del _installed_handlers[signum]


class WorkerPool:
    """A reusable process pool with an inline serial mode.

    Parameters
    ----------
    workers:
        Pool size.  ``<= 1`` never spawns processes: ``submit`` runs
        the callable immediately in the caller and returns an
        already-resolved future, which preserves the historical
        serial-mode semantics (debuggability, monkeypatching).

    The underlying executor is created on first parallel use and kept
    until :meth:`shutdown` (the pool is also a context manager).  A
    broken pool — a worker died mid-task — is discarded on the way out
    of the failing call, so the next use respawns cleanly instead of
    failing forever.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        _live_pools.add(self)

    # -- lifecycle -----------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether tasks actually cross a process boundary."""
        return self.workers > 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool respawns on reuse)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- execution -----------------------------------------------------

    def submit(self, fn: Callable[[T], R], item: T) -> Future:
        """Submit one task; inline mode resolves it synchronously."""
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(item))
            except BaseException as exc:  # noqa: BLE001 - mirrored to future
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, item)

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        progress: Optional[ProgressCallback] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item; results in input order.

        ``fn`` must be a module-level callable and items picklable in
        parallel mode.  ``progress`` fires as items *complete* (any
        order).
        """
        return self.map_pipelined(
            fn, items, total=len(items), progress=progress
        )

    def map_pipelined(
        self,
        fn: Callable[[T], R],
        tasks: Iterable[T],
        total: Optional[int] = None,
        in_flight: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> list[R]:
        """Lazily-produced map with bounded concurrency (double buffer).

        ``tasks`` is consumed incrementally: the next task is pulled —
        and whatever expensive work its production entails (a
        shared-memory export, a trace generation) is performed — only
        when a submission slot frees up, overlapping production with
        worker compute.  At most ``in_flight`` tasks exist at once
        (default ``workers + 2``: one buffer filling while ``workers``
        drain).  Results come back in input order; ``total`` (when
        known) feeds the progress callback, else the count seen so far
        is reported.

        A task that raises inside ``fn`` propagates after in-flight
        work drains — matching ``ProcessPoolExecutor`` semantics — and
        a broken executor is discarded so the pool stays reusable.
        """
        iterator: Iterator[T] = iter(tasks)
        if not self.parallel:
            results: list[R] = []
            for item in iterator:
                results.append(fn(item))
                if progress is not None:
                    progress(
                        len(results),
                        total if total is not None else len(results),
                        results[-1],
                    )
            return results

        if in_flight is None:
            in_flight = self.workers + 2
        in_flight = max(in_flight, 1)
        executor = self._ensure_executor()
        slots: dict[Future, int] = {}
        results: dict[int, R] = {}
        submitted = 0
        done = 0
        exhausted = False
        try:
            while True:
                while not exhausted and len(slots) < in_flight:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    slots[executor.submit(fn, item)] = submitted
                    submitted += 1
                if not slots:
                    break
                finished, _pending = wait(
                    set(slots), return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = slots.pop(future)
                    results[index] = future.result()
                    done += 1
                    if progress is not None:
                        progress(
                            done,
                            total if total is not None else done,
                            results[index],
                        )
        except BaseException:
            # A worker death (BrokenProcessPool) poisons the executor;
            # drop it so the next call respawns instead of rethrowing
            # forever.  Ordinary task exceptions don't break the pool,
            # but cancelling the backlog keeps failure prompt.
            self.shutdown()
            raise
        return [results[i] for i in range(submitted)]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> list[R]:
    """One-shot :meth:`WorkerPool.map` over a temporary pool.

    Kept for callers without a pool to persist (CLI microbenches, grid
    sweeps); anything issuing repeated maps should hold a
    :class:`WorkerPool` instead and amortize worker start-up.
    """
    items = list(items)
    if not items:
        return []
    with WorkerPool(workers=min(workers, len(items))) as pool:
        return pool.map(fn, items, progress=progress)
