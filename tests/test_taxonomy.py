"""Unit tests for the MAWILab taxonomy."""

import pytest

from repro.core.strategies import Decision
from repro.errors import LabelingError
from repro.labeling.taxonomy import (
    TAXONOMY_ANOMALOUS,
    TAXONOMY_NOTICE,
    TAXONOMY_SUSPICIOUS,
    assign_taxonomy,
)


def decision(accepted, mu=0.0, relative_distance=None):
    return Decision(
        community_id=0,
        accepted=accepted,
        mu=mu,
        relative_distance=relative_distance,
    )


class TestTaxonomy:
    def test_accepted_is_anomalous(self):
        assert assign_taxonomy(decision(True, mu=0.9)) == TAXONOMY_ANOMALOUS

    def test_rejected_close_is_suspicious(self):
        d = decision(False, relative_distance=0.3)
        assert assign_taxonomy(d) == TAXONOMY_SUSPICIOUS

    def test_rejected_boundary_is_suspicious(self):
        d = decision(False, relative_distance=0.5)
        assert assign_taxonomy(d) == TAXONOMY_SUSPICIOUS

    def test_rejected_far_is_notice(self):
        d = decision(False, relative_distance=0.51)
        assert assign_taxonomy(d) == TAXONOMY_NOTICE

    def test_custom_threshold(self):
        d = decision(False, relative_distance=0.8)
        assert assign_taxonomy(d, suspicious_distance=1.0) == TAXONOMY_SUSPICIOUS

    def test_mu_fallback_for_non_scann(self):
        near = decision(False, mu=0.45)  # 0.5/0.45 - 1 = 0.11 -> suspicious
        far = decision(False, mu=0.1)  # 0.5/0.1 - 1 = 4 -> notice
        assert assign_taxonomy(near) == TAXONOMY_SUSPICIOUS
        assert assign_taxonomy(far) == TAXONOMY_NOTICE

    def test_mu_zero_is_notice(self):
        assert assign_taxonomy(decision(False, mu=0.0)) == TAXONOMY_NOTICE

    def test_inconsistent_decision_rejected(self):
        with pytest.raises(LabelingError):
            assign_taxonomy(decision(False, mu=0.9))
