"""Association-rule mining (modified Apriori).

The paper uses association rules in two places:

* the KL-based detector extracts the feature sets responsible for a
  histogram change (Brauckhoff et al., IMC'09);
* the similarity-estimator evaluation and the final labeling summarize
  each community's traffic into concise 4-tuple rules (Section 4.1.1),
  scored by *rule degree* and *rule support*.

Both use the same engine: :func:`~repro.rules.apriori.apriori`, a
breadth-first Apriori with the paper's modification that minimum
support ``s`` is a *percentage* of the transactions rather than an
absolute count.
"""

from repro.rules.apriori import AprioriResult, FrequentItemset, apriori
from repro.rules.itemsets import (
    FIELDS,
    Rule,
    itemset_to_rule,
    transactions_from_flows,
    transactions_from_packets,
)
from repro.rules.summarize import CommunitySummary, summarize_transactions

__all__ = [
    "AprioriResult",
    "FrequentItemset",
    "apriori",
    "FIELDS",
    "Rule",
    "itemset_to_rule",
    "transactions_from_flows",
    "transactions_from_packets",
    "CommunitySummary",
    "summarize_transactions",
]
