"""Dense per-time-bin feature histograms over the columnar table.

The KL and entropy detectors both monitor per-bin value histograms of
header features (src, dst, sport, dport).  On the vectorized engine those
histograms are dense integer matrices computed in one
``np.bincount`` pass over ``(time bin, value code)`` instead of one
``Counter`` per bin — the detector feature-binning kernel of the
vectorized engine.

:func:`binned_value_histogram` is property-tested element-for-element
against the Counter-based reference used by the detectors' reference
paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.table import PacketTable


@dataclass(frozen=True)
class BinnedHistogram:
    """Per-bin value histogram of one feature column.

    Attributes
    ----------
    feature:
        Column name ("src", "dst", "sport", "dport").
    values:
        The distinct feature values, ascending; index = value code.
    codes:
        Per-packet dense value code (index into :attr:`values`).
    counts:
        ``(n_bins, n_values)`` int64 matrix; ``counts[b, c]`` is the
        number of bin-``b`` packets carrying value ``values[c]``.
    """

    feature: str
    values: np.ndarray
    codes: np.ndarray
    counts: np.ndarray

    def bin_total(self, b: int) -> int:
        """Number of packets in time bin ``b``."""
        return int(self.counts[b].sum())


def binned_value_histogram(
    table: PacketTable,
    feature: str,
    bin_idx: np.ndarray,
    n_bins: int,
) -> BinnedHistogram:
    """Histogram every time bin of ``feature`` in one vectorized pass."""
    column = table.column(feature)
    values, codes = np.unique(column, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    n_values = len(values)
    if n_values == 0:
        counts = np.zeros((n_bins, 0), dtype=np.int64)
    else:
        counts = np.bincount(
            bin_idx * n_values + codes, minlength=n_bins * n_values
        ).reshape(n_bins, n_values)
    return BinnedHistogram(
        feature=feature, values=values, codes=codes, counts=counts
    )


def first_appearance_order(
    member_codes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique codes of a bin plus their first-appearance positions.

    Both detectors break ranking ties the way ``Counter`` iteration
    does — by first appearance within the bin — so the position of each
    value's first packet is the secondary sort key everywhere.
    """
    return np.unique(member_codes, return_index=True)
