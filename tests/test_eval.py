"""Unit tests for the evaluation harness (metrics, gain/cost, report)."""

import numpy as np
import pytest

from repro.core.strategies import Decision
from repro.eval.gaincost import GainCost, exclusive_acceptance, gain_cost, gain_cost_by_detector
from repro.eval.metrics import (
    attack_ratio,
    attack_ratio_by_class,
    cdf_points,
    histogram_pdf,
    quantile_summary,
)
from repro.eval.report import format_series, format_table
from repro.labeling.heuristics import HeuristicLabel
from tests.test_confidence_strategies import make_community

ATTACK = HeuristicLabel("attack", "Other")
SPECIAL = HeuristicLabel("special", "Http")
UNKNOWN = HeuristicLabel("unknown", "Unknown")


def decision(cid, accepted):
    return Decision(community_id=cid, accepted=accepted, mu=1.0 if accepted else 0.0)


class TestAttackRatio:
    def test_basic(self):
        assert attack_ratio([ATTACK, ATTACK, SPECIAL, UNKNOWN]) == 0.5

    def test_empty(self):
        assert attack_ratio([]) == 0.0

    def test_by_class(self):
        labels = [ATTACK, SPECIAL, ATTACK, UNKNOWN]
        accepted = [True, True, False, False]
        acc, rej = attack_ratio_by_class(labels, accepted)
        assert acc == 0.5
        assert rej == 0.5

    def test_by_class_mismatch(self):
        with pytest.raises(ValueError):
            attack_ratio_by_class([ATTACK], [])


class TestDistributions:
    def test_histogram_pdf_integrates_to_one(self):
        values = np.random.default_rng(0).random(500)
        centers, density = histogram_pdf(values, bins=10)
        assert len(centers) == 10
        assert density.sum() * 0.1 == pytest.approx(1.0)

    def test_histogram_pdf_empty(self):
        centers, density = histogram_pdf([], bins=5)
        assert (density == 0).all()

    def test_cdf_points(self):
        xs, ps = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == 1.0
        assert (np.diff(ps) > 0).all()

    def test_cdf_empty(self):
        xs, ps = cdf_points([])
        assert len(xs) == 0

    def test_quantile_summary(self):
        summary = quantile_summary([1.0, 2.0, 3.0])
        assert summary["median"] == 2.0
        assert summary["max"] == 3.0

    def test_quantile_summary_empty(self):
        assert quantile_summary([])["mean"] == 0.0


class TestGainCost:
    def test_table2_quadrants(self):
        labels = [ATTACK, SPECIAL, ATTACK, UNKNOWN]
        decisions = [
            decision(0, True),   # attack accepted -> gain_acc
            decision(1, True),   # special accepted -> cost_acc
            decision(2, False),  # attack rejected -> cost_rej
            decision(3, False),  # unknown rejected -> gain_rej
        ]
        result = gain_cost(decisions, labels)
        assert (result.gain_acc, result.cost_acc) == (1, 1)
        assert (result.gain_rej, result.cost_rej) == (1, 1)
        assert result.accepted == 2
        assert result.rejected == 2

    def test_addition(self):
        a = GainCost(1, 2, 3, 4)
        b = GainCost(10, 20, 30, 40)
        total = a + b
        assert (total.gain_acc, total.cost_acc) == (11, 22)
        assert (total.gain_rej, total.cost_rej) == (33, 44)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            gain_cost([decision(0, True)], [])

    def test_per_detector_restriction(self):
        communities = [
            make_community(["pca/0"], community_id=0),
            make_community(["kl/0"], community_id=1),
        ]
        labels = [ATTACK, ATTACK]
        decisions = [decision(0, True), decision(1, False)]
        pca_only = gain_cost(decisions, labels, communities, detector="pca")
        assert pca_only.gain_acc == 1
        assert pca_only.cost_rej == 0

    def test_per_detector_requires_communities(self):
        with pytest.raises(ValueError):
            gain_cost([decision(0, True)], [ATTACK], detector="pca")

    def test_by_detector_includes_overall(self):
        communities = [make_community(["pca/0"], community_id=0)]
        result = gain_cost_by_detector(
            [decision(0, True)], [ATTACK], communities
        )
        assert set(result) == {"pca", "gamma", "hough", "kl", "overall"}
        assert result["overall"].gain_acc == 1

    def test_exclusive_acceptance(self):
        communities = [
            make_community(["pca/0"], community_id=0),
            make_community(["kl/0", "kl/1"], community_id=1),
            make_community(["kl/0", "pca/0"], community_id=2),  # 2 detectors
        ]
        decisions = [decision(0, False), decision(1, True), decision(2, True)]
        stats = exclusive_acceptance(decisions, communities)
        assert stats["pca"] == {"accepted": 0, "total": 1}
        assert stats["kl"] == {"accepted": 1, "total": 1}
        assert len(stats) == 2  # the 2-detector community is excluded


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert text.startswith("T\n")
        assert "2.5" in text
        assert "-" * 4 in text

    def test_format_series_subsamples(self):
        x = list(range(1000))
        y = [v * 2 for v in x]
        text = format_series(x, y, max_points=10)
        assert len(text.split("\n")) < 30

    def test_format_series_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1, 2])
