"""The columnar label warehouse: round-trips, crashes, queries, deltas.

Four angles on :mod:`repro.labeling.warehouse`:

* **Round-trips** — stores (including ragged rule/detector/annotation
  blocks and the ``CommunitySummary`` metrics) and alarm tables must
  decode from a mapped segment *equal* to the in-memory original, and
  the CSV export must be byte-identical to ``labels_to_csv``; a
  hypothesis suite drives this over arbitrary record shapes.
* **Crash injection** — truncated segments are rejected on open (size
  check), silent corruption by ``verify`` (SHA-256), torn manifests
  cannot happen (``write_atomic``), and a crash mid-``store_day``
  leaves the previous manifest pointing only at complete files.
* **Queries** — predicate pushdown over mapped columns agrees with the
  in-memory :class:`~repro.labeling.database.LiveLabelIndex` row for
  row, on both engines.
* **Delta recompute** — a combiner-only configuration change must
  rerun zero Step 1 detections (alarms come back from the old
  version's segments or the :class:`~repro.runner.cache.AlarmCache`),
  flip the current version only at the end, and report per-day diffs.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.alarm_table import AlarmTable
from repro.errors import LabelingError, WarehouseError
from repro.labeling.database import LiveLabelIndex
from repro.labeling.heuristics import HeuristicLabel
from repro.labeling.mawilab import LabelRecord, labels_to_csv
from repro.labeling.store import LabelStore
from repro.labeling.taxonomy import TAXONOMY_ORDER
from repro.labeling.warehouse import (
    Segment,
    Warehouse,
    archive_meta,
    encode_label_segment,
    warehouse_fingerprint,
)
from repro.rules.itemsets import Rule
from repro.rules.summarize import CommunitySummary

# -- strategies --------------------------------------------------------

_rules = st.builds(
    Rule,
    src=st.none() | st.integers(0, 2**32 - 1),
    sport=st.none() | st.integers(0, 65535),
    dst=st.none() | st.integers(0, 2**32 - 1),
    dport=st.none() | st.integers(0, 65535),
    support=st.floats(0.0, 1.0, allow_nan=False),
    count=st.integers(0, 50),
)

_detector_pool = ("kl", "pca", "hough", "gamma")
_annotation_pool = ("manual", "classifier:dns", "classifier:p2p")


@st.composite
def label_records(draw):
    """Arbitrary-but-valid label records, ragged blocks included."""
    records = []
    for i in range(draw(st.integers(0, 8))):
        t0 = draw(st.floats(0.0, 10.0, allow_nan=False))
        records.append(
            LabelRecord(
                community_id=i,
                taxonomy=draw(st.sampled_from(TAXONOMY_ORDER)),
                heuristic=HeuristicLabel(
                    category=draw(
                        st.sampled_from(["attack", "special", "unknown"])
                    ),
                    detail=draw(
                        st.sampled_from(["Sasser", "Http", "Unknown"])
                    ),
                ),
                summary=CommunitySummary(
                    rules=draw(st.lists(_rules, max_size=3)),
                    rule_degree=draw(st.floats(0.0, 4.0, allow_nan=False)),
                    rule_support=draw(
                        st.floats(0.0, 100.0, allow_nan=False)
                    ),
                    n_transactions=draw(st.integers(0, 100)),
                ),
                t0=t0,
                t1=t0 + draw(st.floats(0.0, 5.0, allow_nan=False)),
                n_alarms=draw(st.integers(1, 20)),
                detectors=tuple(
                    draw(
                        st.lists(
                            st.sampled_from(_detector_pool),
                            max_size=4,
                            unique=True,
                        )
                    )
                ),
                relative_distance=draw(
                    st.none() | st.floats(0.0, 3.0, allow_nan=False)
                ),
                mu=draw(st.floats(0.0, 1.0, allow_nan=False)),
                annotations=tuple(
                    draw(
                        st.lists(
                            st.sampled_from(_annotation_pool),
                            max_size=2,
                            unique=True,
                        )
                    )
                ),
            )
        )
    return records


# -- fixtures ----------------------------------------------------------


@pytest.fixture
def warehouse(tmp_path):
    wh = Warehouse(tmp_path / "wh")
    wh.ensure_version("vtest")
    return wh


@pytest.fixture(scope="module")
def result_store(pipeline_result):
    return pipeline_result.label_store()


# -- round-trips -------------------------------------------------------


def test_pipeline_store_round_trips(warehouse, pipeline_result):
    warehouse.store_result("2004-06-01", pipeline_result)
    decoded = warehouse.label_store("2004-06-01")
    assert decoded == pipeline_result.label_store()
    alarms = warehouse.alarm_table("2004-06-01")
    expected = (
        pipeline_result.alarms
        if isinstance(pipeline_result.alarms, AlarmTable)
        else AlarmTable.from_alarms(list(pipeline_result.alarms))
    )
    assert alarms == expected


def test_export_is_byte_identical_to_labels_to_csv(
    warehouse, pipeline_result
):
    warehouse.store_result("2004-06-01", pipeline_result)
    assert warehouse.export_csv("2004-06-01") == labels_to_csv(
        pipeline_result.labels
    )


def test_numeric_columns_are_memmap_views(warehouse, result_store):
    """Zero-copy: decoded numeric columns alias the file mapping."""
    warehouse.store_day("2004-06-01", result_store)
    decoded = warehouse.label_store("2004-06-01")
    for column in ("community_id", "t0", "mu"):
        base = getattr(decoded, column).base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap), column


@given(records=label_records())
@settings(
    max_examples=40,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
    deadline=None,
)
def test_store_round_trips_any_records(tmp_path, records):
    """write -> open -> take/records equals the in-memory store."""
    store = LabelStore.from_records(records)
    root = tmp_path / f"wh-{abs(hash(tuple(r.t0 for r in records)))}"
    with Warehouse(root) as wh:
        wh.ensure_version("vtest")
        wh.store_day("2004-01-01", store)
        decoded = wh.label_store("2004-01-01")
        assert decoded == store
        assert decoded.to_records() == records
        if len(store):
            index = np.arange(len(store))[::-1]
            assert decoded.take(index) == store.take(index)
        assert wh.export_csv("2004-01-01") == labels_to_csv(records)


@given(records=label_records(), data=st.data())
@settings(
    max_examples=30,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
    deadline=None,
)
def test_query_matches_live_index_on_both_engines(tmp_path, records, data):
    """Predicate pushdown over mmap == in-memory index, both engines."""
    root = tmp_path / f"wh-{data.draw(st.integers(0, 10**9))}"
    index = LiveLabelIndex()
    index.publish("2004-01-01", records)
    predicates = dict(
        taxonomy=data.draw(st.none() | st.sampled_from(TAXONOMY_ORDER)),
        src=data.draw(st.none() | st.integers(0, 3)),
        dst=data.draw(st.none() | st.integers(0, 3)),
        t0=data.draw(st.none() | st.floats(0.0, 12.0, allow_nan=False)),
        t1=data.draw(st.none() | st.floats(0.0, 12.0, allow_nan=False)),
    )
    expected = index.query(date="2004-01-01", **predicates)
    with Warehouse(root) as wh:
        wh.ensure_version("vtest")
        wh.store_day("2004-01-01", LabelStore.from_records(records))
        for engine in ("numpy", "python"):
            assert (
                wh.query(date="2004-01-01", engine=engine, **predicates)
                == expected
            ), engine


def test_query_validates_taxonomy_and_respects_limit(
    warehouse, result_store
):
    warehouse.store_day("2004-06-01", result_store)
    with pytest.raises(WarehouseError, match="unknown taxonomy"):
        warehouse.query(taxonomy="bogus")
    rows = warehouse.query(limit=3)
    assert len(rows) == 3


def test_query_spans_days_in_date_order(warehouse, result_store):
    for date in ("2004-06-02", "2004-06-01"):
        warehouse.store_day(date, result_store)
    rows = warehouse.query(date_from="2004-06-01", date_to="2004-06-02")
    dates = [row["date"] for row in rows]
    assert dates == sorted(dates)
    assert set(dates) == {"2004-06-01", "2004-06-02"}
    only_first = warehouse.query(date_to="2004-06-01")
    assert {row["date"] for row in only_first} == {"2004-06-01"}


# -- crash injection ---------------------------------------------------


def test_truncated_segment_is_rejected_on_open(warehouse, result_store):
    warehouse.store_day("2004-06-01", result_store)
    warehouse.close()
    path = next((warehouse.root / "v0001").glob("*.labels.seg"))
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(WarehouseError, match="truncated or stale"):
        warehouse.open_labels("2004-06-01")


def test_silent_corruption_fails_verify(warehouse, result_store):
    warehouse.store_day("2004-06-01", result_store)
    warehouse.close()
    path = next((warehouse.root / "v0001").glob("*.labels.seg"))
    payload = bytearray(path.read_bytes())
    payload[-1] ^= 0xFF  # same size, different bytes
    path.write_bytes(bytes(payload))
    with pytest.raises(WarehouseError, match="checksum"):
        warehouse.verify()


def test_bad_magic_is_rejected(tmp_path, result_store):
    path = tmp_path / "bogus.seg"
    payload = bytearray(
        encode_label_segment(result_store, {"date": "2004-06-01"})
    )
    payload[:4] = b"XXXX"
    path.write_bytes(bytes(payload))
    with pytest.raises(WarehouseError, match="magic"):
        Segment(path)


def test_crash_mid_store_leaves_previous_manifest(
    tmp_path, result_store, monkeypatch
):
    """A crash between segment write and manifest publish must leave
    the old manifest intact — no day entry pointing at a file the
    manifest never checksummed, no torn manifest bytes."""
    wh = Warehouse(tmp_path / "wh")
    wh.ensure_version("vtest")
    wh.store_day("2004-06-01", result_store)
    manifest_before = (wh.root / "manifest.json").read_bytes()

    from repro.labeling import warehouse as warehouse_module

    def explode(path, payload):
        raise OSError("disk full")

    monkeypatch.setattr(warehouse_module, "write_atomic", explode)
    with pytest.raises(OSError):
        wh.store_day("2004-06-02", result_store)
    monkeypatch.undo()

    assert (wh.root / "manifest.json").read_bytes() == manifest_before
    reopened = Warehouse(tmp_path / "wh")
    assert reopened.dates() == ["2004-06-01"]
    assert not list(wh.root.glob("**/*.tmp*"))


def test_manifest_uses_write_atomic(tmp_path, result_store, monkeypatch):
    """The manifest must go through ``write_atomic`` (tmp + rename)."""
    from repro.labeling import warehouse as warehouse_module

    calls = []
    real = warehouse_module.write_atomic

    def spy(path, payload):
        calls.append(str(path))
        return real(path, payload)

    monkeypatch.setattr(warehouse_module, "write_atomic", spy)
    wh = Warehouse(tmp_path / "wh")
    wh.ensure_version("vtest")
    wh.store_day("2004-06-01", result_store)
    assert any(call.endswith("manifest.json") for call in calls)


def test_corrupt_manifest_raises_warehouse_error(tmp_path):
    root = tmp_path / "wh"
    root.mkdir()
    (root / "manifest.json").write_text("{ torn")
    with pytest.raises(WarehouseError):
        Warehouse(root)


def test_missing_day_raises(warehouse):
    with pytest.raises(WarehouseError, match="no stored labels"):
        warehouse.open_labels("1999-01-01")


# -- versions and stats ------------------------------------------------


def test_ensure_version_reuses_matching_fingerprint(tmp_path):
    wh = Warehouse(tmp_path / "wh")
    first = wh.ensure_version("fp-a")
    second = wh.ensure_version("fp-b")
    assert wh.ensure_version("fp-a") == first
    assert wh.current_version == first
    assert wh.versions() == [first, second]


def test_stats_come_from_manifest(warehouse, result_store):
    warehouse.store_day("2004-06-01", result_store)
    warehouse.store_day("2004-06-02", result_store)
    stats = warehouse.stats()
    assert stats["n_days"] == 2
    assert stats["totals"]["n_communities"] == 2 * len(result_store)
    assert stats["days"]["2004-06-01"]["n_communities"] == len(
        result_store
    )
    assert stats["segment_bytes"] > 0


def test_verify_counts_segments(warehouse, pipeline_result):
    warehouse.store_result("2004-06-01", pipeline_result)
    checked = warehouse.verify()
    assert checked == {"version": "v0001", "days": 1, "segments": 2}


# -- delta recompute ---------------------------------------------------


@pytest.fixture(scope="module")
def small_archive():
    from repro.mawi.archive import SyntheticArchive

    return SyntheticArchive(seed=7, trace_duration=6.0)


@pytest.fixture(scope="module")
def ingested(tmp_path_factory, small_archive):
    """Two archive days ingested under the default configuration."""
    from repro.runner.config import PipelineConfig

    root = tmp_path_factory.mktemp("wh-recompute")
    config = PipelineConfig()
    pipeline = config.build_pipeline()
    wh = Warehouse(root)
    version = wh.ensure_version(
        warehouse_fingerprint(
            small_archive.fingerprint(),
            pipeline.ensemble_fingerprint(),
            repr(config),
        ),
        ensemble_fingerprint=pipeline.ensemble_fingerprint(),
        config=repr(config),
        archive=archive_meta(small_archive),
    )
    for date in ("2004-01-01", "2004-02-01"):
        wh.store_result(
            date, pipeline.run(small_archive.day(date).trace), version
        )
    return root, config


def test_recompute_same_config_is_noop(ingested, small_archive):
    root, config = ingested
    wh = Warehouse(root)
    report = wh.recompute(config, archive=small_archive)
    assert not report.changed
    assert report.old_version == report.new_version == "v0001"


def test_combiner_change_reruns_zero_step1(
    ingested, small_archive, tmp_path, monkeypatch
):
    """A combiner-only change reuses every day's stored alarms: the
    detection ensemble must never run."""
    root, config = ingested
    wh = Warehouse(root)
    from repro.labeling.mawilab import MAWILabPipeline

    def forbidden(self, trace):
        raise AssertionError("Step 1 reran during a delta recompute")

    monkeypatch.setattr(MAWILabPipeline, "detect", forbidden)
    monkeypatch.setattr(MAWILabPipeline, "detect_table", forbidden)
    cache_dir = str(tmp_path / "alarm-cache")
    report = wh.recompute(
        dataclasses.replace(config, strategy="average"),
        archive=small_archive,
        cache_dir=cache_dir,
    )
    assert report.changed
    assert report.step1_reruns == 0
    assert report.segment_hits == 2
    assert report.cache_hits == 0
    assert wh.current_version == report.new_version
    assert wh.dates() == ["2004-01-01", "2004-02-01"]
    # The old version stays readable next to the new one.
    assert wh.dates(report.old_version) == ["2004-01-01", "2004-02-01"]
    payload = report.to_payload()
    assert json.dumps(payload)  # JSON-serializable
    assert {day["date"] for day in payload["days"]} == set(wh.dates())

    # Backfilled alarm cache: a second recompute (back to the original
    # strategy) hits the cache, not the segments.
    second = wh.recompute(
        config, archive=small_archive, cache_dir=cache_dir
    )
    assert second.changed
    assert second.step1_reruns == 0
    assert second.cache_hits == 2


def test_recompute_flips_current_only_at_the_end(
    ingested, small_archive, monkeypatch
):
    root, config = ingested
    wh = Warehouse(root)
    old_version = wh.current_version

    from repro.labeling.mawilab import MAWILabPipeline

    calls = []
    real = MAWILabPipeline.run_with_alarms

    def explode_on_second(self, trace, alarms, **kwargs):
        calls.append(1)
        if len(calls) == 2:
            raise OSError("crash mid-recompute")
        return real(self, trace, alarms, **kwargs)

    monkeypatch.setattr(MAWILabPipeline, "run_with_alarms", explode_on_second)
    with pytest.raises(OSError):
        wh.recompute(
            dataclasses.replace(config, strategy="minimum"),
            archive=small_archive,
        )
    # The crash left the old version current.
    assert Warehouse(root).current_version == old_version


def test_recompute_without_archive_metadata_raises(tmp_path):
    wh = Warehouse(tmp_path / "wh")
    wh.ensure_version("opaque-fingerprint")
    with pytest.raises(WarehouseError, match="archive"):
        wh.recompute()


# -- serve-layer integration ------------------------------------------


def test_scheduler_dual_writes_warehouse(tmp_path, small_archive):
    from repro.serve.scheduler import ArchiveScheduler

    dates = ["2004-01-01", "2004-02-01"]
    with ArchiveScheduler(
        small_archive,
        dates,
        str(tmp_path / "db"),
        warehouse=str(tmp_path / "wh"),
    ) as scheduler:
        outcomes = scheduler.run_once()
    assert [o.status for o in outcomes] == ["done", "done"]
    wh = Warehouse(tmp_path / "wh")
    assert wh.dates() == dates
    # Byte-identical dual write, via the database's own day layout.
    from repro.labeling.database import LabelDatabase, _day_relpath

    database = LabelDatabase(str(tmp_path / "db"))
    for date in dates:
        with open(tmp_path / "db" / _day_relpath(date)) as handle:
            assert wh.export_csv(date) == handle.read()
        assert [r.community_id for r in database.load_day(date)]


def test_service_answers_labels_from_warehouse(tmp_path, small_archive):
    from repro.serve.daemon import LabelingService
    from repro.serve.scheduler import ArchiveScheduler

    date = "2004-01-01"
    with LabelingService(
        db_root=str(tmp_path / "db"),
        warehouse_root=str(tmp_path / "wh"),
    ) as service:
        with ArchiveScheduler(
            small_archive,
            [date],
            str(tmp_path / "db"),
            session=service.session,
            index=service.index,
            warehouse=service.warehouse,
        ) as scheduler:
            scheduler.run_once()
        assert service.health()["warehouse_days"] == 1
        rows = service.query_labels(date=date)
        assert rows and all(row["date"] == date for row in rows)
        rows80 = service.query_labels(date=date, dport=80)
        assert all(row in rows for row in rows80)
        # sport/dport predicates exist only on the warehouse path.
        with pytest.raises(LabelingError):
            service.query_labels(date="1999-01-01", dport=80)
        csv_text = service.labels_csv(date)
        assert csv_text == Warehouse(tmp_path / "wh").export_csv(date)
