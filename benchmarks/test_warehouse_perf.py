"""Warehouse acceptance: mmap cross-day queries vs CSV re-parsing.

The tentpole claim: over a month-scale archive, a cross-day predicate
query answered from the warehouse's memory-mapped columns is at least
an order of magnitude faster than the CSV path — re-parsing every
day's ``LabelDatabase`` file — while the warehouse's CSV export stays
byte-identical to the stored files.

The archive here is *synthetically constructed* label data (no
pipeline runs): 32 days of deterministic records with realistic
shape — mixed taxonomies, ragged multi-rule summaries, detector
blocks — so the benchmark isolates the storage paths from detection
cost and stays fast enough for CI.
"""

from __future__ import annotations

import time

import pytest

from repro.labeling.database import LabelDatabase, _day_relpath
from repro.labeling.heuristics import HeuristicLabel
from repro.labeling.mawilab import LabelRecord
from repro.labeling.store import LabelStore
from repro.labeling.taxonomy import TAXONOMY_ORDER
from repro.rules.itemsets import Rule
from repro.rules.summarize import CommunitySummary

N_DAYS = 32
ROWS_PER_DAY = 200

#: The CSV path must re-parse every day per query; 10x is the floor
#: the tentpole promises (observed margins are far larger).
MIN_QUERY_SPEEDUP = 10.0


def _synthetic_day(day_number: int) -> list[LabelRecord]:
    """Deterministic records with ragged rules and detector blocks."""
    records = []
    for i in range(ROWS_PER_DAY):
        seed = day_number * ROWS_PER_DAY + i
        n_rules = 1 + (seed % 3)
        rules = [
            Rule(
                src=(0x0A000000 + seed + j) if (seed + j) % 2 else None,
                sport=None if j % 2 else 1024 + (seed % 5000),
                dst=0xC0A80000 + (seed % 4096),
                dport=(80, 53, 445, 8080)[(seed + j) % 4],
                support=((seed + j) % 100) / 100.0,
                count=1 + (seed % 9),
            )
            for j in range(n_rules)
        ]
        t0 = float(seed % 900)
        records.append(
            LabelRecord(
                community_id=i,
                taxonomy=TAXONOMY_ORDER[seed % 3],
                heuristic=HeuristicLabel(
                    category=("attack", "special", "unknown")[seed % 3],
                    detail=("Sasser", "Http", "Ping", "Unknown")[seed % 4],
                ),
                summary=CommunitySummary(
                    rules=rules,
                    rule_degree=2.0 + (seed % 3) / 2.0,
                    rule_support=float(seed % 100),
                    n_transactions=10 + seed % 90,
                ),
                t0=t0,
                t1=t0 + 30.0 + (seed % 60),
                n_alarms=1 + seed % 25,
                detectors=("kl", "pca", "hough", "gamma")[: 1 + seed % 4],
                relative_distance=(seed % 7) / 4.0 if seed % 2 else None,
                mu=(seed % 10) / 10.0,
            )
        )
    return records


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """32 days dual-written to the CSV database and the warehouse."""
    from repro.labeling.warehouse import Warehouse

    root = tmp_path_factory.mktemp("warehouse-perf")
    database = LabelDatabase(str(root / "csv"))
    warehouse = Warehouse(root / "wh")
    warehouse.ensure_version("perf")
    dates = [
        f"2005-{1 + d // 28:02d}-{1 + d % 28:02d}" for d in range(N_DAYS)
    ]
    for day_number, date in enumerate(dates):
        records = _synthetic_day(day_number)
        database.store_day_labels(date, records)
        warehouse.store_day(date, LabelStore.from_records(records))
    return database, warehouse, dates


def _query_csv(database: LabelDatabase, dates) -> list:
    """The baseline: re-parse every day's CSV, filter in Python."""
    return [
        record
        for date in dates
        for record in database.load_day(date)
        if record.taxonomy == "anomalous" and record.dport == 445
    ]


def _best_of(fn, reps: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_cross_day_query_beats_csv_by_10x(populated):
    database, warehouse, dates = populated

    def query_warehouse():
        return warehouse.query(taxonomy="anomalous", dport=445)

    # Warm both paths once (mmap pages, filesystem cache), then take
    # best-of so scheduler noise cannot fail the gate spuriously.
    csv_seconds, csv_rows = _best_of(
        lambda: _query_csv(database, dates), reps=3
    )
    warehouse_seconds, rows = _best_of(query_warehouse, reps=3)

    assert rows, "query returned nothing — predicate bug, not perf"
    # The CSV renders one row per (community, rule) while the warehouse
    # returns one row per community; compare the matched community sets.
    warehouse_hits = {(row["date"], row["community"]) for row in rows}
    csv_hits = set()
    for date in dates:
        for record in _query_csv(database, [date]):
            csv_hits.add((date, record.community_id))
    assert warehouse_hits == csv_hits
    assert len(csv_rows) >= len(csv_hits)  # CSV is per (community, rule)
    speedup = csv_seconds / warehouse_seconds
    assert speedup >= MIN_QUERY_SPEEDUP, (
        f"warehouse query only {speedup:.1f}x faster than CSV "
        f"({warehouse_seconds * 1e3:.2f}ms vs {csv_seconds * 1e3:.2f}ms) "
        f"over {N_DAYS} days"
    )


def test_export_matches_stored_csv_bytes(populated):
    database, warehouse, dates = populated
    for date in dates[:4] + dates[-1:]:
        with open(f"{database.root}/{_day_relpath(date)}") as handle:
            assert warehouse.export_csv(date) == handle.read()


def test_cold_open_is_fast(populated):
    """A fresh handle maps a month of segments well under a second —
    opening is header parsing, not data reading."""
    from repro.labeling.warehouse import Warehouse

    _, warehouse, dates = populated
    started = time.perf_counter()
    cold = Warehouse(warehouse.root)
    for date in dates:
        cold.open_labels(date)
    elapsed = time.perf_counter() - started
    cold.close()
    assert elapsed < 1.0, f"cold open took {elapsed:.2f}s for {N_DAYS} days"
