"""The built-in kernel table: one implementation per (engine, op).

Registered lazily on first :meth:`~repro.engine.core.Engine.kernel`
call.  Production implementations live next to the code they serve
(:mod:`repro.core.graph`, :mod:`repro.core.extractor`,
:mod:`repro.detectors.sketch`, ...) and are imported here; the pure
reference twins that exist *only* as correctness oracles (per-packet
flow coding, Counter feature binning, scalar sketch hashing) are
defined inline.  ``tests/test_engine_parity.py`` drives every pair
through one table-driven hypothesis suite.

Kernel signatures
-----------------
``filter_mask(table, feature_filter, t0=None, t1=None)``
    Boolean per-row mask of packets the filter designates; ``t0``/``t1``
    override wildcard time bounds (the alarm window).
``flow_codes(table, granularity)``
    ``(codes, keys)``: dense int64 per-packet flow ids numbered by
    first appearance, plus the code -> FlowKey table.
``binned_histogram(table, feature, bin_idx, n_bins)``
    :class:`~repro.detectors.features.BinnedHistogram` of one feature
    column per time bin.
``sketch_buckets(hasher, keys)``
    int64 bucket per key under a
    :class:`~repro.detectors.sketch.SketchHasher`.
``dominant_keys(keys, mask, hasher, sketch, top, min_fraction)``
    Most frequent keys hashing to ``sketch`` among masked packets.
``similarity_graph(traffic_sets, measure_fn, batch_fn, edge_threshold)``
    The alarm similarity graph (Step 2).
``community_label(extractor, community)``
    Table-1 heuristic label of one community's traffic.
``column_values(trace, field, dtype=None)``
    One packet field as an array (the detectors' feature columns).
``traffic_extractor(trace, granularity, engine)``
    Factory for the per-engine traffic-extraction strategy object.
``alarm_codes(names)``
    ``(codes, pool)``: dense int32 codes for a sequence of detector /
    configuration names, numbered by first appearance — the coding
    :meth:`repro.core.alarm_table.AlarmTable.from_alarms` stores.
``label_assign(accepted, relative_distance, mu, suspicious_distance)``
    int8 taxonomy codes (0 = anomalous, 1 = suspicious, 2 = notice)
    for index-aligned decision columns; ``NaN`` relative distance
    means "no metric, approximate from mu" exactly like
    :func:`repro.labeling.taxonomy.assign_taxonomy`.
``feature_plane(trace, spec, planes)``
    One derived feature plane of a trace (column, time-bin index,
    binned histogram, sketch buckets, per-family statistics...), keyed
    by its parameter ``spec`` tuple and memoized in the
    :class:`~repro.detectors.planes.PlaneCache` passed as ``planes``
    (sub-planes are fetched through it).  The vectorized kernel reads
    the columnar table; the reference kernel scans packet objects for
    the engine-split plane kinds.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.engine.core import NUMPY_ENGINE, PYTHON_ENGINE

# -- filter-mask -------------------------------------------------------


@NUMPY_ENGINE.register("filter_mask")
def _filter_mask_numpy(table, feature_filter, t0=None, t1=None):
    return feature_filter.mask(table, t0=t0, t1=t1)


@PYTHON_ENGINE.register("filter_mask")
def _filter_mask_python(table, feature_filter, t0=None, t1=None):
    """Per-packet ``matches`` loop, with the same window override."""
    import dataclasses

    if t0 is not None and feature_filter.t0 is None:
        feature_filter = dataclasses.replace(feature_filter, t0=t0)
    if t1 is not None and feature_filter.t1 is None:
        feature_filter = dataclasses.replace(feature_filter, t1=t1)
    return np.fromiter(
        (
            feature_filter.matches(table.packet(i))
            for i in range(len(table))
        ),
        dtype=bool,
        count=len(table),
    )


# -- flow coding -------------------------------------------------------


@NUMPY_ENGINE.register("flow_codes")
def _flow_codes_numpy(table, granularity):
    from repro.net.table import flow_codes

    return flow_codes(table, granularity)


@PYTHON_ENGINE.register("flow_codes")
def _flow_codes_python(table, granularity):
    """Dict-based first-appearance numbering over packet objects."""
    from repro.net.flow import Granularity, key_for

    if granularity is Granularity.PACKET:
        raise ValueError("packets have no flow key; use packet indices instead")
    code_of: dict = {}
    keys = []
    codes = np.empty(len(table), dtype=np.int64)
    for i in range(len(table)):
        key = key_for(table.packet(i), granularity)
        code = code_of.get(key)
        if code is None:
            code = code_of[key] = len(keys)
            keys.append(key)
        codes[i] = code
    return codes, keys


# -- feature binning ---------------------------------------------------


@NUMPY_ENGINE.register("binned_histogram")
def _binned_histogram_numpy(table, feature, bin_idx, n_bins):
    from repro.detectors.features import binned_value_histogram

    return binned_value_histogram(table, feature, bin_idx, n_bins)


@PYTHON_ENGINE.register("binned_histogram")
def _binned_histogram_python(table, feature, bin_idx, n_bins):
    """Counter-per-bin reference assembling the same dense struct."""
    from repro.detectors.features import BinnedHistogram

    column = [getattr(table.packet(i), feature) for i in range(len(table))]
    values = sorted(set(column))
    code_of = {value: c for c, value in enumerate(values)}
    codes = np.array([code_of[v] for v in column], dtype=np.int64)
    counts = np.zeros((n_bins, len(values)), dtype=np.int64)
    for b in range(n_bins):
        histogram = Counter(
            value for value, in_bin in zip(column, bin_idx == b) if in_bin
        )
        for value, count in histogram.items():
            counts[b, code_of[value]] = count
    return BinnedHistogram(
        feature=feature,
        values=np.array(values, dtype=table.column(feature).dtype),
        codes=codes,
        counts=counts,
    )


# -- sketch hashing ----------------------------------------------------


@NUMPY_ENGINE.register("sketch_buckets")
def _sketch_buckets_numpy(hasher, keys):
    return hasher.buckets(keys)


@PYTHON_ENGINE.register("sketch_buckets")
def _sketch_buckets_python(hasher, keys):
    """Scalar ``bucket`` loop (the uint64-limb arithmetic oracle)."""
    return np.array(
        [hasher.bucket(int(key)) for key in np.asarray(keys)], dtype=np.int64
    )


def _register_sketch_kernels() -> None:
    from repro.detectors.sketch import (
        _dominant_keys_numpy,
        _dominant_keys_python,
    )

    NUMPY_ENGINE.register("dominant_keys", _dominant_keys_numpy)
    PYTHON_ENGINE.register("dominant_keys", _dominant_keys_python)


# -- feature planes ----------------------------------------------------


def _register_plane_kernels() -> None:
    from repro.detectors.planes import (
        _feature_plane_numpy,
        _feature_plane_python,
    )

    NUMPY_ENGINE.register("feature_plane", _feature_plane_numpy)
    PYTHON_ENGINE.register("feature_plane", _feature_plane_python)


# -- similarity graph --------------------------------------------------


def _register_graph_kernels() -> None:
    from repro.core.graph import (
        _build_similarity_graph_numpy,
        _build_similarity_graph_python,
    )

    NUMPY_ENGINE.register("similarity_graph", _build_similarity_graph_numpy)
    PYTHON_ENGINE.register("similarity_graph", _build_similarity_graph_python)


# -- community heuristics ----------------------------------------------


@NUMPY_ENGINE.register("community_label")
def _community_label_numpy(extractor, community):
    from repro.labeling.heuristics import label_packets_table

    indices = extractor.packet_index_array(community.traffic)
    return label_packets_table(extractor.trace.table, indices)


@PYTHON_ENGINE.register("community_label")
def _community_label_python(extractor, community):
    from repro.labeling.heuristics import label_packets

    indices = extractor.packets_of(community.traffic)
    return label_packets([extractor.trace[i] for i in indices])


# -- feature columns ---------------------------------------------------


@NUMPY_ENGINE.register("column_values")
def _column_values_numpy(trace, field, dtype=None):
    column = trace.table.column(field)
    return column.astype(dtype) if dtype is not None else column


@PYTHON_ENGINE.register("column_values")
def _column_values_python(trace, field, dtype=None):
    return np.array(
        [getattr(packet, field) for packet in trace],
        dtype=dtype if dtype is not None else np.float64,
    )


# -- alarm coding ------------------------------------------------------


@NUMPY_ENGINE.register("alarm_codes")
def _alarm_codes_numpy(names):
    """First-appearance dense coding via ``np.unique`` + renumbering."""
    names = np.asarray(list(names), dtype=object)
    if names.size == 0:
        return np.empty(0, dtype=np.int32), ()
    _uniq, first_index, inverse = np.unique(
        names, return_index=True, return_inverse=True
    )
    appearance = np.argsort(first_index, kind="stable")
    rank = np.empty(len(first_index), dtype=np.int32)
    rank[appearance] = np.arange(len(first_index), dtype=np.int32)
    codes = rank[inverse].astype(np.int32)
    pool = tuple(names[i] for i in first_index[appearance])
    return codes, pool


@PYTHON_ENGINE.register("alarm_codes")
def _alarm_codes_python(names):
    """Dict-based first-appearance numbering (the readable reference)."""
    code_of: dict = {}
    pool: list = []
    names = list(names)
    codes = np.empty(len(names), dtype=np.int32)
    for i, name in enumerate(names):
        code = code_of.get(name)
        if code is None:
            code = code_of[name] = len(pool)
            pool.append(name)
        codes[i] = code
    return codes, tuple(pool)


# -- taxonomy assignment -----------------------------------------------


@NUMPY_ENGINE.register("label_assign")
def _label_assign_numpy(accepted, relative_distance, mu, suspicious_distance=0.5):
    """Vectorized Section-5 taxonomy over decision columns."""
    from repro.errors import LabelingError

    accepted = np.asarray(accepted, dtype=bool)
    distance = np.asarray(relative_distance, dtype=np.float64).copy()
    mu = np.asarray(mu, dtype=np.float64)
    codes = np.zeros(len(accepted), dtype=np.int8)  # anomalous
    rejected = ~accepted
    approximate = rejected & np.isnan(distance)
    if bool((mu[approximate] > 0.5).any()):
        raise LabelingError("rejected decision with mu above threshold")
    # Approximate the distance from mu exactly like the scalar
    # reference: mu <= 0 -> inf, else 0.5 / mu - 1.
    positive = approximate & (mu > 0)
    distance[positive] = 0.5 / mu[positive] - 1.0
    distance[approximate & ~positive] = np.inf
    codes[rejected & (distance <= suspicious_distance)] = 1  # suspicious
    codes[rejected & (distance > suspicious_distance)] = 2  # notice
    return codes


@PYTHON_ENGINE.register("label_assign")
def _label_assign_python(accepted, relative_distance, mu, suspicious_distance=0.5):
    """Per-decision :func:`assign_taxonomy` loop (the oracle)."""
    from repro.core.strategies import Decision
    from repro.labeling.taxonomy import TAXONOMY_ORDER, assign_taxonomy

    code_of = {name: code for code, name in enumerate(TAXONOMY_ORDER)}
    accepted = np.asarray(accepted, dtype=bool)
    relative_distance = np.asarray(relative_distance, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    codes = np.empty(len(accepted), dtype=np.int8)
    for i in range(len(accepted)):
        distance = float(relative_distance[i])
        decision = Decision(
            community_id=i,
            accepted=bool(accepted[i]),
            mu=float(mu[i]),
            relative_distance=None if np.isnan(distance) else distance,
        )
        codes[i] = code_of[
            assign_taxonomy(decision, suspicious_distance=suspicious_distance)
        ]
    return codes


# -- warehouse predicate pushdown --------------------------------------
#
# Both kernels take the same plain-array view of one stored day: the
# per-record ``taxonomy_code`` / ``t0`` / ``t1`` columns plus the flat
# per-rule columns (``rule_record`` maps each rule row back to its
# record; ``-1`` in a rule field is the wildcard ``None``).  They
# return the matching record indices in row order — segments are
# scanned in place, no record objects exist until the caller renders
# the selected rows.


@NUMPY_ENGINE.register("warehouse_select")
def _warehouse_select_numpy(
    columns,
    taxonomy_code=None,
    src=None,
    dst=None,
    sport=None,
    dport=None,
    t0=None,
    t1=None,
):
    """Vectorized predicate pushdown over mapped label columns."""
    n = len(columns["taxonomy_code"])
    mask = np.ones(n, dtype=bool)
    if taxonomy_code is not None:
        mask &= np.asarray(columns["taxonomy_code"]) == int(taxonomy_code)
    if t0 is not None:
        mask &= np.asarray(columns["t1"]) >= float(t0)
    if t1 is not None:
        mask &= np.asarray(columns["t0"]) <= float(t1)
    rule_record = np.asarray(columns["rule_record"])
    for value, key in (
        (src, "rule_src"),
        (dst, "rule_dst"),
        (sport, "rule_sport"),
        (dport, "rule_dport"),
    ):
        if value is None:
            continue
        hits = rule_record[np.asarray(columns[key]) == int(value)]
        rule_mask = np.zeros(n, dtype=bool)
        rule_mask[hits] = True
        mask &= rule_mask
    return np.nonzero(mask)[0].astype(np.int64)


@PYTHON_ENGINE.register("warehouse_select")
def _warehouse_select_python(
    columns,
    taxonomy_code=None,
    src=None,
    dst=None,
    sport=None,
    dport=None,
    t0=None,
    t1=None,
):
    """Per-row reference scan (the oracle for the mmap fast path)."""
    n = len(columns["taxonomy_code"])
    rule_record = columns["rule_record"]
    matched = None
    for value, key in (
        (src, "rule_src"),
        (dst, "rule_dst"),
        (sport, "rule_sport"),
        (dport, "rule_dport"),
    ):
        if value is None:
            continue
        column = columns[key]
        rows = {
            int(rule_record[j])
            for j in range(len(column))
            if int(column[j]) == int(value)
        }
        matched = rows if matched is None else matched & rows
    out = []
    for i in range(n):
        if (
            taxonomy_code is not None
            and int(columns["taxonomy_code"][i]) != int(taxonomy_code)
        ):
            continue
        if t0 is not None and float(columns["t1"][i]) < float(t0):
            continue
        if t1 is not None and float(columns["t0"][i]) > float(t1):
            continue
        if matched is not None and i not in matched:
            continue
        out.append(i)
    return np.asarray(out, dtype=np.int64)


# -- traffic extraction ------------------------------------------------


def _register_extractor_kernels() -> None:
    from repro.core.extractor import (
        ColumnarTrafficExtraction,
        ReferenceTrafficExtraction,
    )

    NUMPY_ENGINE.register("traffic_extractor", ColumnarTrafficExtraction)
    PYTHON_ENGINE.register("traffic_extractor", ReferenceTrafficExtraction)


_register_sketch_kernels()
_register_graph_kernels()
_register_extractor_kernels()
_register_plane_kernels()
