"""The resumable archive-ingest scheduler: journal, retries, cache.

The serving contract: a restarted scheduler resumes a half-ingested
archive without re-labeling completed days, a forced re-run hits the
Step 1 alarm cache instead of re-detecting, failures retry with
backoff and never stall other days, and a version change regenerates
everything.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ServeError
from repro.labeling.database import LabelDatabase, LiveLabelIndex
from repro.mawi.archive import SyntheticArchive
from repro.serve import ArchiveScheduler, IngestJournal
from repro.session import LabelingSession

DATES = ["2004-06-01", "2004-06-02", "2004-06-03"]


@pytest.fixture(scope="module")
def small_archive() -> SyntheticArchive:
    return SyntheticArchive(seed=11, trace_duration=8.0)


@pytest.fixture(scope="module")
def shared_session():
    with LabelingSession() as session:
        yield session


def make_scheduler(small_archive, shared_session, tmp_path, **kwargs):
    return ArchiveScheduler(
        small_archive,
        DATES,
        str(tmp_path / "db"),
        session=shared_session,
        cache_dir=str(tmp_path / "cache"),
        **kwargs,
    )


class TestResume:
    def test_restart_skips_completed_days(
        self, small_archive, shared_session, tmp_path
    ):
        first = make_scheduler(small_archive, shared_session, tmp_path)
        outcomes = first.run_once(limit=2)
        assert [o.status for o in outcomes] == ["done", "done"]
        assert first.pending() == ["2004-06-03"]

        # A fresh scheduler (same journal on disk) resumes mid-archive:
        # completed days are skipped without touching the pipeline.
        second = make_scheduler(small_archive, shared_session, tmp_path)
        ran = {"days": []}
        original = second._label_day

        def counting(date):
            ran["days"].append(date)
            return original(date)

        second._label_day = counting
        outcomes = second.run_once()
        assert [o.status for o in outcomes] == ["skipped", "skipped", "done"]
        assert ran["days"] == ["2004-06-03"]
        assert second.pending() == []
        assert LabelDatabase(str(tmp_path / "db")).dates() == DATES

    def test_forced_rerun_hits_alarm_cache(
        self, small_archive, shared_session, tmp_path
    ):
        """Journal wiped, cache kept: every day re-labels through the
        Step 1 cache (cache_hit asserted), so detection never re-runs."""
        first = make_scheduler(small_archive, shared_session, tmp_path)
        outcomes = first.run_once()
        assert all(not o.cache_hit for o in outcomes)

        os.unlink(first.journal.path)
        second = make_scheduler(small_archive, shared_session, tmp_path)
        outcomes = second.run_once()
        assert [o.status for o in outcomes] == ["done"] * 3
        assert all(o.cache_hit for o in outcomes)

    def test_version_change_invalidates_journal(
        self, small_archive, shared_session, tmp_path
    ):
        first = make_scheduler(
            small_archive, shared_session, tmp_path, version="v1"
        )
        first.run_once()
        assert first.pending() == []
        second = make_scheduler(
            small_archive, shared_session, tmp_path, version="v2"
        )
        assert second.pending() == DATES

    def test_default_version_tracks_inputs(
        self, small_archive, shared_session, tmp_path
    ):
        a = make_scheduler(small_archive, shared_session, tmp_path)
        b = make_scheduler(small_archive, shared_session, tmp_path)
        assert a.version == b.version
        other_archive = SyntheticArchive(seed=99, trace_duration=8.0)
        c = ArchiveScheduler(
            other_archive,
            DATES,
            str(tmp_path / "db"),
            session=shared_session,
        )
        assert c.version != a.version


class TestRetries:
    def test_transient_failure_retries_with_backoff(
        self, small_archive, shared_session, tmp_path
    ):
        sleeps: list[float] = []
        scheduler = make_scheduler(
            small_archive,
            shared_session,
            tmp_path,
            max_retries=2,
            backoff=0.01,
            sleep=sleeps.append,
        )
        attempts = {"n": 0}
        original = scheduler._label_day

        def flaky(date):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return original(date)

        scheduler._label_day = flaky
        outcomes = scheduler.run_once(limit=1)
        assert outcomes[0].status == "done"
        assert outcomes[0].attempts == 3
        assert sleeps == [0.01, 0.02]  # exponential backoff, injectable

    def test_permanent_failure_journals_and_spares_other_days(
        self, small_archive, shared_session, tmp_path
    ):
        scheduler = make_scheduler(
            small_archive,
            shared_session,
            tmp_path,
            max_retries=1,
            backoff=0.0,
            sleep=lambda _: None,
        )
        original = scheduler._label_day

        def poisoned(date):
            if date == "2004-06-02":
                raise RuntimeError("bad day")
            return original(date)

        scheduler._label_day = poisoned
        outcomes = scheduler.run_once()
        by_date = {o.date: o for o in outcomes}
        assert by_date["2004-06-02"].status == "failed"
        assert by_date["2004-06-02"].attempts == 2
        assert "bad day" in by_date["2004-06-02"].error
        assert by_date["2004-06-01"].status == "done"
        assert by_date["2004-06-03"].status == "done"
        # The failed day stays pending: the next pass retries it.
        assert scheduler.pending() == ["2004-06-02"]
        assert scheduler.journal.dates("failed") == ["2004-06-02"]
        scheduler._label_day = original
        outcomes = scheduler.run_once()
        assert {o.date: o.status for o in outcomes}["2004-06-02"] == "done"


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = IngestJournal(path)
        journal.record("2004-06-01", "done", "v1", attempts=1)
        journal.record("2004-06-02", "failed", "v1", attempts=3, error="x")
        reloaded = IngestJournal(path)
        assert reloaded.is_done("2004-06-01", "v1")
        assert not reloaded.is_done("2004-06-01", "v2")
        assert not reloaded.is_done("2004-06-02", "v1")
        assert reloaded.entry("2004-06-02")["error"] == "x"
        assert reloaded.dates() == ["2004-06-01", "2004-06-02"]

    def test_corrupt_journal_raises(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text("{not json")
        with pytest.raises(ServeError, match="corrupt"):
            IngestJournal(path)

    def test_journal_written_atomically(self, tmp_path):
        journal = IngestJournal(tmp_path / "journal.json")
        journal.record("2004-06-01", "done", "v1", attempts=1)
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        payload = json.loads((tmp_path / "journal.json").read_text())
        assert payload["days"]["2004-06-01"]["status"] == "done"


class TestLivePublish:
    def test_scheduled_days_reach_live_index(
        self, small_archive, shared_session, tmp_path
    ):
        index = LiveLabelIndex()
        scheduler = make_scheduler(
            small_archive, shared_session, tmp_path, index=index
        )
        scheduler.run_once(limit=2)
        assert index.dates() == ["2004-06-01", "2004-06-02"]
        assert index.query(date="2004-06-01")

    def test_run_forever_stops_on_event(
        self, small_archive, shared_session, tmp_path
    ):
        import threading

        scheduler = make_scheduler(small_archive, shared_session, tmp_path)
        stop = threading.Event()
        stop.set()  # one pass, then exit immediately
        stats = scheduler.run_forever(cadence=0.0, stop=stop)
        assert stats.passes == 0  # already stopped: no passes ran

    def test_owned_session_closed(self, small_archive, tmp_path):
        scheduler = ArchiveScheduler(
            small_archive, DATES[:1], str(tmp_path / "db")
        )
        assert scheduler._owns_session
        scheduler.run_once()
        scheduler.close()
