"""The paper's contribution: similarity estimator and combiner.

Step 2 of the method (Section 2.1) — the **similarity estimator** —
lives in :mod:`repro.core.extractor`, :mod:`repro.core.similarity`,
:mod:`repro.core.graph` and :mod:`repro.core.louvain`, orchestrated by
:class:`~repro.core.estimator.SimilarityEstimator`.

Step 3 (Section 2.2) — the **combiner** — lives in
:mod:`repro.core.confidence`, :mod:`repro.core.strategies`,
:mod:`repro.core.majority`, :mod:`repro.core.correspondence` and
:mod:`repro.core.scann`.
"""

from repro.core.alarm_table import AlarmTable
from repro.core.extractor import TrafficExtractor
from repro.core.similarity import (
    SIMILARITY_MEASURES,
    constant_measure,
    jaccard,
    simpson,
)
from repro.core.graph import SimilarityGraph, build_similarity_graph
from repro.core.dynamic import DynamicSimilarityGraph
from repro.core.louvain import louvain, modularity
from repro.core.community import Community, CommunitySet
from repro.core.estimator import SimilarityEstimator
from repro.core.confidence import confidence_scores, configs_by_detector
from repro.core.strategies import (
    AverageStrategy,
    CombinationStrategy,
    Decision,
    MaximumStrategy,
    MinimumStrategy,
)
from repro.core.majority import MajorityVoteStrategy, condorcet_probability
from repro.core.correspondence import CorrespondenceAnalysis
from repro.core.scann import SCANNStrategy
from repro.core.annotations import (
    ANNOTATION_DETECTOR,
    Annotation,
    community_tags,
    merge_annotations,
)

__all__ = [
    "AlarmTable",
    "TrafficExtractor",
    "SIMILARITY_MEASURES",
    "constant_measure",
    "jaccard",
    "simpson",
    "SimilarityGraph",
    "DynamicSimilarityGraph",
    "build_similarity_graph",
    "louvain",
    "modularity",
    "Community",
    "CommunitySet",
    "SimilarityEstimator",
    "confidence_scores",
    "configs_by_detector",
    "AverageStrategy",
    "CombinationStrategy",
    "Decision",
    "MaximumStrategy",
    "MinimumStrategy",
    "MajorityVoteStrategy",
    "condorcet_probability",
    "CorrespondenceAnalysis",
    "SCANNStrategy",
    "ANNOTATION_DETECTOR",
    "Annotation",
    "community_tags",
    "merge_annotations",
]
