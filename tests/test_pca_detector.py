"""Unit tests for the PCA-subspace detector."""

import numpy as np
import pytest

from repro.detectors.pca import PCADetector
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.trace import Trace


@pytest.fixture(scope="module")
def flood_trace():
    """Background plus one intense SYN flood with a known window."""
    spec = WorkloadSpec(
        seed=21,
        duration=30.0,
        anomalies=[AnomalySpec("syn_flood", intensity=2.0, start=10.0, duration=6.0)],
    )
    return generate_trace(spec)


class TestDetection:
    def test_empty_trace(self):
        assert PCADetector().analyze(Trace([])) == []

    def test_alarms_report_source_ips(self, flood_trace):
        trace, _events = flood_trace
        alarms = PCADetector(tuning="sensitive", threshold=1.5).analyze(trace)
        assert alarms, "sensitive PCA should fire on a 2x flood"
        for alarm in alarms:
            assert len(alarm.filters) == 1
            assert alarm.filters[0].src is not None
            assert alarm.filters[0].dst is None
            assert not alarm.flow_keys

    def test_alarm_windows_inside_trace(self, flood_trace):
        trace, _ = flood_trace
        for alarm in PCADetector(threshold=1.5).analyze(trace):
            assert trace.start_time <= alarm.t0 <= alarm.t1 <= trace.end_time + 1e-6

    def test_threshold_monotone(self, flood_trace):
        trace, _ = flood_trace
        sensitive = len(PCADetector(threshold=1.5).analyze(trace))
        conservative = len(PCADetector(threshold=6.0).analyze(trace))
        assert conservative <= sensitive

    def test_config_stamp(self, flood_trace):
        trace, _ = flood_trace
        alarms = PCADetector(tuning="sensitive", threshold=1.5).analyze(trace)
        assert all(a.config == "pca/sensitive" for a in alarms)


class TestResidual:
    def test_residual_orthogonal_to_normal_subspace(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(30, 8))
        residual = PCADetector._residual_matrix(matrix, n_components=3)
        centered = matrix - matrix.mean(axis=0, keepdims=True)
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        for axis in vt[:3]:
            assert np.abs(residual @ axis).max() < 1e-8

    def test_full_rank_components_zero_residual(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(10, 4))
        residual = PCADetector._residual_matrix(matrix, n_components=10)
        assert np.abs(residual).max() < 1e-8


class TestThresholdBins:
    def test_flags_outlier(self):
        spe = np.array([1.0] * 20 + [100.0])
        flagged = PCADetector._threshold_bins(spe, threshold=3.0)
        assert flagged == [20]

    def test_empty(self):
        assert PCADetector._threshold_bins(np.array([]), 3.0) == []

    def test_constant_series_not_flagged(self):
        spe = np.ones(10)
        assert PCADetector._threshold_bins(spe, 3.0) == []
