"""Unit tests for repro.net.flow."""

import pytest

from repro.net.flow import (
    Flow,
    FlowKey,
    Granularity,
    aggregate_flows,
    biflow_key,
    key_for,
    uniflow_key,
)
from repro.net.packet import ACK, FIN, PROTO_ICMP, PROTO_UDP, RST, SYN
from tests.conftest import make_packet


class TestKeys:
    def test_uniflow_key_is_literal(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        assert uniflow_key(p) == FlowKey(1, 10, 2, 20, p.proto)

    def test_uniflow_directions_differ(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        assert uniflow_key(p) != uniflow_key(p.reversed())

    def test_biflow_directions_match(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        assert biflow_key(p) == biflow_key(p.reversed())

    def test_biflow_canonical_order(self):
        p = make_packet(src=9, dst=2, sport=10, dport=20)
        key = biflow_key(p)
        assert (key.src, key.sport) <= (key.dst, key.dport)

    def test_key_for_rejects_packet_granularity(self):
        with pytest.raises(ValueError):
            key_for(make_packet(), Granularity.PACKET)


class TestFlowStatistics:
    def test_add_accumulates(self):
        p1 = make_packet(time=1.0, tcp_flags=SYN, size=48)
        p2 = make_packet(time=2.0, tcp_flags=ACK, size=100)
        p3 = make_packet(time=4.0, tcp_flags=FIN | ACK, size=52)
        flow = Flow(key=uniflow_key(p1))
        for i, p in enumerate((p1, p2, p3)):
            flow.add(i, p)
        assert flow.packets == 3
        assert flow.bytes == 200
        assert flow.syn_count == 1
        assert flow.fin_count == 1
        assert flow.rst_count == 0
        assert flow.duration == pytest.approx(3.0)
        assert flow.packet_indices == [0, 1, 2]

    def test_icmp_counted(self):
        p = make_packet(proto=PROTO_ICMP, sport=0, dport=0)
        flow = Flow(key=biflow_key(p))
        flow.add(0, p)
        assert flow.icmp_count == 1

    def test_ratios(self):
        flow = Flow(key=FlowKey(1, 1, 2, 2, 6))
        flow.add(0, make_packet(tcp_flags=SYN))
        flow.add(1, make_packet(tcp_flags=RST))
        flow.add(2, make_packet(tcp_flags=ACK))
        flow.add(3, make_packet(tcp_flags=ACK))
        assert flow.syn_ratio == pytest.approx(0.25)
        assert flow.control_flag_ratio == pytest.approx(0.5)

    def test_empty_flow_ratios_are_zero(self):
        flow = Flow(key=FlowKey(1, 1, 2, 2, 6))
        assert flow.syn_ratio == 0.0
        assert flow.control_flag_ratio == 0.0
        assert flow.duration == 0.0


class TestAggregateFlows:
    def test_rejects_packet_granularity(self):
        with pytest.raises(ValueError):
            aggregate_flows([make_packet()], Granularity.PACKET)

    def test_uniflow_splits_directions(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        flows = aggregate_flows([p, p.reversed()], Granularity.UNIFLOW)
        assert len(flows) == 2

    def test_biflow_merges_directions(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        flows = aggregate_flows([p, p.reversed()], Granularity.BIFLOW)
        assert len(flows) == 1
        only = next(iter(flows.values()))
        assert only.packets == 2

    def test_indices_partition_packets(self):
        packets = [
            make_packet(src=i % 3, sport=1000 + (i % 3)) for i in range(12)
        ]
        flows = aggregate_flows(packets, Granularity.UNIFLOW)
        all_indices = sorted(
            i for flow in flows.values() for i in flow.packet_indices
        )
        assert all_indices == list(range(12))

    def test_udp_flows(self):
        p = make_packet(proto=PROTO_UDP, dport=53)
        flows = aggregate_flows([p, p], Granularity.UNIFLOW)
        assert next(iter(flows.values())).packets == 2
