"""Community model.

A community is a set of similar alarms found by Louvain in the
similarity graph (paper Section 2.1.3).  Isolated alarms form *single
communities* — the estimator's failure mode the evaluation counts
(Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.detectors.base import Alarm


@dataclass
class Community:
    """One community of similar alarms.

    Attributes
    ----------
    id:
        Community label (contiguous ints within one estimator run).
    alarm_ids:
        Indices of member alarms into the run's alarm list.
    alarms:
        The member alarms themselves.
    traffic:
        Union of the members' extracted traffic sets (packet indices or
        flow keys, per the estimator's granularity).
    t0, t1:
        Envelope of the member alarms' time windows.
    """

    id: int
    alarm_ids: tuple[int, ...]
    alarms: tuple[Alarm, ...]
    traffic: FrozenSet = frozenset()
    t0: float = 0.0
    t1: float = 0.0

    @property
    def size(self) -> int:
        """Number of member alarms (the paper's community size)."""
        return len(self.alarm_ids)

    @property
    def is_single(self) -> bool:
        """True for single communities (one alarm, no relations found)."""
        return self.size == 1

    def detectors(self) -> set[str]:
        """Detector families with at least one alarm in the community."""
        return {alarm.detector for alarm in self.alarms}

    def configs(self) -> set[str]:
        """Configurations with at least one alarm in the community."""
        return {alarm.config for alarm in self.alarms}

    def describe(self) -> str:
        detectors = ",".join(sorted(self.detectors()))
        return (
            f"community#{self.id} size={self.size} detectors=[{detectors}] "
            f"window={self.t0:.1f}-{self.t1:.1f}s traffic={len(self.traffic)}"
        )


@dataclass
class CommunitySet:
    """Output of one similarity-estimator run on one trace."""

    communities: list[Community]
    alarms: list[Alarm]
    traffic_sets: list[FrozenSet]
    granularity: object = None  # repro.net.flow.Granularity
    graph: Optional[object] = None  # repro.core.graph.SimilarityGraph
    extractor: Optional[object] = None  # repro.core.extractor.TrafficExtractor

    @property
    def n_single(self) -> int:
        """Number of single communities (Fig. 3a metric)."""
        return sum(1 for c in self.communities if c.is_single)

    def non_single(self) -> list[Community]:
        return [c for c in self.communities if not c.is_single]

    def sizes(self) -> list[int]:
        return [c.size for c in self.communities]

    def by_id(self, community_id: int) -> Community:
        for community in self.communities:
            if community.id == community_id:
                return community
        raise KeyError(f"no community with id {community_id}")
