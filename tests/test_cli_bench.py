"""Tests for the `bench` subcommand and the CLI --engine option."""

import json

from repro.cli import build_parser, main


class TestBenchCommand:
    def test_prints_stage_json(self, capsys):
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "5",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "0",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "auto"
        assert set(payload["stages"]) == {
            "detect",
            "extract",
            "graph",
            "combine",
            "label",
        }
        assert all(v >= 0 for v in payload["stages"].values())
        assert payload["total"] >= max(payload["stages"].values())
        assert payload["n_packets"] > 0
        # Fan-out and warehouse legs explicitly skipped.
        assert "fanout" not in payload
        assert "warehouse" not in payload

    def test_records_streaming_throughput(self, capsys):
        """The bench artifact carries the streaming leg's metrics, so
        CI artifacts stay comparable across PRs."""
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "6",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "0",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        streaming = payload["streaming"]
        assert streaming["window"] == 2.0  # duration / 3 default
        assert streaming["hop"] == 1.0
        assert streaming["n_windows"] >= 2
        assert streaming["total_packets"] == payload["n_packets"]
        assert streaming["packets_per_sec"] > 0
        assert streaming["p95_window_latency"] > 0
        assert 0 < streaming["peak_ring_packets"] <= payload["n_packets"]

    def test_streaming_options(self, capsys):
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "6",
                    "--stream-window",
                    "3",
                    "--stream-hop",
                    "3",
                    "--stream-chunk",
                    "512",
                    "--fanout-workers",
                    "0",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        streaming = json.loads(capsys.readouterr().out)["streaming"]
        assert streaming["window"] == 3.0
        assert streaming["hop"] == 3.0
        assert streaming["chunk_packets"] == 512

    def test_records_fanout_transport_comparison(self, capsys):
        """The fan-out leg reports packets/sec for every sub-leg
        (single process, pickle pool, shm pool, shm detector fan-out),
        each tagged with its workers / transport / fan-out mode, plus
        the host-relative ratios the CI gate enforces."""
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "4",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "2",
                    "--fanout-traces",
                    "2",
                    "--fanout-packets",
                    "50000",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        fanout = json.loads(capsys.readouterr().out)["fanout"]
        assert fanout["workers"] == 2
        assert fanout["n_traces"] == 2
        assert fanout["total_packets"] > 0
        assert fanout["cpu_count"] >= 1
        labeling = fanout["labeling"]
        specs = {
            "single": (1, "pickle", "shard"),
            "pickle": (2, "pickle", "shard"),
            "shm": (2, "shm", "shard"),
            "shm_detector": (2, "shm", "detector"),
        }
        for name, (workers, transport, mode) in specs.items():
            leg = labeling[name]
            assert leg["workers"] == workers
            assert leg["transport"] == transport
            assert leg["fanout"] == mode
            assert leg["seconds"] > 0
            assert leg["packets_per_sec"] > 0
            # Profile only rides along under --profile.
            assert "profile" not in leg
        assert fanout["shm_vs_single"] > 0
        assert fanout["shm_vs_pickle"] > 0
        for transport in ("pickle", "shm"):
            assert fanout["transport"][transport]["seconds"] > 0
            assert fanout["transport"][transport]["packets_per_sec"] > 0
        assert fanout["transport"]["shipments"] == 2
        assert fanout["shm_speedup"] > 0

    def test_profile_adds_per_phase_breakdown(self, capsys):
        """--profile attaches per-phase wall seconds (export / attach /
        compute / merge / idle) to every labeling sub-leg."""
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "4",
                    "--seed",
                    "7",
                    "--profile",
                    "--fanout-workers",
                    "2",
                    "--fanout-traces",
                    "2",
                    "--fanout-packets",
                    "50000",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        labeling = json.loads(capsys.readouterr().out)["fanout"]["labeling"]
        for name in ("single", "pickle", "shm", "shm_detector"):
            profile = labeling[name]["profile"]
            assert {
                "export",
                "attach",
                "compute",
                "merge",
                "idle",
                "wall",
            } <= set(profile)
            assert profile["compute"] > 0
            assert profile["wall"] > 0
            assert all(v >= 0 for k, v in profile.items()
                       if k not in ("fanout", "transport"))

    def test_records_alarm_path_comparison(self, capsys):
        """The alarm-path leg reports Steps 2-4 alarms/sec for the
        object and columnar data paths over the same alarm set."""
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "5",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "0",
                    "--alarm-path-reps",
                    "2",
                    "--warehouse-days",
                    "0",
                ]
            )
            == 0
        )
        leg = json.loads(capsys.readouterr().out)["alarm_path"]
        assert leg["n_alarms"] > 0
        assert leg["reps"] == 2
        for path in ("object", "columnar"):
            assert leg[path]["seconds"] > 0
            assert leg[path]["alarms_per_sec"] > 0
        assert leg["columnar_speedup"] > 0

    def test_writes_json_file(self, tmp_path):
        out = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "5",
                    "--engine",
                    "python",
                    "--fanout-workers",
                    "0",
                    "--warehouse-days",
                    "0",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["engine"] == "python"

    def test_records_serve_leg(self, capsys):
        """The serve leg reports daemon ingest + query throughput and,
        under --profile, the queue-depth high-water marks the
        regression gate checks against their bounds."""
        assert (
            main(
                [
                    "bench",
                    "--duration",
                    "5",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "0",
                    "--alarm-path-reps",
                    "0",
                    "--serve-queries",
                    "5",
                    "--warehouse-days",
                    "0",
                    "--profile",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        serve = payload["serve"]
        assert serve["n_packets"] == payload["n_packets"]
        assert serve["windows"] >= 1
        assert serve["queries"] == 5
        assert serve["queries_per_sec"] > 0
        assert serve["ingest_packets_per_sec"] > 0
        assert serve["p95_commit_seconds"] > 0
        queue = serve["queues"]["bench"]
        assert 0 < queue["peak_packets"] <= queue["max_packets"]

    def test_records_warehouse_leg(self, capsys):
        """The warehouse leg reports the mmap-vs-CSV query speedup and
        the delta-recompute metrics the CI gate enforces, and the leg
        itself raises if exports drift from the stored CSVs or the
        heuristics-only recompute reruns Step 1."""
        assert (
            main(
                [
                    "bench",
                    "--serve-queries",
                    "0",
                    "--duration",
                    "4",
                    "--seed",
                    "7",
                    "--fanout-workers",
                    "0",
                    "--alarm-path-reps",
                    "0",
                    "--warehouse-days",
                    "2",
                ]
            )
            == 0
        )
        leg = json.loads(capsys.readouterr().out)["warehouse"]
        assert leg["days"] == 2
        assert leg["full_label_seconds"] > 0
        assert leg["cold_open_seconds"] >= 0
        assert leg["warehouse_queries_per_sec"] > 0
        assert leg["csv_queries_per_sec"] > 0
        assert leg["query_speedup"] > 0
        recompute = leg["recompute"]
        assert recompute["step1_reruns"] == 0
        assert recompute["segment_hits"] == 2
        assert recompute["days_changed"] >= 0
        assert recompute["recompute_speedup"] > 0

    def test_engine_choices_validated(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--engine", "numpy"])
        assert args.engine == "numpy"


class TestEngineOption:
    def test_label_accepts_engine(self):
        parser = build_parser()
        args = parser.parse_args(["label", "x.pcap", "--engine", "python"])
        assert args.engine == "python"

    def test_backend_alias_still_parses(self):
        """The pre-engine-layer spelling resolves to the same option
        (and warns — the deprecation tests pin the message)."""
        import pytest

        parser = build_parser()
        with pytest.warns(DeprecationWarning):
            args = parser.parse_args(
                ["label", "x.pcap", "--backend", "python"]
            )
        assert args.engine == "python"
        with pytest.warns(DeprecationWarning):
            args = parser.parse_args(["bench", "--backend", "numpy"])
        assert args.engine == "numpy"

    def test_label_archive_engine_reaches_config(self):
        from repro.cli import _pipeline_config

        parser = build_parser()
        args = parser.parse_args(
            ["label-archive", "--out-dir", "o", "--engine", "python"]
        )
        assert _pipeline_config(args).engine == "python"


class TestEnginesCommand:
    def test_lists_engines_and_kernels(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "numpy (vectorized)" in out
        assert "python (reference)" in out
        assert "auto selects this engine" in out
        # Every canonical kernel family is listed for both engines.
        from repro.engine import KERNEL_OPS

        for op in KERNEL_OPS:
            assert out.count(op) >= 2
