"""Similarity-graph construction (paper Section 2.1.2).

Nodes are alarms; an edge connects two alarms whose associated traffic
intersects, weighted by a similarity measure.  Construction uses an
inverted index (traffic element -> alarms containing it), so the cost
is proportional to the co-occurrence structure rather than to the
number of alarm pairs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import FrozenSet, Sequence

from repro.core.similarity import SIMILARITY_MEASURES, SimilarityMeasure
from repro.errors import GraphError


@dataclass
class SimilarityGraph:
    """Weighted undirected graph over alarm ids ``0..n-1``.

    ``adjacency[u]`` maps neighbour -> edge weight.  Every node appears
    as a key even when isolated, so disconnected alarms (future single
    communities) are first-class citizens.
    """

    n_nodes: int
    adjacency: dict[int, dict[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in range(self.n_nodes):
            self.adjacency.setdefault(node, {})

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            raise GraphError("self-loops are not allowed in the similarity graph")
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise GraphError(f"edge ({u}, {v}) outside node range")
        if weight <= 0:
            return
        self.adjacency[u][v] = weight
        self.adjacency[v][u] = weight

    @property
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adjacency.values()) // 2

    def degree(self, node: int) -> float:
        """Weighted degree."""
        return sum(self.adjacency[node].values())

    def neighbors(self, node: int) -> dict[int, float]:
        return self.adjacency[node]

    def isolated_nodes(self) -> list[int]:
        return [n for n in range(self.n_nodes) if not self.adjacency[n]]

    def to_networkx(self):
        """Export to a networkx Graph (for interoperability/debugging)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        for u, nbrs in self.adjacency.items():
            for v, w in nbrs.items():
                if u < v:
                    graph.add_edge(u, v, weight=w)
        return graph


def build_similarity_graph(
    traffic_sets: Sequence[FrozenSet],
    measure: SimilarityMeasure | str = "simpson",
    edge_threshold: float = 0.0,
) -> SimilarityGraph:
    """Build the similarity graph from per-alarm traffic sets.

    Parameters
    ----------
    traffic_sets:
        One traffic set per alarm (index-aligned with alarm ids).
        Empty sets yield isolated nodes.
    measure:
        Similarity measure name or callable ``(intersection, |A|, |B|)
        -> weight``.
    edge_threshold:
        Drop edges whose weight is <= this value.  The paper notes the
        similarity measure "enables to discriminate edges connecting
        dissimilar alarms"; thresholding is how that discrimination is
        applied.

    Returns
    -------
    SimilarityGraph
    """
    if isinstance(measure, str):
        try:
            measure_fn = SIMILARITY_MEASURES[measure]
        except KeyError as exc:
            raise GraphError(
                f"unknown similarity measure {measure!r}; "
                f"known: {sorted(SIMILARITY_MEASURES)}"
            ) from exc
    else:
        measure_fn = measure

    n = len(traffic_sets)
    graph = SimilarityGraph(n_nodes=n)

    # Inverted index: element -> alarm ids containing it.
    element_to_alarms: dict = {}
    for alarm_id, traffic in enumerate(traffic_sets):
        for element in traffic:
            element_to_alarms.setdefault(element, []).append(alarm_id)

    # Intersection counts via co-occurrence.
    intersections: Counter = Counter()
    for alarm_ids in element_to_alarms.values():
        if len(alarm_ids) < 2:
            continue
        for i, u in enumerate(alarm_ids):
            for v in alarm_ids[i + 1 :]:
                intersections[(u, v)] += 1

    for (u, v), count in intersections.items():
        weight = measure_fn(count, len(traffic_sets[u]), len(traffic_sets[v]))
        if weight > edge_threshold:
            graph.add_edge(u, v, weight)
    return graph
