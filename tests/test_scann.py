"""Unit tests for the SCANN combination strategy."""

import pytest

from repro.core.scann import SCANNStrategy, _indicator_matrix
from repro.errors import CombinerError
import numpy as np

from tests.test_confidence_strategies import (
    community_set_of,
    make_community,
)

CONFIGS = [f"{d}/{i}" for d in "ABCD" for i in range(3)]


def corpus():
    """A mixed corpus: unanimous accepts, unanimous ignores, noise."""
    communities = []
    cid = 0
    # Five communities reported by every configuration.
    for _ in range(5):
        communities.append(make_community(CONFIGS, community_id=cid))
        cid += 1
    # Ten single communities from detector D only (noise).
    for _ in range(10):
        communities.append(make_community(["D/0"], community_id=cid))
        cid += 1
    # Five communities reported by A, B, C fully but not D.
    abc = [f"{d}/{i}" for d in "ABC" for i in range(3)]
    for _ in range(5):
        communities.append(make_community(abc, community_id=cid))
        cid += 1
    return communities


class TestIndicatorMatrix:
    def test_pairs(self):
        votes = np.array([[1.0, 0.0]])
        indicator = _indicator_matrix(votes)
        assert indicator.tolist() == [[1.0, 0.0, 0.0, 1.0]]

    def test_shape(self):
        votes = np.zeros((3, 12))
        assert _indicator_matrix(votes).shape == (3, 24)


class TestSCANN:
    def test_unanimous_accepted_and_noise_rejected(self):
        communities = corpus()
        decisions = SCANNStrategy().classify(
            community_set_of(communities), CONFIGS
        )
        by_id = {d.community_id: d for d in decisions}
        for cid in range(5):
            assert by_id[cid].accepted, "unanimous community must be accepted"
        for cid in range(5, 15):
            assert not by_id[cid].accepted, "single-config noise must be rejected"

    def test_three_detector_community_accepted(self):
        communities = corpus()
        decisions = SCANNStrategy().classify(
            community_set_of(communities), CONFIGS
        )
        by_id = {d.community_id: d for d in decisions}
        for cid in range(15, 20):
            assert by_id[cid].accepted

    def test_relative_distance_nonnegative(self):
        decisions = SCANNStrategy().classify(
            community_set_of(corpus()), CONFIGS
        )
        for decision in decisions:
            assert decision.relative_distance is not None
            assert decision.relative_distance >= 0.0

    def test_unanimous_has_larger_distance_than_partial(self):
        communities = corpus()
        # Add a borderline community (half the configurations).
        borderline = make_community(
            [f"{d}/{i}" for d in "AB" for i in range(3)], community_id=99
        )
        communities.append(borderline)
        decisions = SCANNStrategy().classify(
            community_set_of(communities), CONFIGS
        )
        by_id = {d.community_id: d for d in decisions}
        assert (
            by_id[0].relative_distance > by_id[99].relative_distance
        ), "unanimous community should sit further from the boundary"

    def test_degenerate_corpus_falls_back(self):
        # All communities identical: CA has no discriminating axis.
        communities = [
            make_community(CONFIGS, community_id=i) for i in range(3)
        ]
        decisions = SCANNStrategy().classify(
            community_set_of(communities), CONFIGS
        )
        assert all(d.accepted for d in decisions)

    def test_degenerate_all_singles(self):
        communities = [
            make_community(["A/0"], community_id=i) for i in range(3)
        ]
        decisions = SCANNStrategy().classify(
            community_set_of(communities), CONFIGS
        )
        assert all(not d.accepted for d in decisions)

    def test_empty_communities(self):
        assert SCANNStrategy().classify(community_set_of([]), CONFIGS) == []

    def test_requires_configs(self):
        with pytest.raises(CombinerError):
            SCANNStrategy().classify(community_set_of(corpus()), [])

    def test_scores_populated(self):
        decisions = SCANNStrategy().classify(
            community_set_of(corpus()), CONFIGS
        )
        assert decisions[0].scores["A"] == pytest.approx(1.0)

    def test_mu_between_zero_and_one(self):
        decisions = SCANNStrategy().classify(
            community_set_of(corpus()), CONFIGS
        )
        assert all(0.0 <= d.mu <= 1.0 for d in decisions)
