"""Table-1 heuristics: labeling community traffic for evaluation.

The paper evaluates combination strategies without ground truth by
applying simple heuristics to each community's traffic.  They inspect
only TCP flags, ICMP and port numbers — properties independent of the
mechanisms of the four detectors — and assign one of three categories:

=========  =========== ==========================================
Label      Category    Rule
=========  =========== ==========================================
Attack     Sasser      traffic on ports 1023/tcp, 5554/tcp, 9898/tcp
Attack     RPC         traffic on port 135/tcp
Attack     SMB         traffic on port 445/tcp
Attack     Ping        high ICMP traffic
Attack     Other       > 7 packets and SYN|RST|FIN >= 50 %; or
                       http/ftp/ssh/dns traffic with SYN >= 30 %
Attack     NetBIOS     traffic on ports 137/udp or 139/tcp
Special    Http        ports 80/tcp, 8080/tcp with SYN < 30 %
Special    dns,ftp,ssh ports 20/21/22/tcp or 53/tcp&udp, SYN < 30 %
Unknown    Unknown     anything else
=========  =========== ==========================================

"Traffic on port X" is interpreted as: at least ``port_fraction``
(default 50 %) of the community's packets use X as source or
destination port with the right protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.net.packet import FIN, PROTO_ICMP, PROTO_TCP, PROTO_UDP, RST, SYN, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.table import PacketTable

CATEGORY_ATTACK = "attack"
CATEGORY_SPECIAL = "special"
CATEGORY_UNKNOWN = "unknown"

_SASSER_PORTS = {1023, 5554, 9898}
_WELL_KNOWN_SERVICE_PORTS = {80, 8080, 20, 21, 22, 53}
_SPECIAL_TCP_PORTS = {20, 21, 22, 53}
_HTTP_PORTS = {80, 8080}


@dataclass(frozen=True)
class HeuristicLabel:
    """Category + detailed label assigned by the Table-1 heuristics."""

    category: str  # attack / special / unknown
    detail: str  # Sasser, RPC, SMB, Ping, Other, NetBIOS, Http, Service, Unknown

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.category}:{self.detail}"


def _port_fraction(
    packets: Sequence[Packet], ports: Iterable[int], proto: int
) -> float:
    """Fraction of packets on any of ``ports`` with protocol ``proto``."""
    if not packets:
        return 0.0
    port_set = set(ports)
    hits = sum(
        1
        for p in packets
        if p.proto == proto and (p.sport in port_set or p.dport in port_set)
    )
    return hits / len(packets)


def _syn_fraction(packets: Sequence[Packet]) -> float:
    tcp = [p for p in packets if p.proto == PROTO_TCP]
    if not tcp:
        return 0.0
    return sum(1 for p in tcp if p.tcp_flags & SYN) / len(tcp)


def _control_fraction(packets: Sequence[Packet]) -> float:
    tcp = [p for p in packets if p.proto == PROTO_TCP]
    if not tcp:
        return 0.0
    return sum(
        1 for p in tcp if p.tcp_flags & (SYN | RST | FIN)
    ) / len(tcp)


def _icmp_fraction(packets: Sequence[Packet]) -> float:
    if not packets:
        return 0.0
    return sum(1 for p in packets if p.proto == PROTO_ICMP) / len(packets)


def label_packets(
    packets: Sequence[Packet],
    port_fraction: float = 0.5,
    icmp_threshold: float = 0.5,
    min_icmp_packets: int = 10,
) -> HeuristicLabel:
    """Apply the Table-1 heuristics to a set of packets.

    Rules are evaluated top-to-bottom in the table's order; the first
    match wins.
    """
    if not packets:
        return HeuristicLabel(CATEGORY_UNKNOWN, "Unknown")

    # Attack: Sasser.
    if _port_fraction(packets, _SASSER_PORTS, PROTO_TCP) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "Sasser")
    # Attack: RPC.
    if _port_fraction(packets, {135}, PROTO_TCP) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "RPC")
    # Attack: SMB.
    if _port_fraction(packets, {445}, PROTO_TCP) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "SMB")
    # Attack: Ping (high ICMP traffic).
    if (
        len(packets) >= min_icmp_packets
        and _icmp_fraction(packets) >= icmp_threshold
    ):
        return HeuristicLabel(CATEGORY_ATTACK, "Ping")

    syn = _syn_fraction(packets)
    service_fraction = _port_fraction(
        packets, _WELL_KNOWN_SERVICE_PORTS, PROTO_TCP
    ) + _port_fraction(packets, {53}, PROTO_UDP)

    # Attack: other attacks.
    if len(packets) > 7 and _control_fraction(packets) >= 0.5:
        return HeuristicLabel(CATEGORY_ATTACK, "Other")
    if service_fraction >= port_fraction and syn >= 0.3:
        return HeuristicLabel(CATEGORY_ATTACK, "Other")

    # Attack: NetBIOS.
    netbios = _port_fraction(packets, {137}, PROTO_UDP) + _port_fraction(
        packets, {139}, PROTO_TCP
    )
    if netbios >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "NetBIOS")

    # Special: Http.
    if _port_fraction(packets, _HTTP_PORTS, PROTO_TCP) >= port_fraction and syn < 0.3:
        return HeuristicLabel(CATEGORY_SPECIAL, "Http")
    # Special: dns, ftp, ssh.
    special = _port_fraction(packets, _SPECIAL_TCP_PORTS, PROTO_TCP) + _port_fraction(
        packets, {53}, PROTO_UDP
    )
    if special >= port_fraction and syn < 0.3:
        return HeuristicLabel(CATEGORY_SPECIAL, "Service")

    return HeuristicLabel(CATEGORY_UNKNOWN, "Unknown")


def label_packets_table(
    table: "PacketTable",
    indices: np.ndarray,
    port_fraction: float = 0.5,
    icmp_threshold: float = 0.5,
    min_icmp_packets: int = 10,
) -> HeuristicLabel:
    """Vectorized :func:`label_packets` over columnar traffic.

    Evaluates the Table-1 rules on the table rows selected by
    ``indices`` with boolean column arithmetic; the fractions are the
    same integer-count divisions as the reference, so both paths assign
    identical labels.
    """
    n = int(len(indices))
    if n == 0:
        return HeuristicLabel(CATEGORY_UNKNOWN, "Unknown")
    proto = table.proto[indices]
    sport = table.sport[indices]
    dport = table.dport[indices]
    flags = table.tcp_flags[indices]
    is_tcp = proto == PROTO_TCP
    is_udp = proto == PROTO_UDP

    def port_frac(ports: Iterable[int], proto_mask: np.ndarray) -> float:
        wanted = np.array(sorted(ports), dtype=np.uint16)
        hits = proto_mask & (np.isin(sport, wanted) | np.isin(dport, wanted))
        return int(hits.sum()) / n

    n_tcp = int(is_tcp.sum())
    syn = (
        int((is_tcp & ((flags & SYN) > 0)).sum()) / n_tcp if n_tcp else 0.0
    )
    control = (
        int((is_tcp & ((flags & (SYN | RST | FIN)) > 0)).sum()) / n_tcp
        if n_tcp
        else 0.0
    )
    icmp = int((proto == PROTO_ICMP).sum()) / n

    if port_frac(_SASSER_PORTS, is_tcp) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "Sasser")
    if port_frac({135}, is_tcp) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "RPC")
    if port_frac({445}, is_tcp) >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "SMB")
    if n >= min_icmp_packets and icmp >= icmp_threshold:
        return HeuristicLabel(CATEGORY_ATTACK, "Ping")

    service_fraction = port_frac(_WELL_KNOWN_SERVICE_PORTS, is_tcp) + port_frac(
        {53}, is_udp
    )

    if n > 7 and control >= 0.5:
        return HeuristicLabel(CATEGORY_ATTACK, "Other")
    if service_fraction >= port_fraction and syn >= 0.3:
        return HeuristicLabel(CATEGORY_ATTACK, "Other")

    netbios = port_frac({137}, is_udp) + port_frac({139}, is_tcp)
    if netbios >= port_fraction:
        return HeuristicLabel(CATEGORY_ATTACK, "NetBIOS")

    if port_frac(_HTTP_PORTS, is_tcp) >= port_fraction and syn < 0.3:
        return HeuristicLabel(CATEGORY_SPECIAL, "Http")
    special = port_frac(_SPECIAL_TCP_PORTS, is_tcp) + port_frac({53}, is_udp)
    if special >= port_fraction and syn < 0.3:
        return HeuristicLabel(CATEGORY_SPECIAL, "Service")

    return HeuristicLabel(CATEGORY_UNKNOWN, "Unknown")


def label_community(community, extractor) -> HeuristicLabel:
    """Label one community via its extracted traffic.

    Follows the extractor's engine by dispatching its
    ``"community_label"`` kernel: columnar extractors label through
    :func:`label_packets_table` without materializing packet objects,
    reference extractors through :func:`label_packets`.

    Parameters
    ----------
    community:
        :class:`~repro.core.community.Community`.
    extractor:
        The :class:`~repro.core.extractor.TrafficExtractor` of the
        estimator run (needed to expand flow keys back to packets).
    """
    from repro.engine import resolve_engine

    engine = resolve_engine(
        getattr(extractor, "engine", "python"), what="heuristics"
    )
    return engine.kernel("community_label")(extractor, community)
