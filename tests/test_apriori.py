"""Unit tests for repro.rules.apriori."""

import pytest

from repro.errors import RuleMiningError
from repro.rules.apriori import apriori, coverage


class TestBasics:
    def test_empty_transactions(self):
        result = apriori([], min_support_pct=20)
        assert result.itemsets == []
        assert result.n_transactions == 0

    def test_single_transaction(self):
        result = apriori([("a", "b")], min_support_pct=50)
        items = {frozenset(s.items) for s in result.itemsets}
        assert frozenset({"a"}) in items
        assert frozenset({"a", "b"}) in items

    def test_support_threshold_respected(self):
        transactions = [("a",)] * 8 + [("b",)] * 2
        result = apriori(transactions, min_support_pct=50)
        items = {next(iter(s.items)) for s in result.itemsets}
        assert items == {"a"}

    def test_percentage_semantics(self):
        # 20% of 10 transactions = 2; "b" appears twice -> kept.
        transactions = [("a",)] * 8 + [("b",)] * 2
        result = apriori(transactions, min_support_pct=20)
        items = {next(iter(s.items)) for s in result.itemsets}
        assert items == {"a", "b"}

    def test_counts_and_support(self):
        transactions = [("a",)] * 3 + [("a", "b")] * 2
        result = apriori(transactions, min_support_pct=20)
        by_items = {s.items: s for s in result.itemsets}
        assert by_items[frozenset({"a"})].count == 5
        assert by_items[frozenset({"a"})].support == pytest.approx(1.0)
        assert by_items[frozenset({"a", "b"})].count == 2
        assert by_items[frozenset({"a", "b"})].support == pytest.approx(0.4)

    def test_invalid_support_rejected(self):
        with pytest.raises(RuleMiningError):
            apriori([("a",)], min_support_pct=0)
        with pytest.raises(RuleMiningError):
            apriori([("a",)], min_support_pct=101)

    def test_max_size_limits_itemsets(self):
        transactions = [("a", "b", "c", "d")] * 5
        result = apriori(transactions, min_support_pct=50, max_size=2)
        assert max(len(s) for s in result.itemsets) == 2


class TestAprioriProperty:
    def test_subsets_of_frequent_are_frequent(self):
        transactions = [
            ("a", "b", "c"),
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
            ("a", "b", "c"),
        ]
        result = apriori(transactions, min_support_pct=40)
        frequent = {s.items for s in result.itemsets}
        for itemset in frequent:
            if len(itemset) > 1:
                for item in itemset:
                    assert itemset - {item} in frequent

    def test_support_antimonotone(self):
        transactions = [("a", "b", "c")] * 3 + [("a", "b")] * 3 + [("a",)] * 4
        result = apriori(transactions, min_support_pct=10)
        by_items = {s.items: s.count for s in result.itemsets}
        assert by_items[frozenset({"a"})] >= by_items[frozenset({"a", "b"})]
        assert by_items[frozenset({"a", "b"})] >= by_items[
            frozenset({"a", "b", "c"})
        ]


class TestMaximal:
    def test_maximal_excludes_subsets(self):
        transactions = [("a", "b", "c")] * 10
        result = apriori(transactions, min_support_pct=50)
        maximal = result.maximal()
        assert len(maximal) == 1
        assert maximal[0].items == frozenset({"a", "b", "c"})

    def test_maximal_keeps_incomparable_sets(self):
        transactions = [("a", "b")] * 5 + [("c", "d")] * 5
        result = apriori(transactions, min_support_pct=40)
        maximal = {s.items for s in result.maximal()}
        assert frozenset({"a", "b"}) in maximal
        assert frozenset({"c", "d"}) in maximal

    def test_of_size(self):
        transactions = [("a", "b")] * 4
        result = apriori(transactions, min_support_pct=50)
        assert len(result.of_size(1)) == 2
        assert len(result.of_size(2)) == 1


class TestCoverage:
    def test_full_coverage(self):
        transactions = [("a", "b")] * 4
        result = apriori(transactions, min_support_pct=50)
        assert coverage(transactions, result.maximal()) == pytest.approx(1.0)

    def test_partial_coverage(self):
        transactions = [("a",)] * 6 + [("z",)] * 4
        result = apriori(transactions, min_support_pct=50)
        # Only "a" is frequent; it covers 60% of the data.
        assert coverage(transactions, result.maximal()) == pytest.approx(0.6)

    def test_empty(self):
        assert coverage([], []) == 0.0
