"""Unit tests for the similarity estimator and the community model."""

import pytest

from repro.core.community import Community
from repro.core.estimator import SimilarityEstimator
from repro.detectors.base import Alarm
from repro.net.filters import FeatureFilter
from repro.net.flow import Granularity
from repro.net.trace import Trace
from tests.conftest import make_packet


def alarm(config, src, t0=0.0, t1=10.0):
    return Alarm(
        detector=config.split("/")[0],
        config=config,
        t0=t0,
        t1=t1,
        filters=(FeatureFilter(src=src, t0=t0, t1=t1),),
    )


@pytest.fixture
def trace():
    packets = [make_packet(time=float(i % 10), src=1, dst=2, sport=100, dport=80) for i in range(10)]
    packets += [make_packet(time=float(i % 10), src=3, dst=4, sport=200, dport=53) for i in range(10)]
    return Trace(packets)


class TestEstimator:
    def test_similar_alarms_grouped(self, trace):
        alarms = [alarm("a/0", src=1), alarm("b/0", src=1), alarm("c/0", src=3)]
        estimator = SimilarityEstimator()
        result = estimator.build(trace, alarms)
        assert len(result.communities) == 2
        sizes = sorted(c.size for c in result.communities)
        assert sizes == [1, 2]

    def test_single_community_for_unrelated_alarm(self, trace):
        alarms = [alarm("a/0", src=99)]
        result = SimilarityEstimator().build(trace, alarms)
        assert result.n_single == 1
        assert result.communities[0].traffic == frozenset()

    def test_no_alarms(self, trace):
        result = SimilarityEstimator().build(trace, [])
        assert result.communities == []
        assert result.n_single == 0

    def test_traffic_union(self, trace):
        alarms = [alarm("a/0", src=1), alarm("b/0", src=1)]
        result = SimilarityEstimator().build(trace, alarms)
        community = result.communities[0]
        assert community.traffic == result.traffic_sets[0] | result.traffic_sets[1]

    def test_time_envelope(self, trace):
        alarms = [alarm("a/0", src=1, t0=1.0, t1=3.0), alarm("b/0", src=1, t0=2.0, t1=8.0)]
        result = SimilarityEstimator().build(trace, alarms)
        community = result.communities[0]
        assert community.t0 == 1.0
        assert community.t1 == 8.0

    def test_granularity_passthrough(self, trace):
        estimator = SimilarityEstimator(granularity=Granularity.PACKET)
        result = estimator.build(trace, [alarm("a/0", src=1)])
        assert result.granularity is Granularity.PACKET
        assert all(isinstance(i, int) for i in result.traffic_sets[0])


class TestCommunityModel:
    def test_detectors_and_configs(self, trace):
        alarms = [alarm("pca/optimal", src=1), alarm("pca/sensitive", src=1), alarm("kl/optimal", src=1)]
        result = SimilarityEstimator().build(trace, alarms)
        community = result.communities[0]
        assert community.detectors() == {"pca", "kl"}
        assert community.configs() == {"pca/optimal", "pca/sensitive", "kl/optimal"}

    def test_is_single(self):
        a = alarm("x/0", src=1)
        community = Community(id=0, alarm_ids=(0,), alarms=(a,))
        assert community.is_single

    def test_by_id(self, trace):
        result = SimilarityEstimator().build(trace, [alarm("a/0", src=1)])
        assert result.by_id(0).id == 0
        with pytest.raises(KeyError):
            result.by_id(99)

    def test_non_single_and_sizes(self, trace):
        alarms = [alarm("a/0", src=1), alarm("b/0", src=1), alarm("c/0", src=3)]
        result = SimilarityEstimator().build(trace, alarms)
        assert sorted(result.sizes()) == [1, 2]
        assert len(result.non_single()) == 1

    def test_describe(self, trace):
        result = SimilarityEstimator().build(trace, [alarm("a/0", src=1)])
        assert "community#0" in result.communities[0].describe()
