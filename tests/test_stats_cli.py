"""Tests for repro.net.stats and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.net.stats import compute_stats
from repro.net.trace import Trace


class TestStats:
    def test_empty_trace(self):
        stats = compute_stats(Trace([]))
        assert stats.n_packets == 0
        assert stats.packet_rate == 0.0

    def test_counts(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.n_packets == len(tiny_trace)
        assert stats.n_bytes == tiny_trace.total_bytes
        assert stats.n_uniflows == len(tiny_trace.flows())
        assert stats.n_src_hosts == 3

    def test_proto_fractions_sum_to_one(self, archive_day):
        stats = compute_stats(archive_day.trace)
        assert sum(stats.proto_fractions.values()) == pytest.approx(1.0)

    def test_entropy_fields(self, archive_day):
        stats = compute_stats(archive_day.trace)
        assert set(stats.entropy) == {"src", "dst", "sport", "dport"}
        assert all(v > 0 for v in stats.entropy.values())

    def test_describe_renders(self, archive_day):
        text = compute_stats(archive_day.trace).describe()
        assert "packets" in text
        assert "entropy" in text

    def test_top_lists_bounded(self, archive_day):
        stats = compute_stats(archive_day.trace, top=3)
        assert len(stats.top_dports) <= 3
        assert len(stats.top_talkers) <= 3


@pytest.fixture
def pcap_file(tmp_path):
    path = str(tmp_path / "t.pcap")
    code = main(
        [
            "generate",
            "--seed",
            "3",
            "--duration",
            "15",
            "--anomaly",
            "syn_flood",
            "--out",
            path,
            "--truth",
            str(tmp_path / "truth.json"),
        ]
    )
    assert code == 0
    return path


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["inspect", "x.pcap"])
        assert args.command == "inspect"

    def test_generate_writes_truth(self, tmp_path):
        out = str(tmp_path / "a.pcap")
        truth = str(tmp_path / "a.json")
        assert (
            main(
                [
                    "generate",
                    "--seed",
                    "1",
                    "--duration",
                    "10",
                    "--anomaly",
                    "sasser",
                    "--out",
                    out,
                    "--truth",
                    truth,
                ]
            )
            == 0
        )
        events = json.load(open(truth))
        assert events[0]["kind"] == "sasser"
        assert events[0]["n_packets"] > 0

    def test_inspect(self, pcap_file, capsys):
        assert main(["inspect", pcap_file]) == 0
        out = capsys.readouterr().out
        assert "packets" in out

    def test_detect(self, pcap_file, capsys):
        assert main(["detect", pcap_file, "--config", "kl/sensitive"]) == 0
        out = capsys.readouterr().out
        assert "alarms from kl/sensitive" in out

    def test_label_csv_stdout(self, pcap_file, capsys):
        assert main(["label", pcap_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("community,taxonomy")

    def test_label_xml_to_file(self, pcap_file, tmp_path):
        out_path = str(tmp_path / "labels.xml")
        assert (
            main(["label", pcap_file, "--format", "xml", "--out", out_path])
            == 0
        )
        content = open(out_path).read()
        assert content.startswith("<?xml")
        assert "<admd" in content

    def test_label_strategy_choice(self, pcap_file, capsys):
        assert main(["label", pcap_file, "--strategy", "average"]) == 0

    def test_archive(self, capsys):
        assert (
            main(
                [
                    "archive",
                    "--start",
                    "2004-01-01",
                    "--months",
                    "2",
                    "--duration",
                    "15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2004-01-01" in out
        assert "2004-02-01" in out

    def test_bad_config_errors(self, pcap_file):
        from repro.errors import DetectorError

        with pytest.raises(DetectorError):
            main(["detect", pcap_file, "--config", "nope/nope"])
