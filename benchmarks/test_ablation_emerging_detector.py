"""Ablation — integrating an emerging detector (paper Section 6).

"By including new results from upcoming detectors the overlaps of the
detectors outputs are emphasized and the accuracy of SCANN is
improved."  This ablation adds the entropy detector (3 extra
configurations) to the paper's 12 and compares ground-truth event
recall and attack-ratio contrast.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import GRANULARITY_DATES, run_once
from repro.detectors.entropy import extended_ensemble
from repro.detectors.registry import default_ensemble
from repro.eval.groundtruth import score_pipeline_result
from repro.eval.metrics import attack_ratio_by_class
from repro.eval.report import format_table
from repro.labeling.heuristics import label_community
from repro.labeling.mawilab import MAWILabPipeline


def test_ablation_emerging_detector(archive, benchmark):
    def compute():
        days = [archive.day(d) for d in GRANULARITY_DATES]
        results = {}
        for label, ensemble in (
            ("paper-12", default_ensemble()),
            ("extended-15", extended_ensemble()),
        ):
            pipeline = MAWILabPipeline(ensemble=ensemble)
            recalls, contrasts, accepted_counts = [], [], []
            for day in days:
                result = pipeline.run(day.trace)
                score = score_pipeline_result(
                    result, day.events, accepted_only=False
                )
                recalls.append(score.recall)
                cs = result.community_set
                heuristics = [
                    label_community(c, cs.extractor) for c in cs.communities
                ]
                acc, rej = attack_ratio_by_class(
                    heuristics, [d.accepted for d in result.decisions]
                )
                contrasts.append((acc, rej))
                accepted_counts.append(
                    sum(1 for d in result.decisions if d.accepted)
                )
            results[label] = {
                "recall": float(np.mean(recalls)),
                "acc": float(np.mean([a for a, _ in contrasts])),
                "rej": float(np.mean([r for _, r in contrasts])),
                "accepted": float(np.mean(accepted_counts)),
            }
        return results

    results = run_once(benchmark, compute)
    rows = [
        [k, v["recall"], v["accepted"], v["acc"], v["rej"]]
        for k, v in results.items()
    ]
    print()
    print(
        format_table(
            ["ensemble", "GT recall", "accepted/day", "acc ratio", "rej ratio"],
            rows,
            title="Ablation — adding the entropy detector (Section 6)",
        )
    )

    base = results["paper-12"]
    extended = results["extended-15"]
    # The extended ensemble must not lose ground-truth coverage.
    assert extended["recall"] >= base["recall"] - 0.1
    # And must still discriminate.
    assert extended["acc"] > extended["rej"]
