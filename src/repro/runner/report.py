"""Per-shard and aggregated batch-run reports.

A :class:`TraceReport` is the unit a pool worker returns: small,
picklable, and carrying everything the aggregator needs (label counts,
the output CSV digest, cache/failure status).  :class:`BatchReport`
collects them into the longitudinal summary the paper's Figs. 7-9 are
built from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class TraceReport:
    """Outcome of labeling one archive trace."""

    date: str
    #: "ok", "failed", or "skipped" (resumed run found existing output).
    status: str = "ok"
    n_alarms: int = 0
    n_communities: int = 0
    n_anomalous: int = 0
    n_suspicious: int = 0
    n_notice: int = 0
    #: Whether Step 1 alarms came from the on-disk cache.
    cache_hit: bool = False
    csv_path: str = ""
    #: SHA-256 of the rendered label CSV (determinism checks compare
    #: these across serial and sharded runs without re-reading files).
    csv_sha256: str = ""
    elapsed: float = 0.0
    error: str = ""
    #: Zero-copy result transport: a
    #: :class:`~repro.runner.shm.SharedAlarmTableHandle` naming the
    #: worker's exported Step 1 alarm table, when the task asked for
    #: it.  Consumed (and cleared) by the session; never serialized
    #: into the JSON report.
    alarms_shm: object = None
    #: Worker-side phase wall seconds ("attach", "compute"); the
    #: session adds its parent-side phases ("export", "merge") when
    #: profiling.  Empty when the shard was skipped or failed early.
    phases: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class BatchReport:
    """Aggregate of one batch run, ordered by date."""

    reports: list[TraceReport] = field(default_factory=list)
    #: Step 1 alarm tables collected from workers over the zero-copy
    #: shm result transport (``collect_alarms=True`` sessions only),
    #: keyed by trace name.  Not part of the JSON report.
    alarm_tables: dict = field(default_factory=dict, repr=False)

    def completed(self) -> list[TraceReport]:
        return [r for r in self.reports if r.status == "ok"]

    def failures(self) -> list[TraceReport]:
        return [r for r in self.reports if r.status == "failed"]

    def skipped(self) -> list[TraceReport]:
        return [r for r in self.reports if r.status == "skipped"]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.reports if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(
            1 for r in self.reports if r.status == "ok" and not r.cache_hit
        )

    def totals(self) -> dict[str, int]:
        """Label counts summed over completed traces."""
        keys = (
            "n_alarms",
            "n_communities",
            "n_anomalous",
            "n_suspicious",
            "n_notice",
        )
        done = self.completed()
        return {key: sum(getattr(r, key) for r in done) for key in keys}

    def to_json(self) -> str:
        def row(report: TraceReport) -> dict:
            serialized = asdict(report)
            serialized.pop("alarms_shm", None)  # transport-only field
            return serialized

        payload = {
            "traces": [row(r) for r in self.reports],
            "totals": self.totals(),
            "n_completed": len(self.completed()),
            "n_failed": len(self.failures()),
            "n_skipped": len(self.skipped()),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def describe(self) -> str:
        """Human-readable longitudinal summary, one line per trace."""
        lines = [
            f"{'date':12s} {'status':8s} {'alarms':>6s} {'comms':>5s} "
            f"{'anom':>4s} {'susp':>4s} {'notice':>6s} {'cache':>5s} "
            f"{'secs':>6s}"
        ]
        for r in self.reports:
            detail = r.error if r.status == "failed" else ""
            lines.append(
                f"{r.date:12s} {r.status:8s} {r.n_alarms:6d} "
                f"{r.n_communities:5d} {r.n_anomalous:4d} "
                f"{r.n_suspicious:4d} {r.n_notice:6d} "
                f"{'hit' if r.cache_hit else 'miss':>5s} "
                f"{r.elapsed:6.2f} {detail}".rstrip()
            )
        totals = self.totals()
        lines.append(
            f"total: {len(self.completed())} labeled, "
            f"{len(self.failures())} failed, {len(self.skipped())} skipped; "
            f"{totals['n_anomalous']} anomalous / "
            f"{totals['n_suspicious']} suspicious / "
            f"{totals['n_notice']} notice; "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses"
        )
        return "\n".join(lines)
