"""Legacy ``--backend`` / ``backend=`` spellings: warn, then behave.

The engine layer renamed every ``backend`` knob to ``engine``.  The
old spellings still resolve identically — asserted here — but now emit
a :class:`DeprecationWarning` pointing at the replacement.
"""

from __future__ import annotations

import warnings

import pytest

from repro.cli import build_parser
from repro.core.estimator import SimilarityEstimator
from repro.core.extractor import TrafficExtractor
from repro.detectors.kl import KLDetector
from repro.engine import get_engine
from repro.labeling.mawilab import MAWILabPipeline
from repro.net.packet import PROTO_TCP, Packet
from repro.net.trace import Trace
from repro.session import LabelingSession
from repro.stream.pipeline import StreamingPipeline


def _trace() -> Trace:
    return Trace(
        [
            Packet(
                time=float(i),
                src=1,
                dst=2,
                sport=3,
                dport=4,
                proto=PROTO_TCP,
                size=40,
            )
            for i in range(3)
        ]
    )


class TestBackendKwarg:
    def test_pipeline_backend_kwarg_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="backend= .* deprecated"):
            pipeline = MAWILabPipeline(backend="python")
        assert pipeline.engine is get_engine("python")

    def test_explicit_engine_wins_over_backend(self):
        with pytest.warns(DeprecationWarning):
            pipeline = MAWILabPipeline(engine="numpy", backend="python")
        assert pipeline.engine is get_engine("numpy")

    def test_estimator_and_extractor_accept_backend(self):
        with pytest.warns(DeprecationWarning):
            estimator = SimilarityEstimator(backend="python")
        assert estimator.engine is get_engine("python")
        with pytest.warns(DeprecationWarning):
            extractor = TrafficExtractor(_trace(), backend="python")
        assert extractor.engine is get_engine("python")

    def test_detector_backend_param_warns(self):
        with pytest.warns(DeprecationWarning):
            detector = KLDetector(backend="python")
        assert detector.engine is get_engine("python")
        # And it is NOT recorded as a detector parameter (it must never
        # enter ensemble fingerprints).
        assert "backend" not in detector.params

    def test_streaming_pipeline_backend_kwarg(self):
        with pytest.warns(DeprecationWarning):
            stream = StreamingPipeline(window=10.0, backend="python")
        assert stream.engine is get_engine("python")

    def test_session_backend_kwarg(self):
        with pytest.warns(DeprecationWarning):
            session = LabelingSession(backend="python")
        assert session.engine is get_engine("python")
        assert session.config.engine == "python"

    def test_no_warning_without_backend(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MAWILabPipeline(engine="python")
            SimilarityEstimator()
            LabelingSession()

    def test_backend_labels_identically_to_engine(self):
        from repro.labeling.mawilab import labels_to_csv

        trace = _trace()
        with pytest.warns(DeprecationWarning):
            legacy = MAWILabPipeline(backend="python").run(trace)
        modern = MAWILabPipeline(engine="python").run(trace)
        assert labels_to_csv(legacy.labels) == labels_to_csv(modern.labels)


class TestBackendCliAlias:
    def test_backend_flag_warns_and_sets_engine(self, capsys):
        parser = build_parser()
        with pytest.warns(DeprecationWarning, match="--backend is deprecated"):
            args = parser.parse_args(
                ["label", "x.pcap", "--backend", "python"]
            )
        assert args.engine == "python"
        # Humans typing the old flag see a notice even under the
        # default warning filters (which hide DeprecationWarning).
        assert "--backend is deprecated" in capsys.readouterr().err

    def test_engine_flag_does_not_warn(self):
        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["label", "x.pcap", "--engine", "python"]
            )
        assert args.engine == "python"
