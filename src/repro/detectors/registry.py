"""Configuration registry: the paper's 12-configuration ensemble.

Section 3.2: "The confidence score for each detector is obtained by
tuning them with three different parameter sets corresponding to
optimal, sensitive or conservative setting.  Hence, for experiment, the
input for the proposed method consists in the 12 outputs of all the
configurations (4 detectors using 3 parameter tunings)."
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.detectors.base import Alarm, Detector
from repro.detectors.gamma import GAMMA_TUNINGS, GammaDetector
from repro.detectors.hough import HOUGH_TUNINGS, HoughDetector
from repro.detectors.kl import KL_TUNINGS, KLDetector
from repro.detectors.pca import PCA_TUNINGS, PCADetector
from repro.engine import EngineSpec
from repro.errors import DetectorError
from repro.net.trace import Trace

DETECTOR_NAMES = ("pca", "gamma", "hough", "kl")

_CLASSES = {
    "pca": (PCADetector, PCA_TUNINGS),
    "gamma": (GammaDetector, GAMMA_TUNINGS),
    "hough": (HoughDetector, HOUGH_TUNINGS),
    "kl": (KLDetector, KL_TUNINGS),
}

TUNINGS = ("optimal", "sensitive", "conservative")


def default_ensemble(
    detectors: Optional[Iterable[str]] = None,
    tunings: Optional[Iterable[str]] = None,
    engine: EngineSpec = "auto",
) -> list[Detector]:
    """Instantiate the detector ensemble.

    Parameters
    ----------
    detectors:
        Detector family names to include; defaults to all four.
    tunings:
        Tunings per family; defaults to the paper's three.
    engine:
        Feature-path engine applied to every configuration (any spec
        :func:`repro.engine.resolve_engine` accepts); all engines emit
        identical alarms.

    Returns
    -------
    list of instantiated detectors, one per configuration, ordered
    (detector, tuning).
    """
    selected = list(detectors) if detectors is not None else list(DETECTOR_NAMES)
    selected_tunings = list(tunings) if tunings is not None else list(TUNINGS)
    ensemble: list[Detector] = []
    for name in selected:
        if name not in _CLASSES:
            raise DetectorError(f"unknown detector {name!r}")
        cls, tuning_table = _CLASSES[name]
        for tuning in selected_tunings:
            if tuning not in tuning_table:
                raise DetectorError(
                    f"detector {name!r} has no tuning {tuning!r}"
                )
            ensemble.append(
                cls(tuning=tuning, engine=engine, **tuning_table[tuning])
            )
    return ensemble


def detector_for_config(
    config_name: str, engine: EngineSpec = "auto", **params
) -> Detector:
    """Instantiate the detector for a ``"family/tuning"`` config name.

    ``params`` override individual parameters of the tuning's set (a
    parameter unknown to the detector raises
    :class:`~repro.errors.DetectorError`, exactly as direct
    construction would).
    """
    try:
        family, tuning = config_name.split("/", 1)
    except ValueError as exc:
        raise DetectorError(
            f"config name must be 'family/tuning', got {config_name!r}"
        ) from exc
    if family not in _CLASSES:
        raise DetectorError(f"unknown detector {family!r}")
    cls, tuning_table = _CLASSES[family]
    if tuning not in tuning_table:
        raise DetectorError(f"detector {family!r} has no tuning {tuning!r}")
    return cls(
        tuning=tuning, engine=engine, **{**tuning_table[tuning], **params}
    )


def run_ensemble(
    trace: Trace,
    ensemble: Optional[list[Detector]] = None,
) -> list[Alarm]:
    """Run every configuration on one trace; return all alarms.

    This is Step 1 of the paper's method.
    """
    if ensemble is None:
        ensemble = default_ensemble()
    alarms: list[Alarm] = []
    for detector in ensemble:
        alarms.extend(detector.analyze(trace))
    return alarms
