"""Command-line interface.

Twelve subcommands expose the library to non-Python users::

    mawilab generate      --seed 7 --duration 30 --anomaly sasser \
                          --anomaly ping_flood --out day.pcap --truth truth.json
    mawilab inspect       day.pcap
    mawilab detect        day.pcap --config kl/sensitive
    mawilab label         day.pcap --format csv --out labels.csv
    mawilab stream        day.pcap --window 60 --hop 30 --out labels.csv
    mawilab engines
    mawilab bench         --engine auto --out bench.json
    mawilab archive       --start 2004-01-01 --months 6
    mawilab label-archive --start 2004-01-01 --months 6 --workers 4 \
                          --out-dir labels/ --cache-dir .mawilab-cache --resume
    mawilab cache prune   --cache-dir .mawilab-cache --max-bytes 500M \
                          --older-than 30d
    mawilab serve         --port 8738 --db-root labels-db \
                          --schedule 86400 --cache-dir .mawilab-cache
    mawilab warehouse ingest    --root wh --start 2004-01-01 --months 6
    mawilab warehouse query     --root wh --taxonomy anomalous --dport 445
    mawilab warehouse recompute --root wh --strategy average

`label` runs the full 4-step pipeline on one closed trace; `stream`
runs the same method *online* over a sliding window — the pcap is read
in bounded batches, each window is labeled as its end passes, and
per-window progress (packets, alarms, latency) goes to stderr while
the final cross-window-deduplicated CSV goes to stdout; `engines`
lists the registered execution engines and their kernels; `bench` runs
the offline pipeline once on a synthetic archive day plus a streaming
leg and a worker fan-out leg, and prints per-stage wall times,
streaming throughput and per-transport fan-out throughput as JSON —
the perf artifact CI archives on every PR; `archive` sweeps synthetic
archive days and prints the SCANN attack-ratio series (the Fig. 7
workflow); `label-archive` shards archive days across a process pool,
writes one label CSV per day plus a JSON batch report, and can resume
an interrupted run; `serve` runs the labeling daemon — concurrent
HTTP packet feeds with bounded-ring backpressure, live ``/labels``
queries, and an optional resumable archive-ingest schedule (see
``docs/serving.md``); `warehouse` manages the memory-mapped columnar
label store — ingest, zero-copy cross-day queries, CSV export,
checksum verification, and configuration-delta recompute (see
``docs/warehouse.md``).  All commands are deterministic given their
seeds.

The pipeline commands accept ``--engine {auto,numpy,python}``: the
columnar NumPy engine (default) or the pure-Python reference
implementations; all engines label identically.  Every pipeline
command is a run mode of one :class:`repro.session.LabelingSession`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.mawi.anomalies import AnomalySpec
    from repro.mawi.generator import WorkloadSpec, generate_trace
    from repro.net.pcap import write_pcap

    spec = WorkloadSpec(
        seed=args.seed,
        duration=args.duration,
        anomalies=[AnomalySpec(kind) for kind in args.anomaly],
    )
    trace, events = generate_trace(spec)
    write_pcap(trace, args.out)
    print(f"wrote {len(trace)} packets to {args.out}")
    if args.truth:
        payload = [
            {
                "kind": e.kind,
                "category": e.category,
                "t0": e.t0,
                "t1": e.t1,
                "n_packets": e.n_packets,
                "description": e.description,
                "filters": [f.describe() for f in e.filters],
            }
            for e in events
        ]
        with open(args.truth, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(events)} ground-truth events to {args.truth}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.net.pcap import read_pcap
    from repro.net.stats import compute_stats

    trace = read_pcap(args.pcap)
    print(f"{args.pcap}:")
    print(compute_stats(trace).describe())
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detectors.registry import detector_for_config
    from repro.net.pcap import read_pcap

    trace = read_pcap(args.pcap)
    detector = detector_for_config(args.config)
    alarms = detector.analyze(trace)
    print(f"{len(alarms)} alarms from {args.config}:")
    for alarm in alarms[: args.limit]:
        print("  " + alarm.describe())
    if len(alarms) > args.limit:
        print(f"  ... and {len(alarms) - args.limit} more")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    """List registered engines, their kernels and the "auto" choice."""
    from repro.engine import auto_engine, available_engines

    auto = auto_engine()
    for engine in available_engines():
        selected = "  <- auto selects this engine on this host" if engine is auto else ""
        flags = "vectorized" if engine.vectorized else "reference"
        print(f"{engine.name} ({flags}): {engine.description}{selected}")
        for op in engine.kernels():
            print(f"    {op}")
    return 0


def _pipeline_config(args: argparse.Namespace):
    from repro.runner.config import PipelineConfig

    return PipelineConfig(
        strategy=args.strategy,
        granularity=args.granularity,
        measure=args.measure,
        engine=args.engine,
    )


def _session(args: argparse.Namespace, **kwargs):
    from repro.session import LabelingSession

    return LabelingSession(config=_pipeline_config(args), **kwargs)


def _cmd_label(args: argparse.Namespace) -> int:
    from repro.net.pcap import read_pcap

    trace = read_pcap(args.pcap)
    with _session(
        args, workers=args.workers, fanout=args.fanout
    ) as session:
        result = session.label_trace(trace)
    print(
        f"{len(result.alarms)} alarms -> "
        f"{len(result.community_set.communities)} communities -> "
        f"{len(result.anomalous())} anomalous / "
        f"{len(result.suspicious())} suspicious / "
        f"{len(result.notice())} notice",
        file=sys.stderr,
    )
    rendered = session.export(
        result.labels, fmt=args.format, trace_name=args.pcap
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote labels to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Label a pcap online, window by window, in bounded memory."""
    from repro.errors import StreamError
    from repro.net.pcap import iter_pcap

    if args.granularity == "packet":
        print(
            "error: packet granularity is not streamable (packet indices "
            "are window-local); use uniflow or biflow",
            file=sys.stderr,
        )
        return 2
    session = _session(args, workers=args.workers)
    try:
        pipeline = session.streaming_pipeline(args.window, args.hop)
    except StreamError as exc:
        session.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        for result in pipeline.process(
            iter_pcap(args.pcap, chunk_packets=args.chunk)
        ):
            print(result.describe(), file=sys.stderr)
        labels = pipeline.merged_labels()
        stats = pipeline.stats()
    finally:
        pipeline.close()
        session.close()
    print(
        f"{stats.n_windows} windows, {stats.total_packets} packets, "
        f"{stats.packets_per_sec:.0f} pkt/s, "
        f"p95 window latency {stats.p95_latency * 1e3:.1f}ms, "
        f"peak ring {stats.peak_ring_packets} packets -> "
        f"{len(labels)} labels",
        file=sys.stderr,
    )
    rendered = session.export(labels, fmt=args.format, trace_name=args.pcap)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote labels to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """One synthetic-trace pipeline run with per-stage wall times.

    Prints a JSON document so CI can archive comparable perf artifacts
    across PRs: generation parameters, per-stage seconds
    (detect / extract / graph / combine / label), totals and output
    shape (alarm/community/label counts), a streaming leg, and a
    worker fan-out leg comparing the shared-memory and pickle
    transports.
    """
    import time

    from repro.labeling.mawilab import MAWILabPipeline
    from repro.mawi.archive import SyntheticArchive

    archive = SyntheticArchive(seed=args.seed, trace_duration=args.duration)
    trace = archive.day(args.date).trace
    pipeline = MAWILabPipeline(engine=args.engine)

    timings: dict = {}
    started = time.perf_counter()
    alarms = pipeline.detect(trace)
    timings["detect"] = time.perf_counter() - started
    result = pipeline.run_with_alarms(trace, alarms, timings=timings)
    total = time.perf_counter() - started

    # Streaming leg: the same trace consumed as a chunked stream with
    # overlapping windows, so the artifact tracks online throughput
    # (packets/sec) and window latency alongside the offline stages.
    from repro.errors import StreamError
    from repro.stream import StreamingPipeline, chunk_table

    stream_window = args.stream_window or args.duration / 3.0
    stream_hop = args.stream_hop or stream_window / 2.0
    try:
        streamer = StreamingPipeline(
            window=stream_window, hop=stream_hop, engine=args.engine
        )
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stream_result = streamer.run(
        chunk_table(trace.table, args.stream_chunk)
    )

    payload = {
        "engine": args.engine,
        "seed": args.seed,
        "date": args.date,
        "duration": args.duration,
        "n_packets": len(trace),
        "n_alarms": len(result.alarms),
        "n_communities": len(result.community_set.communities),
        "n_anomalous": len(result.anomalous()),
        "stages": {
            stage: round(timings.get(stage, 0.0), 6)
            for stage in ("detect", "extract", "graph", "combine", "label")
        },
        "total": round(total, 6),
        "streaming": {
            "window": stream_window,
            "hop": stream_hop,
            "chunk_packets": args.stream_chunk,
            "n_labels": len(stream_result.labels),
            **stream_result.stats.to_dict(),
        },
    }
    payload["detect_leg"] = _bench_detect(
        trace, engine=args.engine, profile=args.profile
    )
    if args.alarm_path_reps > 0:
        payload["alarm_path"] = _bench_alarm_path(
            trace, reps=args.alarm_path_reps
        )
    if args.fanout_workers > 0:
        payload["fanout"] = _bench_fanout(args, archive)
    if args.serve_queries > 0:
        payload["serve"] = _bench_serve(args, archive)
    if args.warehouse_days > 0:
        payload["warehouse"] = _bench_warehouse(args, archive)
    rendered = json.dumps(payload, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote bench report to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _bench_detect(trace, engine: str, profile: bool, reps: int = 3) -> dict:
    """Detect leg: Step 1 throughput with and without the plane cache.

    The ensemble analyzes the bench trace twice per rep — *uncached*
    (one fresh :class:`~repro.detectors.planes.PlaneCache` per
    configuration, preserving only the pre-cache intra-configuration
    reuse) and *cached* (one cache shared across all configurations,
    the production sharing path).  Both legs must produce
    byte-identical labels (asserted here), so ``detect_speedup`` —
    best-of-``reps`` uncached seconds over cached seconds, the ratio
    the CI regression gate enforces on multi-core hosts — is a pure
    plane-sharing effect.

    With ``profile``, the leg carries per-configuration wall times for
    both variants plus the shared cache's hit/miss/bytes counters.
    """
    import os
    import time

    from repro.core.alarm_table import AlarmTable
    from repro.detectors.planes import PlaneCache
    from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv

    pipeline = MAWILabPipeline(engine=engine)
    names = pipeline.config_names

    def run_leg(shared: bool) -> tuple[dict, str]:
        best = None
        for _ in range(reps):
            cache = PlaneCache(pipeline.engine) if shared else None
            per_config = {}
            tables = []
            leg_started = time.perf_counter()
            for name, detector in zip(names, pipeline.ensemble):
                planes = (
                    cache if shared else PlaneCache(pipeline.engine)
                )
                started = time.perf_counter()
                tables.append(detector.analyze_table(trace, planes=planes))
                per_config[name] = round(
                    time.perf_counter() - started, 6
                )
            elapsed = time.perf_counter() - leg_started
            if best is None or elapsed < best["seconds"]:
                best = {"seconds": round(elapsed, 6)}
                if profile:
                    best["per_config"] = per_config
                    if shared:
                        best["plane_cache"] = cache.counters()
                best_tables = tables
        result = pipeline.run_with_alarms(
            trace, AlarmTable.concatenate(best_tables)
        )
        return best, labels_to_csv(result.labels)

    uncached, uncached_csv = run_leg(shared=False)
    cached, cached_csv = run_leg(shared=True)
    if uncached_csv != cached_csv:
        raise RuntimeError(
            "detect leg: cached and uncached runs disagree on labels"
        )
    return {
        "engine": engine,
        "reps": reps,
        "n_configs": len(names),
        "cpu_count": os.cpu_count() or 1,
        "uncached": uncached,
        "cached": cached,
        "detect_speedup": round(
            uncached["seconds"] / cached["seconds"], 3
        ),
    }


def _bench_alarm_path(trace, reps: int = 3) -> dict:
    """Alarm-path leg: Steps 2-4 throughput, object vs columnar.

    The same Step 1 alarm set is pushed through similarity estimation,
    community detection, acceptance and labeling ``reps`` times on both
    data paths — the reference engine over a plain ``Alarm`` object
    list, and the columnar engine over the
    :class:`~repro.core.alarm_table.AlarmTable` — reporting alarms/sec
    per path.  Both paths must render byte-identical CSV (asserted
    here), so the speedup is a pure data-path effect.
    """
    import time

    from repro.core.alarm_table import AlarmTable
    from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv

    columnar_pipeline = MAWILabPipeline(engine="numpy")
    object_pipeline = MAWILabPipeline(engine="python")
    table = columnar_pipeline.detect_table(trace)
    alarm_list = table.to_alarms()
    n_alarms = len(table)
    leg: dict = {"n_alarms": n_alarms, "reps": reps}
    outputs = {}

    for name, pipeline, alarms in (
        ("object", object_pipeline, alarm_list),
        ("columnar", columnar_pipeline, table),
    ):
        started = time.perf_counter()
        for _ in range(reps):
            result = pipeline.run_with_alarms(
                trace,
                alarms if isinstance(alarms, AlarmTable) else list(alarms),
            )
        elapsed = time.perf_counter() - started
        outputs[name] = labels_to_csv(result.labels)
        leg[name] = {
            "seconds": round(elapsed, 6),
            "alarms_per_sec": round(n_alarms * reps / elapsed, 1),
        }
    if outputs["object"] != outputs["columnar"]:
        raise RuntimeError("alarm-path leg: engines disagree on labels")
    leg["columnar_speedup"] = round(
        leg["object"]["seconds"] / leg["columnar"]["seconds"], 3
    )
    return leg


def _bench_fanout(args: argparse.Namespace, archive) -> dict:
    """Fan-out leg: pool execution compared end to end, plus a raw
    transport microbench.

    *Labeling*: ``--fanout-traces`` archive days labeled four ways —
    ``single`` (one process, the 2x-win reference), ``pickle`` (pool,
    tables serialized through the task pipe), ``shm`` (pool, tables
    exported once into recycled arena segments workers pin), and
    ``shm_detector`` (intra-trace detector fan-out over the shm
    transport).  Every sub-leg records its worker count, fan-out mode
    and transport alongside packets/sec; all four must render
    byte-identical label CSVs (asserted here).  ``shm_vs_single`` and
    ``shm_vs_pickle`` are the ratios the CI regression gate enforces
    (on multi-core hosts), and ``cpu_count`` records what parallelism
    the host could actually offer.

    *Transport microbench*: the bench trace tiled to
    ``--fanout-packets`` rows and shipped to every worker with a
    trivial touch on the far side, isolating raw transport throughput
    (this is where zero-copy shows up undiluted by labeling compute).

    With ``--profile``, each labeling sub-leg carries a per-phase
    wall-time breakdown (export / attach / compute / merge / idle).
    """
    import os
    import time

    from repro.runner.config import PipelineConfig
    from repro.session import LabelingSession

    dates = _month_dates("2005-01-01", args.fanout_traces)
    traces = [archive.day(date).trace for date in dates]
    total_packets = sum(len(t) for t in traces)
    leg = {
        "workers": args.fanout_workers,
        "n_traces": len(traces),
        "total_packets": total_packets,
        "cpu_count": os.cpu_count() or 1,
        "labeling": {},
    }
    sub_legs = (
        ("single", dict(workers=1, transport="pickle", fanout="shard")),
        (
            "pickle",
            dict(
                workers=args.fanout_workers,
                transport="pickle",
                fanout="shard",
            ),
        ),
        (
            "shm",
            dict(
                workers=args.fanout_workers,
                transport="shm",
                fanout="shard",
            ),
        ),
        (
            "shm_detector",
            dict(
                workers=args.fanout_workers,
                transport="shm",
                fanout="detector",
            ),
        ),
    )
    shas = {}
    for name, spec in sub_legs:
        profile: dict = {}
        with LabelingSession(
            config=PipelineConfig(engine=args.engine), **spec
        ) as session:
            started = time.perf_counter()
            report = session.label_traces(
                traces, profile=profile if args.profile else None
            )
            elapsed = time.perf_counter() - started
        if report.failures():
            raise RuntimeError(
                f"fanout leg {name!r} failed: "
                f"{[r.error for r in report.failures()]}"
            )
        shas[name] = tuple(r.csv_sha256 for r in report.reports)
        entry = {
            **spec,
            "seconds": round(elapsed, 6),
            "packets_per_sec": round(total_packets / elapsed, 1),
        }
        if args.profile:
            entry["profile"] = profile
        leg["labeling"][name] = entry
    if len(set(shas.values())) != 1:
        raise RuntimeError(
            "fanout legs disagree on labels: "
            + ", ".join(sorted(shas))
        )
    leg["shm_vs_single"] = round(
        leg["labeling"]["single"]["seconds"]
        / leg["labeling"]["shm"]["seconds"],
        3,
    )
    leg["shm_vs_pickle"] = round(
        leg["labeling"]["pickle"]["seconds"]
        / leg["labeling"]["shm"]["seconds"],
        3,
    )
    leg["transport"] = _bench_transport(args, traces[0])
    leg["shm_speedup"] = round(
        leg["transport"]["pickle"]["seconds"]
        / leg["transport"]["shm"]["seconds"],
        3,
    )
    return leg


def _bench_transport(args: argparse.Namespace, trace) -> dict:
    """Raw transport throughput: one big table to every worker."""
    import time

    import numpy as np

    from repro.net.table import COLUMNS, PacketTable
    from repro.runner.pool import parallel_map
    from repro.runner.shm import (
        export_table,
        transport_probe_pickle,
        transport_probe_shm,
    )

    reps = max(args.fanout_packets // max(len(trace), 1), 1)
    big = PacketTable(
        **{
            name: np.tile(getattr(trace.table, name), reps)
            for name in COLUMNS
        }
    )
    workers = args.fanout_workers
    result = {"n_packets": len(big), "shipments": workers}
    expected = int(big.size.sum())

    # Zero-copy means the table exists ONCE: every worker attaches the
    # same segment, while the pickle transport below must serialize
    # one full copy per shipment.
    started = time.perf_counter()
    handle = export_table(big)
    try:
        sums = parallel_map(
            transport_probe_shm, [handle] * workers, workers=workers
        )
    finally:
        handle.unlink()
    elapsed = time.perf_counter() - started
    assert sums == [expected] * workers
    result["shm"] = {
        "seconds": round(elapsed, 6),
        "packets_per_sec": round(len(big) * workers / elapsed, 1),
    }

    started = time.perf_counter()
    sums = parallel_map(
        transport_probe_pickle, [big] * workers, workers=workers
    )
    elapsed = time.perf_counter() - started
    assert sums == [expected] * workers
    result["pickle"] = {
        "seconds": round(elapsed, 6),
        "packets_per_sec": round(len(big) * workers / elapsed, 1),
    }
    return result


def _bench_serve(args: argparse.Namespace, archive) -> dict:
    """Serve leg: ingest + query throughput through the live daemon.

    Boots a :class:`~repro.serve.daemon.LabelingService` behind its
    HTTP surface, pushes one archive day through a feed *over HTTP*
    (the full wire path, backpressure included), then hammers
    ``/labels`` to measure query throughput.  The artifact records
    queries/sec, the ingest-to-queryable p95 latency (window labeling
    + index publish), and — under ``--profile`` — per-feed queue-depth
    high-water marks against their configured bounds, which the
    regression gate checks for bounded-memory behavior.
    """
    import time
    import urllib.request

    from repro.serve import LabelServer, LabelingService, table_to_rows
    from repro.stream.window import chunk_table

    day = archive.day(args.date)

    with LabelingService(
        engine=args.engine,
        window=args.duration,
        max_ring_packets=args.serve_ring,
    ) as service:
        server = LabelServer(service).start_background()
        base = f"http://127.0.0.1:{server.port}"

        def post(path: str, payload: dict) -> dict:
            request = urllib.request.Request(
                base + path,
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                return json.load(response)

        post("/feeds/bench", {"date": day.date})
        ingest_started = time.perf_counter()
        for chunk in chunk_table(day.trace.table, args.stream_chunk):
            post("/feeds/bench/packets", {"packets": table_to_rows(chunk)})
        close_status = post("/feeds/bench/close", {})
        ingest_seconds = time.perf_counter() - ingest_started

        query_url = base + f"/labels?date={day.date}&taxonomy=anomalous"
        query_started = time.perf_counter()
        for _ in range(args.serve_queries):
            with urllib.request.urlopen(query_url) as response:
                json.load(response)
        query_seconds = time.perf_counter() - query_started

        with urllib.request.urlopen(base + "/metrics") as response:
            metrics = json.load(response)

        leg = {
            "n_packets": len(day.trace),
            "n_labels": close_status["labels"],
            "windows": close_status["windows"],
            "ingest_seconds": round(ingest_seconds, 6),
            "ingest_packets_per_sec": round(
                len(day.trace) / ingest_seconds, 1
            ),
            "p95_commit_seconds": metrics["latency"]["p95_commit_seconds"],
            "queries": args.serve_queries,
            "queries_per_sec": round(
                args.serve_queries / query_seconds, 1
            ),
        }
        if args.profile:
            # Bounded-memory evidence: every queue's high-water mark
            # next to its configured bound (gated by
            # check_bench_regression.py).
            leg["queues"] = metrics["queues"]
        server.stop_background()
    return leg


def _bench_warehouse(args: argparse.Namespace, archive) -> dict:
    """Warehouse leg: columnar cross-day queries vs CSV re-parsing,
    plus the delta-recompute path.

    ``--warehouse-days`` archive days are labeled once and dual-written
    into a :class:`~repro.labeling.database.LabelDatabase` (the CSV
    baseline) and a :class:`~repro.labeling.warehouse.Warehouse`
    (mmap'd columnar segments).  The leg then measures:

    * cross-day query throughput — the same taxonomy filter answered
      from mapped columns (``Warehouse.query``) and by re-parsing every
      day's CSV (``LabelDatabase.load_day``); ``query_speedup`` is the
      ratio the CI regression gate enforces,
    * cold-open latency — a fresh :class:`Warehouse` handle mapping
      every day's label segment,
    * delta recompute — a heuristics-only configuration change
      (combiner strategy) relabeled via ``Warehouse.recompute``, which
      must reuse every day's Step 1 alarms from the previous version's
      segments (``step1_reruns`` is gated at exactly zero) and beat the
      full relabeling wall time (``recompute_speedup``).

    The warehouse CSV export is asserted byte-identical to the stored
    database CSV for every day, so the speedups are pure data-path
    effects.
    """
    import dataclasses
    import os
    import tempfile
    import time

    from repro.labeling.database import LabelDatabase, _day_relpath
    from repro.labeling.warehouse import (
        Warehouse,
        archive_meta,
        warehouse_fingerprint,
    )
    from repro.runner.config import PipelineConfig

    dates = _month_dates("2005-01-01", args.warehouse_days)
    config = PipelineConfig(engine=args.engine)
    pipeline = config.build_pipeline()
    query_reps = 20
    with tempfile.TemporaryDirectory(prefix="bench-warehouse-") as root:
        database = LabelDatabase(os.path.join(root, "csv"))
        warehouse = Warehouse(os.path.join(root, "warehouse"))
        version = warehouse.ensure_version(
            warehouse_fingerprint(
                archive.fingerprint(),
                pipeline.ensemble_fingerprint(),
                repr(config),
            ),
            ensemble_fingerprint=pipeline.ensemble_fingerprint(),
            config=repr(config),
            archive=archive_meta(archive),
        )

        started = time.perf_counter()
        for date in dates:
            result = pipeline.run(archive.day(date).trace)
            database.store_day(date, result)
            warehouse.store_result(date, result, version=version)
        full_label_seconds = time.perf_counter() - started

        for date in dates:
            path = os.path.join(database.root, _day_relpath(date))
            with open(path) as handle:
                if warehouse.export_csv(date) != handle.read():
                    raise RuntimeError(
                        f"warehouse leg: export for {date} is not "
                        "byte-identical to the stored CSV"
                    )

        warehouse.close()
        started = time.perf_counter()
        cold = Warehouse(os.path.join(root, "warehouse"))
        for date in dates:
            cold.open_labels(date)
        cold_open_seconds = time.perf_counter() - started
        cold.close()

        started = time.perf_counter()
        for _ in range(query_reps):
            rows = warehouse.query(
                taxonomy="anomalous", engine=args.engine
            )
        warehouse_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(query_reps):
            csv_rows = [
                (date, record)
                for date in dates
                for record in database.load_day(date)
                if record.taxonomy == "anomalous"
            ]
        csv_seconds = time.perf_counter() - started
        # The CSV path yields one row per (community, rule); the
        # warehouse one per community — compare matched communities.
        csv_hits = {(date, record.community_id) for date, record in csv_rows}
        if len(csv_hits) != len(rows):
            raise RuntimeError(
                "warehouse leg: mmap query and CSV scan disagree "
                f"({len(rows)} vs {len(csv_hits)} communities)"
            )

        # Heuristics-only change: the detection ensemble is untouched,
        # so every day's Step 1 alarms must come back from the previous
        # version's alarm segments — zero ensemble reruns.
        started = time.perf_counter()
        report = warehouse.recompute(
            dataclasses.replace(config, strategy="average"),
            archive=archive,
        )
        recompute_seconds = time.perf_counter() - started
        if report.step1_reruns:
            raise RuntimeError(
                "warehouse leg: heuristics-only recompute reran "
                f"Step 1 on {report.step1_reruns} day(s)"
            )
        warehouse.close()

    return {
        "days": len(dates),
        "query_reps": query_reps,
        "n_query_rows": len(rows),
        "full_label_seconds": round(full_label_seconds, 6),
        "cold_open_seconds": round(cold_open_seconds, 6),
        "warehouse_queries_per_sec": round(
            query_reps / warehouse_seconds, 1
        ),
        "csv_queries_per_sec": round(query_reps / csv_seconds, 1),
        "query_speedup": round(csv_seconds / warehouse_seconds, 3),
        "recompute": {
            "seconds": round(recompute_seconds, 6),
            "step1_reruns": report.step1_reruns,
            "cache_hits": report.cache_hits,
            "segment_hits": report.segment_hits,
            "days_changed": sum(
                1
                for day in report.days
                if day.added or day.removed or day.taxonomy_changed
            ),
            "recompute_speedup": round(
                full_label_seconds / recompute_seconds, 3
            ),
        },
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the labeling daemon until interrupted."""
    import threading

    from repro.serve import ArchiveScheduler, LabelServer, LabelingService

    if args.schedule is not None and not args.db_root:
        print("error: --schedule requires --db-root", file=sys.stderr)
        return 2

    service = LabelingService(
        config=_pipeline_config(args),
        workers=args.workers,
        window=args.window,
        hop=args.hop,
        max_ring_packets=args.max_ring_packets,
        db_root=args.db_root,
        warehouse_root=args.warehouse_root,
    )
    # SIGTERM/SIGINT drain the pool and unlink shm before dying.
    service.install_signals()
    for spec in args.feeds or []:
        name, _, date = spec.partition(":")
        service.open_feed(name, date=date or None)

    stop = threading.Event()
    scheduler = None
    scheduler_thread = None
    if args.schedule is not None:
        from repro.mawi.archive import SyntheticArchive

        archive = SyntheticArchive(
            seed=args.seed, trace_duration=args.duration
        )
        scheduler = ArchiveScheduler(
            archive,
            _month_dates(args.start, args.months),
            args.db_root,
            session=service.session,
            cache_dir=args.cache_dir,
            index=service.index,
            warehouse=service.warehouse,
        )

        def _progress(outcome) -> None:
            print(f"schedule: {outcome.describe()}", file=sys.stderr)

        scheduler_thread = threading.Thread(
            target=scheduler.run_forever,
            args=(args.schedule, stop, _progress),
            name="scheduler",
            daemon=True,
        )
        scheduler_thread.start()

    server = LabelServer(service, host=args.host, port=args.port)
    server.start_background()
    print(
        f"serving on http://{args.host}:{server.port} "
        f"(engine {service.session.engine.name}, "
        f"workers {service.session.workers})",
        file=sys.stderr,
    )
    try:
        stop.wait(args.exit_after)
    except KeyboardInterrupt:
        print("interrupt: draining", file=sys.stderr)
    finally:
        stop.set()
        if scheduler_thread is not None:
            scheduler_thread.join(timeout=30.0)
        server.stop_background()
        service.shutdown(drain=True)
    return 0


def _month_dates(start_iso: str, months: int) -> list[str]:
    """``months`` consecutive monthly dates starting at ``start_iso``."""
    import datetime

    start = datetime.date.fromisoformat(start_iso)
    dates = []
    for i in range(months):
        month = start.month - 1 + i
        dates.append(
            datetime.date(
                start.year + month // 12, month % 12 + 1, start.day
            ).isoformat()
        )
    return dates


def _parse_duration(text: str) -> float:
    """Seconds from a human duration: plain number, or Ns/Nm/Nh/Nd."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    suffix = text[-1:].lower()
    try:
        if suffix in units:
            return float(text[:-1]) * units[suffix]
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r} (want seconds or Ns/Nm/Nh/Nd)"
        ) from None


def _parse_bytes(text: str) -> int:
    """Bytes from a human size: plain number, or NK/NM/NG."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3}
    suffix = text[-1:].lower()
    try:
        if suffix in units:
            return int(float(text[:-1]) * units[suffix])
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (want bytes or NK/NM/NG)"
        ) from None


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    """Evict alarm-cache entries by LRU recency and/or age."""
    from repro.runner.cache import AlarmCache

    if args.max_bytes is None and args.older_than is None:
        print(
            "error: nothing to prune; pass --max-bytes and/or --older-than",
            file=sys.stderr,
        )
        return 2
    cache = AlarmCache(args.cache_dir)
    stats = cache.prune(
        max_bytes=args.max_bytes, older_than=args.older_than
    )
    print(stats.describe())
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from repro.eval.metrics import attack_ratio_by_class
    from repro.labeling.heuristics import label_community
    from repro.labeling.mawilab import MAWILabPipeline
    from repro.mawi.archive import SyntheticArchive

    archive = SyntheticArchive(seed=args.seed, trace_duration=args.duration)
    pipeline = MAWILabPipeline()
    dates = _month_dates(args.start, args.months)
    print(f"{'date':12s} {'era':14s} {'communities':>11s} "
          f"{'accepted':>8s} {'acc.ratio':>9s} {'rej.ratio':>9s}")
    for date in dates:
        day = archive.day(date)
        result = pipeline.run(day.trace)
        community_set = result.community_set
        heuristics = [
            label_community(c, community_set.extractor)
            for c in community_set.communities
        ]
        acc, rej = attack_ratio_by_class(
            heuristics, [d.accepted for d in result.decisions]
        )
        accepted = sum(1 for d in result.decisions if d.accepted)
        print(
            f"{date:12s} {day.era.name:14s} "
            f"{len(community_set.communities):11d} {accepted:8d} "
            f"{acc:9.2f} {rej:9.2f}"
        )
    return 0


def _cmd_label_archive(args: argparse.Namespace) -> int:
    import datetime
    import os

    from repro.mawi.archive import SyntheticArchive
    from repro.net.trace import Trace, TraceMetadata

    archive = SyntheticArchive(seed=args.seed, trace_duration=args.duration)
    dates = args.date or _month_dates(args.start, args.months)
    seen = set()
    for date in dates:
        try:
            datetime.date.fromisoformat(date)
        except ValueError:
            print(f"error: invalid --date {date!r} (want YYYY-MM-DD)",
                  file=sys.stderr)
            return 2
        if date in seen:
            print(f"error: duplicate --date {date!r}", file=sys.stderr)
            return 2
        seen.add(date)
    if args.fanout != "shard" and args.transport == "regenerate":
        print(
            "error: --fanout detector/trace needs pregenerated tables; "
            "pass --transport shm (or pickle)",
            file=sys.stderr,
        )
        return 2
    session = _session(
        args,
        workers=args.workers,
        cache_dir=args.cache_dir,
        out_dir=args.out_dir,
        resume=args.resume,
        transport=args.transport if args.transport != "regenerate" else "auto",
        fanout=args.fanout,
    )

    def progress(done: int, total: int, report) -> None:
        marker = "ok" if report.ok else f"FAILED ({report.error})"
        cache = " [cached alarms]" if report.cache_hit else ""
        print(
            f"[{done}/{total}] {report.date}: {marker}{cache}",
            file=sys.stderr,
        )

    if args.transport == "regenerate":
        with session:
            batch = session.label_archive(archive, dates, progress=progress)
    else:
        # Explicit transport: pregenerate the days in this process and
        # ship the packet tables to workers (shm or pickle), keeping
        # the per-date output naming of the regenerate path.
        traces = []
        for date in dates:
            day = archive.day(date)
            metadata = day.trace.metadata
            traces.append(
                Trace.from_table(
                    day.trace.table,
                    TraceMetadata(
                        name=date,
                        samplepoint=metadata.samplepoint,
                        link_mbps=metadata.link_mbps,
                        date=date,
                    ),
                )
            )
        with session:
            batch = session.label_traces(
                traces,
                progress=progress,
                # Same provenance as the regenerate transport, so alarm
                # caches warmed under either transport hit under the
                # other.
                fingerprints=[archive.fingerprint()] * len(traces),
            )
    print(batch.describe())
    report_path = os.path.join(args.out_dir, "report.json")
    with open(report_path, "w") as handle:
        handle.write(batch.to_json())
    print(f"wrote per-day CSVs and {report_path}", file=sys.stderr)
    return 1 if batch.failures() else 0


def _cmd_warehouse_ingest(args: argparse.Namespace) -> int:
    """Label archive days into columnar warehouse segments."""
    from repro.labeling.warehouse import (
        Warehouse,
        archive_meta,
        warehouse_fingerprint,
    )
    from repro.mawi.archive import SyntheticArchive
    from repro.runner.cache import AlarmCache

    archive = SyntheticArchive(seed=args.seed, trace_duration=args.duration)
    dates = args.date or _month_dates(args.start, args.months)
    config = _pipeline_config(args)
    pipeline = config.build_pipeline()
    ensemble_fp = pipeline.ensemble_fingerprint()
    cache = AlarmCache(args.cache_dir) if args.cache_dir else None
    with Warehouse(args.root) as warehouse:
        version = warehouse.ensure_version(
            warehouse_fingerprint(
                archive.fingerprint(), ensemble_fp, repr(config)
            ),
            ensemble_fingerprint=ensemble_fp,
            config=repr(config),
            archive=archive_meta(archive),
        )
        stored = skipped = cache_hits = 0
        for date in dates:
            if warehouse.has_day(date, version) and not args.force:
                print(f"{date}: already stored", file=sys.stderr)
                skipped += 1
                continue
            trace = archive.day(date).trace
            alarms = None
            key = None
            if cache is not None:
                key = AlarmCache.make_key(
                    archive.fingerprint(), date, ensemble_fp
                )
                alarms = cache.get(key)
            if alarms is None:
                result = pipeline.run(trace)
                if cache is not None and key is not None:
                    cache.put(key, result.alarms)
            else:
                cache_hits += 1
                result = pipeline.run_with_alarms(trace, alarms)
            warehouse.store_result(date, result, version=version)
            stored += 1
            print(
                f"{date}: {len(result.labels)} labels, "
                f"{len(result.alarms)} alarms"
                + (" [cached alarms]" if alarms is not None else ""),
                file=sys.stderr,
            )
    print(
        f"version {version}: {stored} stored, {skipped} skipped, "
        f"{cache_hits} alarm-cache hits -> {args.root}"
    )
    return 0


def _cmd_warehouse_query(args: argparse.Namespace) -> int:
    """Cross-day label rows from mapped columns, as JSON."""
    from repro.errors import WarehouseError
    from repro.labeling.warehouse import Warehouse

    try:
        with Warehouse(args.root) as warehouse:
            rows = warehouse.query(
                date=args.date,
                date_from=args.date_from,
                date_to=args.date_to,
                taxonomy=args.taxonomy,
                src=args.src,
                dst=args.dst,
                sport=args.sport,
                dport=args.dport,
                t0=args.t0,
                t1=args.t1,
                limit=args.limit,
                version=args.warehouse_version,
                engine=args.engine,
            )
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps({"n": len(rows), "rows": rows}, indent=2))
    return 0


def _cmd_warehouse_stats(args: argparse.Namespace) -> int:
    """Per-day and total label counts, from the manifest alone."""
    from repro.errors import WarehouseError
    from repro.labeling.warehouse import Warehouse

    try:
        stats = Warehouse(args.root).stats(args.warehouse_version)
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(stats, indent=2))
    return 0


def _cmd_warehouse_export(args: argparse.Namespace) -> int:
    """One day's labels as CSV — byte-identical to ``label``."""
    from repro.errors import WarehouseError
    from repro.labeling.warehouse import Warehouse

    try:
        with Warehouse(args.root) as warehouse:
            rendered = warehouse.export_csv(
                args.date, args.warehouse_version
            )
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote labels to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_warehouse_verify(args: argparse.Namespace) -> int:
    """Hash-check every segment against the manifest."""
    from repro.errors import WarehouseError
    from repro.labeling.warehouse import Warehouse

    try:
        with Warehouse(args.root) as warehouse:
            versions = (
                [args.warehouse_version]
                if args.warehouse_version
                else warehouse.versions()
            )
            for version in versions:
                checked = warehouse.verify(version)
                print(
                    f"{checked['version']}: {checked['segments']} segments "
                    f"across {checked['days']} days ok"
                )
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_warehouse_recompute(args: argparse.Namespace) -> int:
    """Relabel every ingested day under a new configuration, reusing
    cached/stored Step 1 alarms (delta recompute)."""
    from repro.errors import WarehouseError
    from repro.labeling.warehouse import Warehouse

    try:
        with Warehouse(args.root) as warehouse:
            report = warehouse.recompute(
                _pipeline_config(args),
                cache_dir=args.cache_dir,
                dates=args.date or None,
            )
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not report.changed:
        print(
            f"no-op: configuration fingerprint {report.fingerprint} "
            f"already current ({report.old_version})",
            file=sys.stderr,
        )
    else:
        print(
            f"{report.old_version} -> {report.new_version}: "
            f"{len(report.days)} days relabeled in "
            f"{report.elapsed:.2f}s ({report.cache_hits} cache hits, "
            f"{report.segment_hits} segment hits, "
            f"{report.step1_reruns} full reruns)",
            file=sys.stderr,
        )
    print(json.dumps(report.to_payload(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mawilab",
        description="MAWILab reproduction: combine anomaly detectors and label traces.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--duration", type=float, default=30.0)
    generate.add_argument(
        "--anomaly",
        action="append",
        default=[],
        help="anomaly kind to inject (repeatable)",
    )
    generate.add_argument("--out", required=True, help="output pcap path")
    generate.add_argument("--truth", help="optional ground-truth JSON path")
    generate.set_defaults(func=_cmd_generate)

    inspect = sub.add_parser("inspect", help="print trace statistics")
    inspect.add_argument("pcap")
    inspect.set_defaults(func=_cmd_inspect)

    detect = sub.add_parser("detect", help="run one detector configuration")
    detect.add_argument("pcap")
    detect.add_argument(
        "--config", default="kl/optimal", help="family/tuning, e.g. pca/sensitive"
    )
    detect.add_argument("--limit", type=int, default=20)
    detect.set_defaults(func=_cmd_detect)

    engines = sub.add_parser(
        "engines",
        help="list registered execution engines and their kernels",
    )
    engines.set_defaults(func=_cmd_engines)

    label = sub.add_parser("label", help="run the full labeling pipeline")
    label.add_argument("pcap")
    label.add_argument("--format", choices=("csv", "xml"), default="csv")
    label.add_argument("--out", help="output path (stdout if omitted)")
    label.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for --fanout detector/trace (1 = serial)",
    )
    _add_fanout_option(label)
    _add_pipeline_options(label)
    label.set_defaults(func=_cmd_label)

    bench = sub.add_parser(
        "bench",
        help="run the synthetic-trace pipeline once and print per-stage "
        "wall times as JSON",
    )
    bench.add_argument("--seed", type=int, default=2010)
    bench.add_argument("--duration", type=float, default=30.0)
    bench.add_argument("--date", default="2005-06-01")
    _add_engine_option(bench)
    bench.add_argument(
        "--stream-window",
        type=float,
        help="streaming-leg window seconds (default: duration / 3)",
    )
    bench.add_argument(
        "--stream-hop",
        type=float,
        help="streaming-leg hop seconds (default: window / 2)",
    )
    bench.add_argument(
        "--stream-chunk",
        type=int,
        default=2048,
        help="streaming-leg ingestion batch size in packets",
    )
    bench.add_argument(
        "--fanout-workers",
        type=int,
        default=4,
        help="fan-out-leg pool size (0 skips the fan-out leg)",
    )
    bench.add_argument(
        "--fanout-traces",
        type=int,
        default=4,
        help="fan-out-leg batch size in archive days",
    )
    bench.add_argument(
        "--fanout-packets",
        type=int,
        default=2_000_000,
        help="transport-microbench table size in packets",
    )
    bench.add_argument(
        "--alarm-path-reps",
        type=int,
        default=3,
        help="alarm-path-leg repetitions of Steps 2-4 per data path "
        "(0 skips the alarm-path leg)",
    )
    bench.add_argument(
        "--serve-queries",
        type=int,
        default=50,
        help="serve-leg /labels query count (0 skips the serve leg)",
    )
    bench.add_argument(
        "--serve-ring",
        type=int,
        default=65536,
        help="serve-leg feed ring capacity in packets (the bounded-"
        "memory limit the regression gate checks peaks against)",
    )
    bench.add_argument(
        "--warehouse-days",
        type=int,
        default=6,
        help="warehouse-leg archive-day count for the mmap-query vs "
        "CSV-scan and delta-recompute comparison (0 skips the leg)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall times (export / attach / compute / "
        "merge / idle) for each fan-out labeling sub-leg",
    )
    bench.add_argument("--out", help="output path (stdout if omitted)")
    bench.set_defaults(func=_cmd_bench)

    stream = sub.add_parser(
        "stream",
        help="label a pcap online over a sliding window (bounded memory)",
    )
    stream.add_argument("pcap")
    stream.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="window span in seconds (window >= trace duration "
        "reproduces `label` byte-for-byte)",
    )
    stream.add_argument(
        "--hop",
        type=float,
        help="seconds between window emissions (default: window, i.e. "
        "tumbling; smaller values overlap windows)",
    )
    stream.add_argument(
        "--chunk",
        type=int,
        default=8192,
        help="ingestion batch size in packets",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; > 1 fans each window's detectors "
        "across a persistent pool (1 = serial)",
    )
    stream.add_argument("--format", choices=("csv", "xml"), default="csv")
    stream.add_argument("--out", help="output path (stdout if omitted)")
    _add_pipeline_options(stream)
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="run the labeling daemon: HTTP feeds, live label queries, "
        "optional scheduled archive ingest",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8738,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--feeds",
        action="append",
        metavar="NAME[:DATE]",
        help="pre-open a feed at boot (repeatable); DATE defaults to "
        "the feed name",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=30.0,
        help="default feed window seconds (a window covering a feed's "
        "whole stream reproduces `label` byte-for-byte)",
    )
    serve.add_argument(
        "--hop",
        type=float,
        help="default feed hop seconds (default: window, i.e. tumbling)",
    )
    serve.add_argument(
        "--max-ring-packets",
        type=int,
        default=65536,
        help="default per-feed ingest-ring capacity; a full ring "
        "blocks the producer (backpressure) instead of growing memory",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size shared by every feed (1 = in-process)",
    )
    serve.add_argument(
        "--db-root",
        help="LabelDatabase root; closed feeds and scheduled days "
        "persist their label CSVs here",
    )
    serve.add_argument(
        "--warehouse-root",
        help="columnar label warehouse root; closed feeds and "
        "scheduled days are dual-written there and /labels answers "
        "ingested days zero-copy from mmap",
    )
    serve.add_argument(
        "--schedule",
        type=float,
        metavar="SECONDS",
        help="ingest archive days every SECONDS (requires --db-root; "
        "resumable via the journal in the database root)",
    )
    serve.add_argument(
        "--seed", type=int, default=2010, help="scheduled-archive seed"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="scheduled-archive trace duration in seconds",
    )
    serve.add_argument(
        "--start",
        default="2004-01-01",
        help="first scheduled archive date",
    )
    serve.add_argument(
        "--months",
        type=int,
        default=6,
        help="scheduled archive span in months",
    )
    serve.add_argument(
        "--cache-dir",
        help="Step 1 alarm-cache directory for scheduled ingest",
    )
    serve.add_argument(
        "--exit-after",
        type=float,
        metavar="SECONDS",
        help="self-terminate after this long (CI smoke harness)",
    )
    _add_pipeline_options(serve)
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="manage the on-disk Step 1 alarm cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used / stale cache entries",
    )
    prune.add_argument(
        "--cache-dir",
        required=True,
        help="the alarm-cache directory (as passed to label-archive)",
    )
    prune.add_argument(
        "--max-bytes",
        type=_parse_bytes,
        help="keep the cache under this many bytes, evicting LRU "
        "entries first (suffixes K/M/G accepted)",
    )
    prune.add_argument(
        "--older-than",
        type=_parse_duration,
        help="drop entries not used within this long "
        "(seconds, or Ns/Nm/Nh/Nd)",
    )
    prune.set_defaults(func=_cmd_cache_prune)

    archive = sub.add_parser(
        "archive", help="label synthetic archive days and print the series"
    )
    archive.add_argument("--seed", type=int, default=2010)
    archive.add_argument("--duration", type=float, default=30.0)
    archive.add_argument("--start", default="2004-01-01")
    archive.add_argument("--months", type=int, default=6)
    archive.set_defaults(func=_cmd_archive)

    label_archive = sub.add_parser(
        "label-archive",
        help="label many archive days across a process pool",
    )
    label_archive.add_argument("--seed", type=int, default=2010)
    label_archive.add_argument("--duration", type=float, default=30.0)
    label_archive.add_argument("--start", default="2004-01-01")
    label_archive.add_argument("--months", type=int, default=6)
    label_archive.add_argument(
        "--date",
        action="append",
        help="explicit ISO date to label (repeatable; overrides "
        "--start/--months)",
    )
    label_archive.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size (1 = serial)",
    )
    label_archive.add_argument(
        "--transport",
        choices=("regenerate", "shm", "pickle"),
        default="regenerate",
        help="how traces reach workers: regenerate each day in the "
        "worker (default), or pregenerate here and ship tables over "
        "zero-copy shared memory / the pickle pipe",
    )
    _add_fanout_option(label_archive)
    label_archive.add_argument(
        "--cache-dir",
        help="directory caching Step 1 alarms keyed by (trace, ensemble)",
    )
    label_archive.add_argument(
        "--out-dir",
        required=True,
        help="directory receiving labels-<date>.csv files and report.json",
    )
    label_archive.add_argument(
        "--resume",
        action="store_true",
        help="skip dates whose label CSV already exists in --out-dir",
    )
    _add_pipeline_options(label_archive)
    label_archive.set_defaults(func=_cmd_label_archive)

    warehouse = sub.add_parser(
        "warehouse",
        help="manage the memory-mapped columnar label warehouse",
    )
    warehouse_sub = warehouse.add_subparsers(
        dest="warehouse_command", required=True
    )

    def warehouse_root(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root", required=True, help="warehouse root directory"
        )

    def warehouse_version_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--at-version",
            dest="warehouse_version",
            help="operate on a specific warehouse version "
            "(default: current)",
        )

    w_ingest = warehouse_sub.add_parser(
        "ingest",
        help="label synthetic archive days into columnar segments",
    )
    warehouse_root(w_ingest)
    w_ingest.add_argument("--seed", type=int, default=2010)
    w_ingest.add_argument("--duration", type=float, default=30.0)
    w_ingest.add_argument("--start", default="2004-01-01")
    w_ingest.add_argument("--months", type=int, default=6)
    w_ingest.add_argument(
        "--date",
        action="append",
        help="explicit ISO date to ingest (repeatable; overrides "
        "--start/--months)",
    )
    w_ingest.add_argument(
        "--cache-dir",
        help="Step 1 alarm-cache directory (hits skip the ensemble)",
    )
    w_ingest.add_argument(
        "--force",
        action="store_true",
        help="re-label days already stored under the current "
        "configuration",
    )
    _add_pipeline_options(w_ingest)
    w_ingest.set_defaults(func=_cmd_warehouse_ingest)

    w_query = warehouse_sub.add_parser(
        "query",
        help="cross-day label rows from mapped columns, as JSON",
    )
    warehouse_root(w_query)
    w_query.add_argument("--date", help="restrict to one ISO date")
    w_query.add_argument(
        "--from",
        dest="date_from",
        help="inclusive ISO date-range start",
    )
    w_query.add_argument(
        "--to", dest="date_to", help="inclusive ISO date-range end"
    )
    w_query.add_argument(
        "--taxonomy", choices=("anomalous", "suspicious", "notice")
    )
    w_query.add_argument("--src", help="source address (dotted quad)")
    w_query.add_argument("--dst", help="destination address")
    w_query.add_argument("--sport", type=int, help="source port")
    w_query.add_argument("--dport", type=int, help="destination port")
    w_query.add_argument(
        "--t0", type=float, help="only labels active at/after this time"
    )
    w_query.add_argument(
        "--t1", type=float, help="only labels active at/before this time"
    )
    w_query.add_argument("--limit", type=int, help="stop after N rows")
    warehouse_version_option(w_query)
    _add_engine_option(w_query)
    w_query.set_defaults(func=_cmd_warehouse_query)

    w_stats = warehouse_sub.add_parser(
        "stats",
        help="per-day and total label counts from the manifest",
    )
    warehouse_root(w_stats)
    warehouse_version_option(w_stats)
    w_stats.set_defaults(func=_cmd_warehouse_stats)

    w_export = warehouse_sub.add_parser(
        "export",
        help="render one day's labels as CSV (byte-identical to "
        "`label`)",
    )
    warehouse_root(w_export)
    w_export.add_argument("--date", required=True)
    w_export.add_argument("--out", help="output path (stdout if omitted)")
    warehouse_version_option(w_export)
    w_export.set_defaults(func=_cmd_warehouse_export)

    w_verify = warehouse_sub.add_parser(
        "verify",
        help="hash-check every segment against the manifest",
    )
    warehouse_root(w_verify)
    warehouse_version_option(w_verify)
    w_verify.set_defaults(func=_cmd_warehouse_verify)

    w_recompute = warehouse_sub.add_parser(
        "recompute",
        help="relabel ingested days under a new configuration, "
        "reusing stored Step 1 alarms (delta recompute)",
    )
    warehouse_root(w_recompute)
    w_recompute.add_argument(
        "--cache-dir",
        help="Step 1 alarm-cache directory consulted before the "
        "previous version's alarm segments",
    )
    w_recompute.add_argument(
        "--date",
        action="append",
        help="restrict the recompute to this ISO date (repeatable)",
    )
    _add_pipeline_options(w_recompute)
    w_recompute.set_defaults(func=_cmd_warehouse_recompute)

    return parser


class _EngineOption(argparse.Action):
    """Store an engine spec, warning when the legacy alias is used."""

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string == "--backend":
            import warnings

            # DeprecationWarning is hidden by default filters outside
            # __main__, so the human typing the old flag also gets a
            # plain stderr notice.
            print(
                f"{parser.prog}: warning: --backend is deprecated; "
                "use --engine",
                file=sys.stderr,
            )
            warnings.warn(
                "--backend is deprecated; use --engine "
                "(same accepted values)",
                DeprecationWarning,
                stacklevel=2,
            )
        setattr(namespace, self.dest, values)


def _add_fanout_option(parser: argparse.ArgumentParser) -> None:
    """The pooled parallelism axis (see ``repro.session.FANOUTS``)."""
    parser.add_argument(
        "--fanout",
        choices=("shard", "detector", "trace"),
        default="shard",
        help="unit of pooled parallelism: whole traces (shard, "
        "default), one task per detector configuration (detector), or "
        "the configuration list balanced across the pool (trace); all "
        "modes label byte-identically",
    )


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    """The execution-engine choice (``--backend`` kept as a
    deprecated alias that warns)."""
    parser.add_argument(
        "--engine",
        "--backend",  # pre-engine-layer alias, resolves identically
        dest="engine",
        action=_EngineOption,
        choices=("auto", "numpy", "python"),
        default="auto",
        help="execution engine: numpy = columnar fast paths (default), "
        "python = pure-Python reference kernels",
    )


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    """Pipeline options shared by `label`, `stream` and `label-archive`."""
    parser.add_argument(
        "--strategy",
        choices=("scann", "average", "minimum", "maximum", "majority"),
        default="scann",
    )
    parser.add_argument(
        "--granularity",
        choices=("packet", "uniflow", "biflow"),
        default="uniflow",
    )
    parser.add_argument(
        "--measure",
        choices=("simpson", "jaccard", "constant"),
        default="simpson",
    )
    _add_engine_option(parser)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
