"""Feature filters: the predicate language alarms are expressed in.

An alarm (paper Section 2.1) is "a set of traffic features that
designates a particular traffic".  :class:`FeatureFilter` is that set:
any combination of source/destination address, ports, protocol and a
time interval, each optional.  A filter with every field ``None``
matches everything — detectors never emit such alarms, and the
similarity estimator treats the time interval as mandatory.

Filters compose the heterogeneous granularities of the four detectors:

* PCA reports ``FeatureFilter(src=...)``;
* Gamma reports ``FeatureFilter(src=...)`` or ``FeatureFilter(dst=...)``;
* Hough reports explicit flow-key sets (see ``repro.detectors.base``);
* KL reports partial 4-tuples, i.e. any subset of the fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.table import PacketTable


@dataclass(frozen=True)
class FeatureFilter:
    """A partial match over packet header fields and time.

    ``None`` fields are wildcards.  ``t0``/``t1`` bound the half-open
    interval ``[t0, t1)``; both default to unbounded.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    proto: Optional[int] = None
    t0: Optional[float] = None
    t1: Optional[float] = None

    def matches(self, packet: Packet) -> bool:
        """True if the packet satisfies every non-wildcard field."""
        if self.t0 is not None and packet.time < self.t0:
            return False
        if self.t1 is not None and packet.time >= self.t1:
            return False
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.sport is not None and packet.sport != self.sport:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.proto is not None and packet.proto != self.proto:
            return False
        return True

    def mask(
        self,
        table: "PacketTable",
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`matches` over a whole columnar table.

        Returns a boolean array, one entry per table row, equal
        element-for-element to calling :meth:`matches` on each packet.
        ``t0``/``t1`` override the filter's own (wildcard) time bounds —
        the traffic extractor passes the alarm window here.  The table
        must be time-sorted (every :class:`~repro.net.trace.Trace`
        table is), which turns the window into two binary searches.

        The scalar :meth:`matches` stays the reference implementation;
        a property test asserts both agree.
        """
        n = len(table)
        mask = np.zeros(n, dtype=bool)
        lo_t = self.t0 if self.t0 is not None else t0
        hi_t = self.t1 if self.t1 is not None else t1
        lo = int(np.searchsorted(table.time, lo_t, side="left")) if lo_t is not None else 0
        hi = int(np.searchsorted(table.time, hi_t, side="left")) if hi_t is not None else n
        if hi <= lo:
            return mask
        window = np.ones(hi - lo, dtype=bool)
        for field in ("src", "dst", "sport", "dport", "proto"):
            wanted = getattr(self, field)
            if wanted is not None:
                window &= table.column(field)[lo:hi] == wanted
        mask[lo:hi] = window
        return mask

    @property
    def degree(self) -> int:
        """Number of non-wildcard *feature* fields (time excluded).

        Mirrors the paper's "rule degree": a fully specified 4-tuple has
        degree 4.  The protocol field does not count toward the degree,
        matching the 4-tuple rules of Section 4.1.1.
        """
        return sum(
            1
            for value in (self.src, self.sport, self.dst, self.dport)
            if value is not None
        )

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``<1.2.3.4, 80, *, *>``."""
        from repro.net.addresses import ip_to_str

        src = ip_to_str(self.src) if self.src is not None else "*"
        dst = ip_to_str(self.dst) if self.dst is not None else "*"
        sport = str(self.sport) if self.sport is not None else "*"
        dport = str(self.dport) if self.dport is not None else "*"
        return f"<{src}, {sport}, {dst}, {dport}>"


def match_packet(filters: list[FeatureFilter], packet: Packet) -> bool:
    """True if any filter in the list matches the packet."""
    return any(f.matches(packet) for f in filters)


def match_mask(filters: list[FeatureFilter], table: "PacketTable") -> np.ndarray:
    """Vectorized :func:`match_packet`: OR of every filter's mask."""
    mask = np.zeros(len(table), dtype=bool)
    for feature_filter in filters:
        mask |= feature_filter.mask(table)
    return mask
