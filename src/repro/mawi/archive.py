"""The synthetic archive: deterministic daily traces, 2001-2010.

:class:`SyntheticArchive` plays the role of the real MAWI repository:
ask it for a date and it generates that day's 15-minute-equivalent
trace (scaled down in duration for tractability) with an anomaly mix
drawn from the date's era profile.  Generation is deterministic in
``(archive_seed, date)``, so benchmarks and tests can sample any subset
of days reproducibly and in any order.
"""

from __future__ import annotations

import datetime
import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.mawi.anomalies import AnomalySpec, GroundTruthEvent
from repro.mawi.events import EraProfile, era_for_date
from repro.mawi.generator import BackgroundProfile, WorkloadSpec, generate_trace
from repro.net.trace import Trace


@dataclass
class ArchiveDay:
    """One generated archive day."""

    date: str
    era: EraProfile
    trace: Trace
    events: list[GroundTruthEvent]


def _day_seed(archive_seed: int, date: str) -> int:
    """Stable 63-bit seed derived from the archive seed and the date."""
    digest = hashlib.sha256(f"{archive_seed}:{date}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class SyntheticArchive:
    """Deterministic MAWI-like archive.

    Parameters
    ----------
    seed:
        Archive-level seed; two archives with the same seed are
        identical.
    trace_duration:
        Duration of each daily trace in seconds.  The real archive uses
        900 s; the default of 60 s keeps full-archive sweeps tractable
        while preserving every per-trace statistic the pipeline uses
        (rates simply scale).
    """

    def __init__(self, seed: int = 2010, trace_duration: float = 60.0) -> None:
        self.seed = seed
        self.trace_duration = trace_duration

    def fingerprint(self) -> str:
        """Stable digest of the archive identity.

        Two archives with equal fingerprints generate identical traces
        for every date, so the digest can key on-disk caches of
        per-trace derived artifacts (e.g. the batch runner's alarms).
        """
        payload = f"synthetic:{self.seed}:{self.trace_duration!r}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def day(self, date: str) -> ArchiveDay:
        """Generate (deterministically) the trace for one ISO date."""
        era = era_for_date(date)
        day_seed = _day_seed(self.seed, date)
        rng = np.random.default_rng(day_seed)
        lo, hi = era.anomalies_per_trace
        n_anomalies = int(rng.integers(lo, hi + 1))
        kinds = list(era.anomaly_weights)
        weights = np.array([era.anomaly_weights[k] for k in kinds], dtype=float)
        probs = weights / weights.sum()
        anomalies = [
            AnomalySpec(
                kind=str(rng.choice(kinds, p=probs)),
                intensity=float(rng.uniform(0.5, 1.5)),
            )
            for _ in range(n_anomalies)
        ]
        spec = WorkloadSpec(
            seed=day_seed,
            duration=self.trace_duration,
            background=BackgroundProfile(
                flow_rate=era.flow_rate, p2p_weight=era.p2p_weight
            ),
            anomalies=anomalies,
            name=f"mawi-{date}",
            date=date,
            link_mbps=era.link_mbps,
        )
        trace, events = generate_trace(spec)
        return ArchiveDay(date=date, era=era, trace=trace, events=events)

    def days(self, dates: list[str]) -> Iterator[ArchiveDay]:
        """Generate several days lazily."""
        for date in dates:
            yield self.day(date)


def first_week_of_months(
    start_year: int = 2001,
    end_year: int = 2009,
    days_per_month: int = 1,
    month_step: int = 1,
) -> list[str]:
    """Dates sampling the first week of every month, as in Section 3.1.

    The paper evaluates the similarity estimator on "the first week of
    every month from 2001 to 2009".  ``days_per_month`` controls how
    many of those seven days are sampled (benchmarks use 1-2 to bound
    runtime); ``month_step`` subsamples months.
    """
    dates: list[str] = []
    for year in range(start_year, end_year + 1):
        for month in range(1, 13, month_step):
            for day in range(1, 1 + days_per_month):
                dates.append(datetime.date(year, month, day).isoformat())
    return dates
