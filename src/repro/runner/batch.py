"""The batch runner: longitudinal labeling across a process pool.

:class:`BatchRunner` shards a :class:`~repro.mawi.archive.SyntheticArchive`
(or any iterable of traces) into per-trace tasks, fans them out with
:func:`~repro.runner.pool.parallel_map`, and aggregates the per-shard
reports — sorted by date, independent of completion order — into a
:class:`~repro.runner.report.BatchReport`.

Failure and restart semantics: a crashing shard becomes a
``status="failed"`` report instead of aborting the batch, and with
``resume=True`` a re-run skips every date whose label CSV already
exists in ``out_dir``, so only failed or missing shards are recomputed.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.mawi.archive import SyntheticArchive
from repro.net.trace import Trace
from repro.runner import worker
from repro.runner.config import PipelineConfig
from repro.runner.pool import ProgressCallback, parallel_map
from repro.runner.report import BatchReport, TraceReport


class BatchRunner:
    """Label many traces with one pipeline configuration.

    Parameters
    ----------
    config:
        Pipeline description applied to every trace.
    workers:
        Process-pool size; ``<= 1`` labels serially in-process.
    cache_dir:
        Optional directory for the Step 1 alarm cache shared by all
        workers (and by later runs with other combiners).
    out_dir:
        Optional directory receiving one ``labels-<date>.csv`` per
        trace; required for ``resume``.
    resume:
        Skip dates whose label CSV already exists in ``out_dir``.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        out_dir: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        if resume and not out_dir:
            raise ValueError("resume=True requires an out_dir")
        self.config = config or PipelineConfig()
        self.workers = workers
        self.cache_dir = cache_dir
        self.out_dir = out_dir
        self.resume = resume
        if out_dir:
            Path(out_dir).mkdir(parents=True, exist_ok=True)

    def run(
        self,
        archive: SyntheticArchive,
        dates: Sequence[str],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Label the archive days ``dates``; workers regenerate traces."""
        tasks = [
            worker.TraceTask(
                date=date,
                config=self.config,
                archive_seed=archive.seed,
                trace_duration=archive.trace_duration,
                cache_dir=self.cache_dir,
                out_dir=self.out_dir,
            )
            for date in dates
        ]
        return self._execute(tasks, progress)

    def run_traces(
        self,
        traces: Iterable[Trace],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Label arbitrary traces (shipped to workers by pickling).

        Each trace is keyed by its metadata name (falling back to the
        date field), which names its output CSV and resume marker.
        """
        tasks = []
        for trace in traces:
            name = trace.metadata.name or trace.metadata.date
            tasks.append(
                worker.TraceTask(
                    date=name,
                    config=self.config,
                    trace=trace,
                    cache_dir=self.cache_dir,
                    out_dir=self.out_dir,
                )
            )
        return self._execute(tasks, progress)

    def _execute(
        self,
        tasks: list[worker.TraceTask],
        progress: Optional[ProgressCallback],
    ) -> BatchReport:
        seen: set[str] = set()
        for task in tasks:
            if task.date in seen:
                raise ValueError(f"duplicate trace name {task.date!r}")
            seen.add(task.date)

        pending: list[worker.TraceTask] = []
        reports: list[TraceReport] = []
        if self.resume:
            for task in tasks:
                existing = worker.csv_path_for(self.out_dir, task.date)
                if existing.is_file():
                    text = existing.read_text()
                    reports.append(
                        TraceReport(
                            date=task.date,
                            status="skipped",
                            csv_path=str(existing),
                            csv_sha256=hashlib.sha256(
                                text.encode()
                            ).hexdigest(),
                        )
                    )
                else:
                    pending.append(task)
        else:
            pending = tasks

        reports.extend(
            parallel_map(
                worker.run_task,
                pending,
                workers=self.workers,
                progress=progress,
            )
        )
        reports.sort(key=lambda r: r.date)
        return BatchReport(reports=reports)
