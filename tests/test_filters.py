"""Unit tests for repro.net.filters."""

from repro.net.filters import FeatureFilter, match_packet
from repro.net.packet import PROTO_UDP
from tests.conftest import make_packet


class TestMatches:
    def test_wildcard_matches_everything(self):
        assert FeatureFilter().matches(make_packet())

    def test_src_constraint(self):
        f = FeatureFilter(src=1)
        assert f.matches(make_packet(src=1))
        assert not f.matches(make_packet(src=2))

    def test_all_fields(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        exact = FeatureFilter(src=1, dst=2, sport=10, dport=20, proto=p.proto)
        assert exact.matches(p)
        assert not exact.matches(p.reversed())

    def test_time_window_half_open(self):
        f = FeatureFilter(t0=1.0, t1=2.0)
        assert not f.matches(make_packet(time=0.5))
        assert f.matches(make_packet(time=1.0))
        assert f.matches(make_packet(time=1.999))
        assert not f.matches(make_packet(time=2.0))

    def test_proto_constraint(self):
        f = FeatureFilter(proto=PROTO_UDP)
        assert f.matches(make_packet(proto=PROTO_UDP))
        assert not f.matches(make_packet())


class TestDegree:
    def test_degree_counts_feature_fields(self):
        assert FeatureFilter().degree == 0
        assert FeatureFilter(src=1).degree == 1
        assert FeatureFilter(src=1, dport=80).degree == 2
        assert FeatureFilter(src=1, sport=2, dst=3, dport=4).degree == 4

    def test_proto_and_time_do_not_count(self):
        assert FeatureFilter(proto=6, t0=0.0, t1=1.0).degree == 0


class TestDescribe:
    def test_wildcards_rendered(self):
        f = FeatureFilter(src=0x01020304, dport=80)
        assert f.describe() == "<1.2.3.4, *, *, 80>"


class TestMatchPacket:
    def test_any_filter_suffices(self):
        filters = [FeatureFilter(src=1), FeatureFilter(src=2)]
        assert match_packet(filters, make_packet(src=2))
        assert not match_packet(filters, make_packet(src=3))

    def test_empty_filter_list(self):
        assert not match_packet([], make_packet())
