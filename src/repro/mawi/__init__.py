"""Synthetic MAWI-like archive.

The paper labels the real MAWI archive: nine years of daily 15-minute
header-only traces from a trans-Pacific backbone link.  That archive is
public but cannot be bundled here, so this subpackage generates a
statistically faithful substitute (see DESIGN.md, "Substitutions"):

* heavy-tailed background traffic over the services the Table-1
  heuristics know about (HTTP, DNS, FTP, SSH, NetBIOS, ICMP, P2P);
* a library of anomaly injectors mirroring the anomalies the paper
  reports (Sasser/Blaster worm scans, SYN floods, ping floods, port
  scans, DDoS, NetBIOS probes, flash crowds, elephant flows);
* an event timeline reproducing the archive's history — the Blaster
  (2003-08) and Sasser (2004-05) outbreaks, the 2006/2007 link
  upgrades, and the post-2007 growth of random-port peer-to-peer
  traffic that degrades the heuristics' attack ratio in Fig. 7.

Every generator is seeded; a given (archive seed, date) pair always
produces the same trace, which makes the benchmarks reproducible.
"""

from repro.mawi.generator import BackgroundProfile, TrafficGenerator, WorkloadSpec, generate_trace
from repro.mawi.anomalies import (
    ANOMALY_INJECTORS,
    AnomalySpec,
    GroundTruthEvent,
    inject_anomaly,
)
from repro.mawi.events import EraProfile, archive_timeline, era_for_date
from repro.mawi.archive import ArchiveDay, SyntheticArchive, first_week_of_months
from repro.mawi.classifier import annotate_trace, classify_port

__all__ = [
    "BackgroundProfile",
    "TrafficGenerator",
    "WorkloadSpec",
    "generate_trace",
    "ANOMALY_INJECTORS",
    "AnomalySpec",
    "GroundTruthEvent",
    "inject_anomaly",
    "EraProfile",
    "archive_timeline",
    "era_for_date",
    "ArchiveDay",
    "SyntheticArchive",
    "first_week_of_months",
    "annotate_trace",
    "classify_port",
]
