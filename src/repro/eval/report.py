"""Plain-text report rendering for the benchmark harness.

The benchmark targets print the rows/series the paper's tables and
figures report; these helpers keep the formatting consistent and
readable in CI logs.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    x: Sequence,
    y: Sequence,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    max_points: int = 40,
) -> str:
    """Render an (x, y) series as aligned text, subsampled if long."""
    n = len(x)
    if n != len(y):
        raise ValueError("series length mismatch")
    step = max(1, n // max_points)
    rows = [(x[i], y[i]) for i in range(0, n, step)]
    return format_table([x_label, y_label], rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
