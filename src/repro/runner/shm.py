"""Zero-copy packet-table transport over ``multiprocessing.shared_memory``.

The pickle transport serializes every :class:`~repro.net.table.PacketTable`
column into the pool's task pipe and deserializes it in the worker —
two full copies plus pickle framing, per task.  This module replaces
that with one named shared-memory segment per table:

* the parent **exports** the table once (:func:`export_table`): columns
  are packed back-to-back into one segment, and a tiny picklable
  :class:`SharedTableHandle` (segment name + per-column layout) rides
  the task pipe instead of the data;
* the worker **attaches** (:meth:`SharedTableHandle.attach`): each
  column becomes a NumPy view directly over the mapped segment — no
  copy, no deserialization — wrapped in an immutable
  :class:`~repro.net.table.PacketTable`;
* the parent **unlinks** the segment after the shard's report arrives
  (:meth:`SharedTableHandle.unlink`), returning the memory to the OS.

Archive labeling therefore scales with cores, not with pickle
bandwidth; ``repro bench`` measures both transports side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.net.table import COLUMN_DTYPES, COLUMNS, PacketTable


def _unregister_attached(name: str) -> None:
    """Opt an attached (not owned) segment out of resource tracking.

    Before Python 3.13 (``track=False``), merely attaching registers
    the segment with the process's resource tracker, which then
    "cleans up" — unlinks — segments the parent still owns when the
    worker exits, and warns about leaks it never owned.  Attach-side
    unregistration is the documented workaround.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing.resource_tracker import unregister

        unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class AttachedTable:
    """A :class:`PacketTable` view over a mapped shared segment.

    Keeps the segment mapped for as long as the table is in use; call
    :meth:`close` (or use as a context manager) after dropping every
    reference to the table and arrays derived from its columns.
    """

    def __init__(self, shm: shared_memory.SharedMemory, table: PacketTable) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.table: Optional[PacketTable] = table

    def __enter__(self) -> PacketTable:
        assert self.table is not None
        return self.table

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drop the table and unmap the segment (idempotent).

        A still-referenced column view makes the unmap raise
        ``BufferError``; the mapping then simply lives until process
        exit, which is safe — only :meth:`SharedTableHandle.unlink`
        frees the backing memory, and that stays the parent's job.
        """
        self.table = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            self._shm = None


@dataclass(frozen=True)
class SharedTableHandle:
    """Picklable description of one exported table segment."""

    name: str
    n_rows: int

    def attach(self) -> AttachedTable:
        """Map the segment and view it as a :class:`PacketTable`."""
        shm = shared_memory.SharedMemory(name=self.name)
        _unregister_attached(self.name)
        columns = {}
        offset = 0
        for column, dtype in COLUMN_DTYPES.items():
            columns[column] = np.ndarray(
                (self.n_rows,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            offset += _column_bytes(self.n_rows, dtype)
        return AttachedTable(shm, PacketTable(**columns))

    def unlink(self) -> None:
        """Free the backing segment (owner-side, after workers finish)."""
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:  # pragma: no cover - already unlinked
            return
        segment.unlink()
        segment.close()


def _column_bytes(n_rows: int, dtype: np.dtype) -> int:
    """Segment bytes reserved per column, 8-byte aligned."""
    return -(-n_rows * dtype.itemsize // 8) * 8


def segment_bytes(n_rows: int) -> int:
    """Total segment size for an ``n_rows`` table (≥ 1 byte)."""
    return max(
        sum(_column_bytes(n_rows, dtype) for dtype in COLUMN_DTYPES.values()),
        1,
    )


def transport_probe_shm(handle: SharedTableHandle) -> int:
    """Pool worker for the transport microbench: attach + touch.

    Returns the table's total byte count, forcing a real read of the
    mapped columns; the work is deliberately trivial so the measured
    time is the transport, not the compute.
    """
    attached = handle.attach()
    try:
        return int(attached.table.size.sum())
    finally:
        attached.close()


def transport_probe_pickle(table: PacketTable) -> int:
    """Pickle-transport twin of :func:`transport_probe_shm`."""
    return int(table.size.sum())


def export_table(table: PacketTable) -> SharedTableHandle:
    """Copy ``table`` into a fresh shared segment; return its handle.

    The caller owns the segment and must eventually call
    :meth:`SharedTableHandle.unlink` (normally after every worker
    labeled against it) — segments outlive the creating process
    otherwise.
    """
    n_rows = len(table)
    shm = shared_memory.SharedMemory(create=True, size=segment_bytes(n_rows))
    try:
        offset = 0
        for column in COLUMNS:
            dtype = COLUMN_DTYPES[column]
            view = np.ndarray(
                (n_rows,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            view[:] = getattr(table, column)
            offset += _column_bytes(n_rows, dtype)
        handle = SharedTableHandle(name=shm.name, n_rows=n_rows)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    del view
    shm.close()
    return handle
