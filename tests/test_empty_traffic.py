"""Regression tests: alarms whose filters match zero packets.

A detector can legitimately emit an alarm whose feature filters
designate no packet of the trace (e.g. a rule mined from a value that
sits exactly on a bin edge).  Such an alarm must flow through the
whole pipeline as an *isolated* graph node — an empty traffic set must
not divide by ``min(|E1|, |E2|) == 0`` in the Simpson measure, not
crash the heuristics, and not derail community numbering.
"""

import pytest

from repro.core.graph import build_similarity_graph
from repro.detectors.base import Alarm
from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv
from repro.net.filters import FeatureFilter
from repro.net.flow import Granularity
from repro.net.trace import Trace
from tests.conftest import make_packet


@pytest.fixture
def trace():
    return Trace(
        [make_packet(time=float(i), src=1, dst=2) for i in range(10)]
    )


def empty_alarm(t0=0.0, t1=9.0):
    """An alarm whose filter matches no packet (src 77 never appears)."""
    return Alarm(
        detector="t",
        config="t/x",
        t0=t0,
        t1=t1,
        filters=(FeatureFilter(src=77, t0=t0, t1=t1),),
    )


def matching_alarm(t0=0.0, t1=9.5):
    return Alarm(
        detector="u",
        config="u/x",
        t0=t0,
        t1=t1,
        filters=(FeatureFilter(src=1, t0=t0, t1=t1),),
    )


@pytest.mark.parametrize("engine", ["numpy", "python"])
@pytest.mark.parametrize("granularity", list(Granularity))
def test_empty_extraction_both_engines(trace, engine, granularity):
    from repro.core.extractor import TrafficExtractor

    extractor = TrafficExtractor(trace, granularity, engine=engine)
    assert extractor.extract(empty_alarm()) == frozenset()
    assert extractor.packets_of(frozenset()) == []


@pytest.mark.parametrize("graph_engine", ["numpy", "python"])
def test_empty_set_is_isolated_node_not_simpson_crash(graph_engine):
    # One empty set among overlapping ones: the Simpson denominator
    # min(|E1|, |E2|) would be 0 for any pair involving it.
    traffic_sets = [frozenset({1, 2}), frozenset(), frozenset({2, 3})]
    graph = build_similarity_graph(
        traffic_sets, measure="simpson", engine=graph_engine
    )
    assert graph.isolated_nodes() == [1]
    assert graph.neighbors(0) == {2: 0.5}


@pytest.mark.parametrize("engine", ["numpy", "python"])
def test_pipeline_survives_empty_traffic_alarm(trace, engine):
    pipeline = MAWILabPipeline(engine=engine)
    alarms = [matching_alarm(), empty_alarm()]
    result = pipeline.run_with_alarms(trace, alarms)
    # The empty alarm forms its own single community with empty traffic.
    empties = [
        c for c in result.community_set.communities if not c.traffic
    ]
    assert len(empties) == 1
    assert empties[0].is_single
    record = result.labels[empties[0].id]
    assert record.heuristic.category == "unknown"
    # CSV rendering must not blow up either, and both engines agree.
    assert labels_to_csv(result.labels)


def test_engines_agree_on_empty_traffic_alarm(trace):
    alarms = [matching_alarm(), empty_alarm()]
    csvs = {
        engine: labels_to_csv(
            MAWILabPipeline(engine=engine)
            .run_with_alarms(trace, alarms)
            .labels
        )
        for engine in ("numpy", "python")
    }
    assert csvs["numpy"] == csvs["python"]


class TestAlarmDescribe:
    def test_includes_config_and_window(self):
        text = empty_alarm(1.0, 2.0).describe()
        assert "[t/x]" in text
        assert "1.0-2.0s" in text

    def test_falls_back_to_detector_family(self):
        alarm = Alarm(
            detector="pca",
            config="",
            t0=0.0,
            t1=1.0,
            filters=(FeatureFilter(src=1),),
        )
        assert alarm.describe().startswith("[pca]")

    def test_union_of_filters_and_flows_is_explicit(self, trace):
        from repro.net.flow import uniflow_key

        alarm = Alarm(
            detector="t",
            config="t/x",
            t0=0.0,
            t1=1.0,
            filters=(FeatureFilter(src=1), FeatureFilter(dst=2)),
            flow_keys=frozenset({uniflow_key(trace[0])}),
        )
        text = alarm.describe()
        assert text.count("∪") == 2
        assert "1 flows" in text
