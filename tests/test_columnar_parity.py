"""Property tests: columnar (numpy) paths vs pure-Python references.

Every layer the columnar engine vectorizes keeps its original
object-based implementation as an oracle, selected by ``backend=``
(the convention PR 1 introduced for ``build_similarity_graph``).
These hypothesis tests assert the two implementations are
element-for-element identical:

* ``FeatureFilter.mask`` vs per-packet ``FeatureFilter.matches``;
* ``TrafficExtractor`` (extract / extract_all / packets_of) across all
  three granularities;
* ``Trace.flows`` (columnar aggregation) vs ``aggregate_flows``;
* detector feature histograms (``binned_value_histogram`` vs Counter);
* ``SketchHasher.buckets`` vs the scalar ``bucket``, and
  ``dominant_keys`` across backends;
* the Table-1 heuristics over columns vs over packet objects;
* the similarity graph fed with code arrays vs fed with frozensets.
"""

from collections import Counter

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.extractor import TrafficExtractor
from repro.core.graph import build_similarity_graph
from repro.detectors.base import Alarm
from repro.detectors.features import binned_value_histogram
from repro.detectors.sketch import SketchHasher, dominant_keys
from repro.labeling.heuristics import label_packets, label_packets_table
from repro.net.filters import FeatureFilter, match_mask, match_packet
from repro.net.flow import Granularity, aggregate_flows, uniflow_key
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Packet
from repro.net.table import COLUMNS
from repro.net.trace import Trace, merge_traces

# -- strategies -------------------------------------------------------
#
# Small value alphabets so filters, flows and histograms actually
# collide; ICMP packets keep ports/flags zero like real traffic.

_small_addr = st.integers(0, 5)
_small_port = st.integers(0, 3)
_times = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def _packet(time, src, dst, sport, dport, proto, size, flags):
    if proto == PROTO_ICMP:
        sport = dport = 0
    return Packet(
        time=time,
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        proto=proto,
        size=size,
        tcp_flags=flags if proto == PROTO_TCP else 0,
        icmp_type=8 if proto == PROTO_ICMP else 0,
    )


packets = st.builds(
    _packet,
    time=_times,
    src=_small_addr,
    dst=_small_addr,
    sport=_small_port,
    dport=_small_port,
    proto=st.sampled_from([PROTO_TCP, PROTO_UDP, PROTO_ICMP]),
    size=st.integers(40, 1500),
    flags=st.integers(0, 63),
)

packet_lists = st.lists(packets, min_size=1, max_size=40)

filters = st.builds(
    FeatureFilter,
    src=st.none() | _small_addr,
    dst=st.none() | _small_addr,
    sport=st.none() | _small_port,
    dport=st.none() | _small_port,
    proto=st.none() | st.sampled_from([PROTO_TCP, PROTO_UDP, PROTO_ICMP]),
    t0=st.none() | st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    t1=st.none() | st.floats(min_value=5.0, max_value=10.0, allow_nan=False),
)


@st.composite
def traces_and_alarms(draw):
    trace = Trace(draw(packet_lists))
    alarms = []
    for _ in range(draw(st.integers(1, 4))):
        t0 = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        t1 = draw(st.floats(min_value=5.0, max_value=11.0, allow_nan=False))
        alarm_filters = tuple(draw(st.lists(filters, max_size=2)))
        flow_keys = set()
        if draw(st.booleans()):
            index = draw(st.integers(0, len(trace) - 1))
            flow_keys.add(uniflow_key(trace[index]))
        if draw(st.booleans()):
            # A key absent from the trace must be silently ignored.
            flow_keys.add(uniflow_key(trace[0])._replace(src=999))
        if not alarm_filters and not flow_keys:
            alarm_filters = (FeatureFilter(src=draw(_small_addr)),)
        alarms.append(
            Alarm(
                detector="t",
                config="t/x",
                t0=t0,
                t1=t1,
                filters=alarm_filters,
                flow_keys=frozenset(flow_keys),
            )
        )
    return trace, alarms


# -- filter masks ------------------------------------------------------


@given(packet_lists, st.lists(filters, min_size=1, max_size=3))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_filter_mask_matches_reference(packet_list, filter_list):
    trace = Trace(packet_list)
    for feature_filter in filter_list:
        mask = feature_filter.mask(trace.table)
        reference = [feature_filter.matches(p) for p in trace]
        assert mask.tolist() == reference
    any_mask = match_mask(filter_list, trace.table)
    assert any_mask.tolist() == [
        match_packet(filter_list, p) for p in trace
    ]


# -- traffic extraction ------------------------------------------------


@given(traces_and_alarms())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_extractor_backends_identical(trace_and_alarms):
    trace, alarms = trace_and_alarms
    for granularity in Granularity:
        fast = TrafficExtractor(trace, granularity, backend="numpy")
        reference = TrafficExtractor(trace, granularity, backend="python")
        fast_sets = fast.extract_all(alarms)
        reference_sets = reference.extract_all(alarms)
        assert fast_sets == reference_sets
        for alarm, traffic in zip(alarms, fast_sets):
            assert fast.extract(alarm) == traffic
            assert fast.packets_of(traffic) == reference.packets_of(traffic)


@given(traces_and_alarms())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_extract_all_codes_feed_same_graph(trace_and_alarms):
    trace, alarms = trace_and_alarms
    extractor = TrafficExtractor(trace, Granularity.UNIFLOW, backend="numpy")
    codes = extractor.extract_all_codes(alarms)
    sets = extractor.extract_all(alarms)
    from_codes = build_similarity_graph(codes, backend="numpy")
    from_sets = build_similarity_graph(sets, backend="python")
    # Ordered equality, not just dict equality: Louvain breaks
    # modularity ties in adjacency iteration order, so backends must
    # agree on edge insertion order for identical community numbering.
    assert _ordered_adjacency(from_codes) == _ordered_adjacency(from_sets)


def _ordered_adjacency(graph):
    return {
        node: list(neighbours.items())
        for node, neighbours in graph.adjacency.items()
    }


# -- flow aggregation --------------------------------------------------


@given(packet_lists)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_trace_flows_match_reference_aggregation(packet_list):
    trace = Trace(packet_list)
    for granularity in (Granularity.UNIFLOW, Granularity.BIFLOW):
        assert trace.flows(granularity) == aggregate_flows(
            trace.packets, granularity
        )


# -- merge / slice composition -----------------------------------------


@given(
    packet_lists,
    packet_lists,
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_slicing_a_merge_equals_merging_slices(list_a, list_b, t_lo, t_hi):
    """``time_slice(merge(A, B)) == merge(time_slice(A), time_slice(B))``.

    The streaming engine relies on this algebra: chunks are merged
    into windows and windows are sliced at hop boundaries, in either
    order.  Compared column-for-column on the numpy backend.
    """
    t0, t1 = min(t_lo, t_hi), max(t_lo, t_hi)
    trace_a, trace_b = Trace(list_a), Trace(list_b)

    merged = merge_traces([trace_a, trace_b])
    window = merged.time_slice(t0, t1)
    sliced_merge = merged.table.take(
        np.arange(window.start, window.stop)
    )

    def slice_one(trace):
        part = trace.time_slice(t0, t1)
        return Trace.from_table(
            trace.table.take(np.arange(part.start, part.stop))
        )

    if len(slice_one(trace_a)) + len(slice_one(trace_b)) == 0:
        assert len(sliced_merge) == 0
        return
    merged_slices = merge_traces(
        [slice_one(trace_a), slice_one(trace_b)]
    ).table
    assert len(sliced_merge) == len(merged_slices)
    for column in COLUMNS:
        assert np.array_equal(
            getattr(sliced_merge, column), getattr(merged_slices, column)
        ), column


# -- detector feature histograms ---------------------------------------


@given(packet_lists, st.integers(2, 8))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_binned_histograms_match_counters(packet_list, n_bins):
    trace = Trace(packet_list)
    t_start = trace.start_time
    span = max(trace.end_time - t_start, 1e-9)
    bin_idx = np.minimum(
        ((trace.table.time - t_start) / span * n_bins).astype(np.int64),
        n_bins - 1,
    )
    for feature in ("src", "dst", "sport", "dport"):
        histogram = binned_value_histogram(
            trace.table, feature, bin_idx, n_bins
        )
        for b in range(n_bins):
            reference = Counter(
                getattr(p, feature)
                for p, in_bin in zip(trace, bin_idx == b)
                if in_bin
            )
            dense = {
                int(histogram.values[c]): int(histogram.counts[b, c])
                for c in range(len(histogram.values))
                if histogram.counts[b, c]
            }
            assert dense == reference


# -- sketch hashing ----------------------------------------------------


@given(
    st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50),
    st.integers(0, 5),
    st.integers(1, 8),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_vectorized_buckets_match_scalar(keys, seed, n_sketches):
    hasher = SketchHasher(n_sketches, seed=seed)
    array = np.array(keys, dtype=np.uint64)
    assert hasher.buckets(array).tolist() == [
        hasher.bucket(k) for k in keys
    ]


@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=60),
    st.integers(0, 3),
    st.integers(1, 4),
    st.integers(1, 4),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_dominant_keys_backends_identical(keys, seed, n_sketches, top):
    hasher = SketchHasher(n_sketches, seed=seed)
    array = np.array(keys, dtype=np.uint64)
    mask = np.ones(len(keys), dtype=bool)
    for sketch in range(n_sketches):
        assert dominant_keys(
            array, mask, hasher, sketch, top=top, backend="numpy"
        ) == dominant_keys(
            array, mask, hasher, sketch, top=top, backend="python"
        )


# -- heuristics --------------------------------------------------------


@given(packet_lists)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_heuristic_labels_identical(packet_list):
    trace = Trace(packet_list)
    table_label = label_packets_table(
        trace.table, np.arange(len(trace), dtype=np.int64)
    )
    assert table_label == label_packets(list(trace))
