"""The packet model.

A :class:`Packet` is the atom of every MAWI trace: a timestamped IP
header summary.  Payloads are never represented — the MAWI archive
strips them, and every algorithm in the paper (detectors, similarity
estimator, heuristics) operates on header fields only.

TCP flag constants use the standard bit layout of the TCP header's
13th octet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# IP protocol numbers (IANA).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

# TCP flags, standard bit positions.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [
    (FIN, "FIN"),
    (SYN, "SYN"),
    (RST, "RST"),
    (PSH, "PSH"),
    (ACK, "ACK"),
    (URG, "URG"),
]

# ICMP types used by the generator and the heuristics.
ICMP_ECHO_REPLY = 0
ICMP_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11


def flag_names(flags: int) -> str:
    """Render a TCP flag byte as e.g. ``"SYN|ACK"`` (``"-"`` if empty).

    >>> flag_names(SYN | ACK)
    'SYN|ACK'
    >>> flag_names(0)
    '-'
    """
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "-"


@dataclass(frozen=True)
class Packet:
    """One captured packet header.

    Attributes
    ----------
    time:
        Capture timestamp in seconds (float, trace-relative or epoch).
    src, dst:
        Source / destination IPv4 addresses as 32-bit integers.
    sport, dport:
        Transport ports; by convention 0 for ICMP (the ICMP type is
        carried in :attr:`icmp_type`).
    proto:
        IP protocol number (1=ICMP, 6=TCP, 17=UDP).
    size:
        IP datagram length in bytes.
    tcp_flags:
        TCP flag byte; 0 for non-TCP packets.
    icmp_type:
        ICMP type; 0 for non-ICMP packets (echo reply never appears
        alone in the synthetic workloads, so the ambiguity is benign).
    """

    time: float
    src: int
    dst: int
    sport: int = 0
    dport: int = 0
    proto: int = PROTO_TCP
    size: int = 64
    tcp_flags: int = 0
    icmp_type: int = field(default=0)

    def __post_init__(self) -> None:
        if self.proto not in (PROTO_ICMP, PROTO_TCP, PROTO_UDP):
            raise ValueError(f"unsupported protocol {self.proto}")
        if not (0 <= self.sport <= 0xFFFF and 0 <= self.dport <= 0xFFFF):
            raise ValueError("port out of range")
        if self.size <= 0:
            raise ValueError("packet size must be positive")

    @property
    def is_tcp(self) -> bool:
        return self.proto == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.proto == PROTO_UDP

    @property
    def is_icmp(self) -> bool:
        return self.proto == PROTO_ICMP

    def has_flags(self, flags: int) -> bool:
        """True if *all* bits in ``flags`` are set on this packet."""
        return self.is_tcp and (self.tcp_flags & flags) == flags

    def reversed(self) -> "Packet":
        """The same packet with endpoints swapped (for biflow tests)."""
        return Packet(
            time=self.time,
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            proto=self.proto,
            size=self.size,
            tcp_flags=self.tcp_flags,
            icmp_type=self.icmp_type,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.net.addresses import ip_to_str

        proto = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}[
            self.proto
        ]
        return (
            f"{self.time:.6f} {proto} "
            f"{ip_to_str(self.src)}:{self.sport} > "
            f"{ip_to_str(self.dst)}:{self.dport} "
            f"len={self.size} flags={flag_names(self.tcp_flags)}"
        )
