"""The memory-mapped columnar label warehouse.

MAWILab's artifact is a *longitudinal* database: years of labeled days
queried across time.  The per-day CSV files of
:class:`~repro.labeling.database.LabelDatabase` pay a full text parse
per query; this module stores the same days as versioned, checksummed
**columnar segments** — the raw arrays of
:class:`~repro.labeling.store.LabelStore` and
:class:`~repro.core.alarm_table.AlarmTable`, including the ragged
detector/annotation/rule blocks and the string name pools — that open
zero-copy via ``np.memmap``.

Layout
------
::

    <root>/
      manifest.json                  # versions, per-file bytes + sha256
      v0001/
        2004-06-01.labels.seg
        2004-06-01.alarms.seg
        ...
      v0002/                         # a recompute under a new config
        ...

Each segment file is ``MWLW`` magic, a little-endian format/u64 header
length, a JSON descriptor (array names, dtypes, lengths, relative
offsets, string pools, metadata), then 64-byte-aligned column blocks.
Segments are published atomically
(:func:`repro.ioutil.write_atomic_bytes`) and the manifest through
:func:`repro.ioutil.write_atomic`, so readers never observe a torn
file; the manifest records every segment's byte size and SHA-256, so a
truncated file is rejected on open (size check) and silent corruption
by :meth:`Warehouse.verify` (hash check).

mmap lifecycle: :meth:`Warehouse.open_labels` caches one read-only
``np.memmap`` per ``(version, date, kind)``; column views slice it
without copying, and :class:`LabelStore` / :class:`AlarmTable`
constructors accept those views as-is (``np.asarray`` is a no-op for
matching dtypes).  :meth:`Warehouse.close` drops the handles; the maps
are read-only, so dropping them is always safe.

Queries (:meth:`Warehouse.query`) push predicates — taxonomy, time
overlap, rule src/dst/sport/dport — down onto the mapped columns via
the paired ``"warehouse_select"`` engine kernels and only render the
matching rows, in the JSON row shape of
:class:`~repro.labeling.database.LiveLabelIndex`.

Delta recompute (:meth:`Warehouse.recompute`): the warehouse
fingerprint digests (archive, ensemble, configuration).  A heuristics-
or combiner-only change keeps the ensemble fingerprint, so Step 1
alarms are reused from the :class:`~repro.runner.cache.AlarmCache` or
the previous version's alarm segments and only Steps 2–4 rerun; the
new labels land in a fresh version directory and the old version stays
readable, with a per-day diff (added / removed / taxonomy-changed
communities) reported.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.alarm_table import ALL_ARRAYS, AlarmTable
from repro.engine import EngineSpec, resolve_engine
from repro.errors import WarehouseError
from repro.ioutil import write_atomic, write_atomic_bytes
from repro.labeling.database import _address_code
from repro.labeling.mawilab import LabelRecord, PipelineResult, labels_to_csv
from repro.labeling.store import (
    LABEL_BOUND_COLUMNS,
    LABEL_COLUMNS,
    LabelStore,
    taxonomy_counts,
)
from repro.labeling.taxonomy import TAXONOMY_ORDER
from repro.net.addresses import ip_to_str

_MAGIC = b"MWLW"
_FORMAT = 1
_ALIGN = 64

_MANIFEST_NAME = "manifest.json"

#: Per-record summary columns spilled next to the label columns so a
#: decoded store round-trips ``CommunitySummary`` exactly.
_SUMMARY_COLUMNS = ("s_rule_degree", "s_rule_support", "s_n_transactions")

#: Flat per-rule columns (``-1`` = wildcard ``None``); ``r_record``
#: maps each rule row back to its owning record for rule-predicate
#: scatter without touching the ragged bounds.
_RULE_COLUMNS = (
    "r_record", "r_src", "r_sport", "r_dst", "r_dport",
    "r_support", "r_count",
)


def warehouse_fingerprint(
    archive_fingerprint: str,
    ensemble_fingerprint: str,
    config_repr: str,
) -> str:
    """Digest of everything a warehouse version depends on.

    The same material (and format) as the archive scheduler's default
    version string, so scheduler-ingested warehouses and
    :meth:`Warehouse.recompute` agree on when outputs are current.
    """
    material = ":".join(
        (archive_fingerprint, ensemble_fingerprint, config_repr)
    )
    return "v" + hashlib.sha256(material.encode()).hexdigest()[:12]


def archive_meta(archive) -> dict:
    """Manifest-storable description of an archive.

    Records the fingerprint plus, for synthetic archives, the
    ``seed`` / ``trace_duration`` needed to regenerate day traces at
    recompute time.
    """
    meta = {"fingerprint": archive.fingerprint()}
    for attr in ("seed", "trace_duration"):
        if hasattr(archive, attr):
            meta[attr] = getattr(archive, attr)
    return meta


# -- segment codec ------------------------------------------------------


def _pad(length: int) -> int:
    return (-length) % _ALIGN


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def encode_segment(
    kind: str,
    arrays: Sequence[tuple[str, np.ndarray]],
    pools: dict[str, Sequence[str]],
    meta: dict,
) -> bytes:
    """Serialize named columns into one segment byte string."""
    descriptors = []
    blobs = []
    offset = 0
    for name, array in arrays:
        array = np.ascontiguousarray(array)
        blob = array.tobytes()
        descriptors.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "length": int(array.shape[0]),
                "offset": offset,
            }
        )
        blobs.append(blob)
        offset += len(blob) + _pad(len(blob))
    header = json.dumps(
        {
            "kind": kind,
            "arrays": descriptors,
            "pools": {name: list(pool) for name, pool in pools.items()},
            "meta": meta,
            "data_bytes": offset,
        },
        sort_keys=True,
    ).encode()
    out = bytearray()
    out += _MAGIC
    out += _FORMAT.to_bytes(4, "little")
    out += len(header).to_bytes(8, "little")
    out += header
    out += b"\x00" * _pad(len(out))
    for blob in blobs:
        out += blob
        out += b"\x00" * _pad(len(blob))
    return bytes(out)


class Segment:
    """One opened segment file: mapped column views + pools + meta."""

    __slots__ = ("path", "kind", "arrays", "pools", "meta")

    def __init__(self, path: Union[str, Path], kind: Optional[str] = None):
        self.path = Path(path)
        try:
            size = os.path.getsize(self.path)
            with open(self.path, "rb") as handle:
                head = handle.read(16)
                if len(head) < 16 or head[:4] != _MAGIC:
                    raise WarehouseError(
                        f"not a warehouse segment: {self.path}"
                    )
                fmt = int.from_bytes(head[4:8], "little")
                if fmt != _FORMAT:
                    raise WarehouseError(
                        f"unsupported segment format {fmt} in {self.path}"
                    )
                header_len = int.from_bytes(head[8:16], "little")
                if 16 + header_len > size:
                    raise WarehouseError(
                        f"truncated segment header: {self.path}"
                    )
                try:
                    header = json.loads(handle.read(header_len))
                except ValueError as exc:
                    raise WarehouseError(
                        f"corrupt segment header: {self.path}: {exc}"
                    ) from exc
        except OSError as exc:
            raise WarehouseError(
                f"unreadable segment {self.path}: {exc}"
            ) from exc
        self.kind = header["kind"]
        if kind is not None and self.kind != kind:
            raise WarehouseError(
                f"segment {self.path} holds {self.kind!r}, wanted {kind!r}"
            )
        self.pools = {
            name: tuple(pool) for name, pool in header["pools"].items()
        }
        self.meta = header["meta"]
        data_start = 16 + header_len + _pad(16 + header_len)
        if data_start + int(header["data_bytes"]) > size:
            raise WarehouseError(f"truncated segment: {self.path}")
        raw = np.memmap(self.path, dtype=np.uint8, mode="r")
        self.arrays = {}
        for descriptor in header["arrays"]:
            dtype = np.dtype(descriptor["dtype"])
            start = data_start + int(descriptor["offset"])
            nbytes = int(descriptor["length"]) * dtype.itemsize
            self.arrays[descriptor["name"]] = raw[
                start : start + nbytes
            ].view(dtype)


def _encode_rule_field(rules, attr: str) -> np.ndarray:
    return np.fromiter(
        (
            -1 if getattr(rule, attr) is None else int(getattr(rule, attr))
            for rule in rules
        ),
        np.int64,
        count=len(rules),
    )


def encode_label_segment(store: LabelStore, meta: dict) -> bytes:
    """Spill a :class:`LabelStore` (summaries included) into bytes."""
    n = len(store)
    rule_bounds = np.zeros(n + 1, dtype=np.int64)
    rules = []
    for i, summary in enumerate(store.summaries):
        day_rules = list(getattr(summary, "rules", ()) or ())
        rule_bounds[i + 1] = rule_bounds[i] + len(day_rules)
        rules.extend(day_rules)
    m = len(rules)
    arrays = [(name, getattr(store, name)) for name in LABEL_COLUMNS]
    arrays += [(name, getattr(store, name)) for name in LABEL_BOUND_COLUMNS]
    arrays += [
        (
            "s_rule_degree",
            np.fromiter(
                (s.rule_degree for s in store.summaries), np.float64, count=n
            ),
        ),
        (
            "s_rule_support",
            np.fromiter(
                (s.rule_support for s in store.summaries), np.float64, count=n
            ),
        ),
        (
            "s_n_transactions",
            np.fromiter(
                (s.n_transactions for s in store.summaries),
                np.int64,
                count=n,
            ),
        ),
        ("rule_bounds", rule_bounds),
        (
            "r_record",
            np.repeat(
                np.arange(n, dtype=np.int64), rule_bounds[1:] - rule_bounds[:-1]
            ),
        ),
        ("r_src", _encode_rule_field(rules, "src")),
        ("r_sport", _encode_rule_field(rules, "sport")),
        ("r_dst", _encode_rule_field(rules, "dst")),
        ("r_dport", _encode_rule_field(rules, "dport")),
        (
            "r_support",
            np.fromiter((r.support for r in rules), np.float64, count=m),
        ),
        (
            "r_count",
            np.fromiter((r.count for r in rules), np.int64, count=m),
        ),
    ]
    pools = {
        "categories": store.categories,
        "details": store.details,
        "detector_names": store.detector_names,
        "annotation_tags": store.annotation_tags,
    }
    return encode_segment("labels", arrays, pools, meta)


def label_store_from_segment(segment: Segment) -> LabelStore:
    """Rebuild a full-fidelity :class:`LabelStore` from mapped columns.

    Numeric columns pass through zero-copy; only the per-record
    ``CommunitySummary`` objects (rules included) are materialized,
    because they are Python objects by definition.
    """
    from repro.rules.itemsets import Rule
    from repro.rules.summarize import CommunitySummary

    arrays = segment.arrays
    n = len(arrays["community_id"])
    rule_bounds = arrays["rule_bounds"]

    def opt(column: str, j: int) -> Optional[int]:
        value = int(arrays[column][j])
        return None if value < 0 else value

    summaries = []
    for i in range(n):
        lo, hi = int(rule_bounds[i]), int(rule_bounds[i + 1])
        summaries.append(
            CommunitySummary(
                rules=[
                    Rule(
                        src=opt("r_src", j),
                        sport=opt("r_sport", j),
                        dst=opt("r_dst", j),
                        dport=opt("r_dport", j),
                        support=float(arrays["r_support"][j]),
                        count=int(arrays["r_count"][j]),
                    )
                    for j in range(lo, hi)
                ],
                rule_degree=float(arrays["s_rule_degree"][i]),
                rule_support=float(arrays["s_rule_support"][i]),
                n_transactions=int(arrays["s_n_transactions"][i]),
            )
        )
    return LabelStore(
        **{name: arrays[name] for name in LABEL_COLUMNS},
        detector_bounds=arrays["detector_bounds"],
        annotation_bounds=arrays["annotation_bounds"],
        categories=segment.pools["categories"],
        details=segment.pools["details"],
        detector_names=segment.pools["detector_names"],
        annotation_tags=segment.pools["annotation_tags"],
        summaries=summaries,
    )


def encode_alarm_segment(table: AlarmTable, meta: dict) -> bytes:
    """Spill an :class:`AlarmTable` into bytes (all 19 arrays + pools)."""
    arrays = [(name, getattr(table, name)) for name in ALL_ARRAYS]
    pools = {"detectors": table.detectors, "configs": table.configs}
    return encode_segment("alarms", arrays, pools, meta)


def alarm_table_from_segment(segment: Segment) -> AlarmTable:
    """Rebuild an :class:`AlarmTable` zero-copy from mapped columns."""
    return AlarmTable(
        *(segment.arrays[name] for name in ALL_ARRAYS),
        detectors=segment.pools["detectors"],
        configs=segment.pools["configs"],
    )


# -- recompute reporting ------------------------------------------------


@dataclass
class DayDiff:
    """Label-set delta of one day between two warehouse versions."""

    date: str
    added: list[int] = field(default_factory=list)
    removed: list[int] = field(default_factory=list)
    taxonomy_changed: list[dict] = field(default_factory=list)
    n_before: int = 0
    n_after: int = 0

    def to_payload(self) -> dict:
        return {
            "date": self.date,
            "added": self.added,
            "removed": self.removed,
            "taxonomy_changed": self.taxonomy_changed,
            "n_before": self.n_before,
            "n_after": self.n_after,
        }


@dataclass
class RecomputeReport:
    """What one :meth:`Warehouse.recompute` pass did."""

    old_version: Optional[str]
    new_version: Optional[str]
    fingerprint: str
    changed: bool
    ensemble_changed: bool = False
    days: list[DayDiff] = field(default_factory=list)
    cache_hits: int = 0
    segment_hits: int = 0
    step1_reruns: int = 0
    elapsed: float = 0.0

    def to_payload(self) -> dict:
        return {
            "old_version": self.old_version,
            "new_version": self.new_version,
            "fingerprint": self.fingerprint,
            "changed": self.changed,
            "ensemble_changed": self.ensemble_changed,
            "cache_hits": self.cache_hits,
            "segment_hits": self.segment_hits,
            "step1_reruns": self.step1_reruns,
            "elapsed": round(self.elapsed, 6),
            "days": [day.to_payload() for day in self.days],
        }


# -- the warehouse ------------------------------------------------------


class Warehouse:
    """Versioned columnar day store rooted at ``root``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._segments: dict[tuple[str, str, str], Segment] = {}
        manifest_path = self.root / _MANIFEST_NAME
        if manifest_path.exists():
            try:
                self._manifest = json.loads(manifest_path.read_text())
            except (OSError, ValueError) as exc:
                raise WarehouseError(
                    f"corrupt warehouse manifest {manifest_path}: {exc}"
                ) from exc
        else:
            self._manifest = {
                "format": _FORMAT,
                "current": None,
                "versions": {},
            }

    # -- manifest ------------------------------------------------------

    def _save_manifest(self) -> None:
        write_atomic(
            self.root / _MANIFEST_NAME,
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n",
        )

    @property
    def current_version(self) -> Optional[str]:
        return self._manifest["current"]

    def versions(self) -> list[str]:
        return sorted(self._manifest["versions"])

    def _version_entry(self, version: Optional[str]) -> tuple[str, dict]:
        version = version or self.current_version
        if version is None:
            raise WarehouseError(f"warehouse {self.root} has no versions")
        try:
            return version, self._manifest["versions"][version]
        except KeyError:
            raise WarehouseError(
                f"unknown warehouse version {version!r}; "
                f"known: {self.versions()}"
            ) from None

    def ensure_version(
        self,
        fingerprint: str,
        *,
        ensemble_fingerprint: Optional[str] = None,
        config: Optional[str] = None,
        archive: Optional[dict] = None,
        activate: bool = True,
    ) -> str:
        """The version id for ``fingerprint``, creating it if new.

        An existing version with the same fingerprint is reused (and
        re-activated when ``activate``); otherwise the next ``vNNNN``
        directory is allocated and recorded in the manifest.
        """
        for version_id, entry in self._manifest["versions"].items():
            if entry["fingerprint"] == fingerprint:
                if activate and self._manifest["current"] != version_id:
                    self._manifest["current"] = version_id
                    self._save_manifest()
                return version_id
        version_id = f"v{len(self._manifest['versions']) + 1:04d}"
        (self.root / version_id).mkdir(parents=True, exist_ok=True)
        self._manifest["versions"][version_id] = {
            "fingerprint": fingerprint,
            "ensemble_fingerprint": ensemble_fingerprint,
            "config": config,
            "archive": archive,
            "days": {},
        }
        if activate or self._manifest["current"] is None:
            self._manifest["current"] = version_id
        self._save_manifest()
        return version_id

    def set_current(self, version: str) -> None:
        version, _ = self._version_entry(version)
        if self._manifest["current"] != version:
            self._manifest["current"] = version
            self._save_manifest()

    # -- writing -------------------------------------------------------

    def store_day(
        self,
        date: str,
        labels: Union[LabelStore, Sequence[LabelRecord]],
        *,
        alarms: Optional[Union[AlarmTable, Sequence]] = None,
        n_alarms: Optional[int] = None,
        version: Optional[str] = None,
    ) -> str:
        """Spill one day's labels (and optionally alarms) to segments.

        Returns the label segment path.  Segment files are published
        atomically and the manifest (bytes + SHA-256 per file) last, so
        a crash mid-store leaves the previous manifest pointing only at
        complete files.
        """
        version, entry = self._version_entry(version)
        store = (
            labels
            if isinstance(labels, LabelStore)
            else LabelStore.from_records(list(labels))
        )
        table: Optional[AlarmTable] = None
        if alarms is not None:
            table = (
                alarms
                if isinstance(alarms, AlarmTable)
                else AlarmTable.from_alarms(list(alarms))
            )
        if n_alarms is None:
            n_alarms = (
                len(table)
                if table is not None
                else int(store.n_alarms.sum())
            )
        directory = self.root / version
        directory.mkdir(parents=True, exist_ok=True)

        def publish(kind: str, payload: bytes, records: int) -> dict:
            path = directory / f"{date}.{kind}.seg"
            write_atomic_bytes(path, payload)
            self._segments.pop((version, date, kind), None)
            return {
                "file": f"{version}/{path.name}",
                "bytes": len(payload),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "records": records,
            }

        meta = {"date": date, "version": version}
        day_entry = {
            "labels": publish(
                "labels", encode_label_segment(store, meta), len(store)
            ),
            "alarms": (
                publish("alarms", encode_alarm_segment(table, meta), len(table))
                if table is not None
                else None
            ),
            "counts": {
                "n_communities": len(store),
                **{
                    f"n_{name}": count
                    for name, count in taxonomy_counts(store).items()
                },
                "n_alarms": int(n_alarms),
            },
        }
        entry["days"][date] = day_entry
        self._save_manifest()
        return str(directory / f"{date}.labels.seg")

    def store_result(
        self,
        date: str,
        result: PipelineResult,
        version: Optional[str] = None,
    ) -> str:
        """Spill one pipeline result (labels + Step 1 alarms)."""
        return self.store_day(
            date,
            result.label_store(),
            alarms=result.alarms,
            n_alarms=len(result.alarms),
            version=version,
        )

    # -- reading -------------------------------------------------------

    def dates(self, version: Optional[str] = None) -> list[str]:
        _, entry = self._version_entry(version)
        return sorted(entry["days"])

    def has_day(self, date: str, version: Optional[str] = None) -> bool:
        if version is None and self.current_version is None:
            return False
        _, entry = self._version_entry(version)
        return date in entry["days"]

    def _segment(
        self,
        date: str,
        kind: str,
        version: Optional[str] = None,
        verify: bool = False,
    ) -> Segment:
        version, entry = self._version_entry(version)
        try:
            file_entry = entry["days"][date][kind]
        except KeyError:
            raise WarehouseError(
                f"no stored {kind} for {date} in version {version}"
            ) from None
        if file_entry is None:
            raise WarehouseError(
                f"day {date} in version {version} has no {kind} segment"
            )
        path = self.root / file_entry["file"]
        try:
            size = os.path.getsize(path)
        except OSError as exc:
            raise WarehouseError(
                f"missing segment {path}: {exc}"
            ) from exc
        if size != file_entry["bytes"]:
            raise WarehouseError(
                f"segment {path} is {size} bytes, manifest says "
                f"{file_entry['bytes']} — truncated or stale"
            )
        if verify and _sha256_file(path) != file_entry["sha256"]:
            raise WarehouseError(
                f"segment {path} fails its manifest checksum — "
                "stale or corrupt"
            )
        key = (version, date, kind)
        segment = self._segments.get(key)
        if segment is None:
            segment = self._segments[key] = Segment(path, kind=kind)
        return segment

    def open_labels(
        self,
        date: str,
        version: Optional[str] = None,
        verify: bool = False,
    ) -> Segment:
        """The mapped label segment of one day (cached handle)."""
        return self._segment(date, "labels", version, verify=verify)

    def label_store(
        self, date: str, version: Optional[str] = None
    ) -> LabelStore:
        return label_store_from_segment(self.open_labels(date, version))

    def alarm_table(
        self, date: str, version: Optional[str] = None
    ) -> AlarmTable:
        return alarm_table_from_segment(
            self._segment(date, "alarms", version)
        )

    def export_csv(self, date: str, version: Optional[str] = None) -> str:
        """The day's labels as CSV — byte-identical to ``repro label``."""
        return labels_to_csv(self.label_store(date, version).to_records())

    def close(self) -> None:
        """Drop every cached mmap handle (maps are read-only)."""
        self._segments.clear()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries -------------------------------------------------------

    def query(
        self,
        date: Optional[str] = None,
        date_from: Optional[str] = None,
        date_to: Optional[str] = None,
        taxonomy: Optional[str] = None,
        src: Optional[Union[str, int]] = None,
        dst: Optional[Union[str, int]] = None,
        sport: Optional[int] = None,
        dport: Optional[int] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        limit: Optional[int] = None,
        version: Optional[str] = None,
        engine: EngineSpec = None,
    ) -> list[dict]:
        """Cross-day label rows matching every given predicate.

        Scans the mapped columns of each day in date order through the
        ``"warehouse_select"`` kernel and renders only the selected
        rows (the :class:`LiveLabelIndex` JSON row shape).  ``date``
        restricts to one day; otherwise ``date_from`` / ``date_to``
        bound the inclusive ISO date range.
        """
        engine = resolve_engine(engine, what="warehouse")
        taxonomy_code = None
        if taxonomy is not None:
            if taxonomy not in TAXONOMY_ORDER:
                raise WarehouseError(
                    f"unknown taxonomy {taxonomy!r}; "
                    f"known: {list(TAXONOMY_ORDER)}"
                )
            taxonomy_code = TAXONOMY_ORDER.index(taxonomy)
        if date is not None:
            dates = [date] if self.has_day(date, version) else []
        else:
            dates = [
                d
                for d in self.dates(version)
                if (date_from is None or d >= date_from)
                and (date_to is None or d <= date_to)
            ]
        select = engine.kernel("warehouse_select")
        rows: list[dict] = []
        for day in dates:
            segment = self.open_labels(day, version)
            arrays = segment.arrays
            columns = {
                "taxonomy_code": arrays["taxonomy_code"],
                "t0": arrays["t0"],
                "t1": arrays["t1"],
                "rule_record": arrays["r_record"],
                "rule_src": arrays["r_src"],
                "rule_dst": arrays["r_dst"],
                "rule_sport": arrays["r_sport"],
                "rule_dport": arrays["r_dport"],
            }
            selected = select(
                columns,
                taxonomy_code=taxonomy_code,
                src=None if src is None else _address_code(src),
                dst=None if dst is None else _address_code(dst),
                sport=None if sport is None else int(sport),
                dport=None if dport is None else int(dport),
                t0=t0,
                t1=t1,
            )
            for i in selected:
                rows.append(_segment_row(segment, day, int(i)))
                if limit is not None and len(rows) >= limit:
                    return rows
        return rows

    def stats(self, version: Optional[str] = None) -> dict:
        """Per-day and total counts, from the manifest alone."""
        version, entry = self._version_entry(version)
        days = {
            date: dict(day["counts"])
            for date, day in sorted(entry["days"].items())
        }
        totals: dict[str, int] = {}
        segment_bytes = 0
        for date, day in entry["days"].items():
            for name, count in day["counts"].items():
                totals[name] = totals.get(name, 0) + count
            for kind in ("labels", "alarms"):
                if day[kind] is not None:
                    segment_bytes += day[kind]["bytes"]
        return {
            "root": str(self.root),
            "version": version,
            "fingerprint": entry["fingerprint"],
            "n_days": len(days),
            "segment_bytes": segment_bytes,
            "totals": totals,
            "days": days,
        }

    def verify(self, version: Optional[str] = None) -> dict:
        """Hash-check every segment of one version against the manifest.

        Raises :class:`~repro.errors.WarehouseError` on the first
        truncated or corrupt file; returns the counts checked.
        """
        version, entry = self._version_entry(version)
        checked = 0
        for date in sorted(entry["days"]):
            for kind in ("labels", "alarms"):
                if entry["days"][date][kind] is not None:
                    self._segment(date, kind, version, verify=True)
                    checked += 1
        return {"version": version, "days": len(entry["days"]), "segments": checked}

    # -- delta recompute ------------------------------------------------

    def _reconstruct_archive(self, meta: Optional[dict]):
        if not meta or "seed" not in meta or "trace_duration" not in meta:
            raise WarehouseError(
                "the stored version carries no reconstructible archive "
                "metadata; pass archive= to recompute"
            )
        from repro.mawi.archive import SyntheticArchive

        archive = SyntheticArchive(
            seed=meta["seed"], trace_duration=meta["trace_duration"]
        )
        if archive.fingerprint() != meta["fingerprint"]:
            raise WarehouseError(
                "reconstructed archive fingerprint does not match the "
                "manifest; pass archive= to recompute"
            )
        return archive

    def recompute(
        self,
        config=None,
        *,
        archive=None,
        cache_dir: Optional[str] = None,
        dates: Optional[Sequence[str]] = None,
    ) -> RecomputeReport:
        """Relabel every ingested day under ``config``, reusing Step 1.

        Fingerprints (archive, ensemble, config); a no-op when the
        fingerprint matches the current version.  Otherwise a new
        version is written: days whose Step 1 alarms are available —
        from the :class:`~repro.runner.cache.AlarmCache` or, when the
        ensemble fingerprint is unchanged, the previous version's alarm
        segments — rerun Steps 2–4 only; the rest rerun the full
        pipeline.  The current pointer flips to the new version last,
        so a crash mid-recompute leaves the old version active.
        """
        import time as _time

        from repro.runner.cache import AlarmCache
        from repro.runner.config import PipelineConfig

        started = _time.perf_counter()
        config = config or PipelineConfig()
        old_version, old_entry = self._version_entry(None)
        if archive is None:
            archive = self._reconstruct_archive(old_entry.get("archive"))
        pipeline = config.build_pipeline()
        ensemble_fp = pipeline.ensemble_fingerprint()
        fingerprint = warehouse_fingerprint(
            archive.fingerprint(), ensemble_fp, repr(config)
        )
        if fingerprint == old_entry["fingerprint"]:
            return RecomputeReport(
                old_version=old_version,
                new_version=old_version,
                fingerprint=fingerprint,
                changed=False,
                elapsed=_time.perf_counter() - started,
            )
        ensemble_changed = (
            old_entry.get("ensemble_fingerprint") != ensemble_fp
        )
        cache = AlarmCache(cache_dir) if cache_dir else None
        new_version = self.ensure_version(
            fingerprint,
            ensemble_fingerprint=ensemble_fp,
            config=repr(config),
            archive=archive_meta(archive),
            activate=False,
        )
        report = RecomputeReport(
            old_version=old_version,
            new_version=new_version,
            fingerprint=fingerprint,
            changed=True,
            ensemble_changed=ensemble_changed,
        )
        for date in dates or self.dates(old_version):
            trace = archive.day(date).trace
            alarms = None
            key = AlarmCache.make_key(
                archive.fingerprint(), date, ensemble_fp
            )
            if cache is not None:
                alarms = cache.get(key)
                if alarms is not None:
                    report.cache_hits += 1
            if (
                alarms is None
                and not ensemble_changed
                and old_entry["days"].get(date, {}).get("alarms") is not None
            ):
                alarms = self.alarm_table(date, version=old_version)
                report.segment_hits += 1
                if cache is not None:
                    cache.put(key, alarms)
            if alarms is None:
                result = pipeline.run(trace)
                report.step1_reruns += 1
                if cache is not None:
                    cache.put(key, result.alarms)
            else:
                result = pipeline.run_with_alarms(trace, alarms)
            self.store_result(date, result, version=new_version)
            report.days.append(
                self._diff_day(date, old_version, result.label_store())
            )
        self.set_current(new_version)
        report.elapsed = _time.perf_counter() - started
        return report

    def _diff_day(
        self, date: str, old_version: str, new_store: LabelStore
    ) -> DayDiff:
        """Community-id / taxonomy delta against the previous version."""
        old_map: dict[int, int] = {}
        if self.has_day(date, old_version):
            arrays = self.open_labels(date, old_version).arrays
            old_map = {
                int(cid): int(tax)
                for cid, tax in zip(
                    arrays["community_id"], arrays["taxonomy_code"]
                )
            }
        new_map = {
            int(cid): int(tax)
            for cid, tax in zip(
                new_store.community_id, new_store.taxonomy_code
            )
        }
        return DayDiff(
            date=date,
            added=sorted(set(new_map) - set(old_map)),
            removed=sorted(set(old_map) - set(new_map)),
            taxonomy_changed=[
                {
                    "community": cid,
                    "old": TAXONOMY_ORDER[old_map[cid]],
                    "new": TAXONOMY_ORDER[new_map[cid]],
                }
                for cid in sorted(set(old_map) & set(new_map))
                if old_map[cid] != new_map[cid]
            ],
            n_before=len(old_map),
            n_after=len(new_map),
        )


def _segment_row(segment: Segment, date: str, index: int) -> dict:
    """Render one selected row straight from mapped columns.

    Shape-identical to
    :func:`repro.labeling.database._label_row` — the serve layer
    answers from either source interchangeably — but built from the
    columns, never through a :class:`LabelRecord`.
    """
    arrays = segment.arrays
    pools = segment.pools
    lo = int(arrays["detector_bounds"][index])
    hi = int(arrays["detector_bounds"][index + 1])
    rlo = int(arrays["rule_bounds"][index])
    rhi = int(arrays["rule_bounds"][index + 1])

    def opt_addr(column: str, j: int) -> Optional[str]:
        value = int(arrays[column][j])
        return None if value < 0 else ip_to_str(value)

    def opt_port(column: str, j: int) -> Optional[int]:
        value = int(arrays[column][j])
        return None if value < 0 else value

    return {
        "date": date,
        "community": int(arrays["community_id"][index]),
        "taxonomy": TAXONOMY_ORDER[int(arrays["taxonomy_code"][index])],
        "heuristic_category": pools["categories"][
            int(arrays["category_code"][index])
        ],
        "heuristic_detail": pools["details"][
            int(arrays["detail_code"][index])
        ],
        "t0": float(arrays["t0"][index]),
        "t1": float(arrays["t1"][index]),
        "n_alarms": int(arrays["n_alarms"][index]),
        "detectors": list(pools["detector_names"][lo:hi]),
        "rules": [
            {
                "src": opt_addr("r_src", j),
                "sport": opt_port("r_sport", j),
                "dst": opt_addr("r_dst", j),
                "dport": opt_port("r_dport", j),
                "support": float(arrays["r_support"][j]),
            }
            for j in range(rlo, rhi)
        ],
    }
