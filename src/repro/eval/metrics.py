"""Attack ratio and distribution helpers (paper Section 4.2.1).

The *attack ratio* of a set of communities is the fraction labeled
"Attack" by the Table-1 heuristics.  A good combination strategy
*accepts* communities with a high attack ratio and *rejects*
communities with a low one; the contrast between the two is the
paper's model-free quality signal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.labeling.heuristics import CATEGORY_ATTACK, HeuristicLabel


def attack_ratio(heuristic_labels: Sequence[HeuristicLabel]) -> float:
    """Fraction of communities labeled "Attack".

    Returns 0.0 for an empty set (no communities, nothing attacked).
    """
    if not heuristic_labels:
        return 0.0
    attacks = sum(
        1 for label in heuristic_labels if label.category == CATEGORY_ATTACK
    )
    return attacks / len(heuristic_labels)


def attack_ratio_by_class(
    heuristic_labels: Sequence[HeuristicLabel],
    accepted_flags: Sequence[bool],
) -> tuple[float, float]:
    """Attack ratios of the (accepted, rejected) community classes."""
    if len(heuristic_labels) != len(accepted_flags):
        raise ValueError("labels/flags length mismatch")
    accepted = [l for l, a in zip(heuristic_labels, accepted_flags) if a]
    rejected = [l for l, a in zip(heuristic_labels, accepted_flags) if not a]
    return attack_ratio(accepted), attack_ratio(rejected)


def histogram_pdf(
    values: Sequence[float],
    bins: int = 10,
    value_range: tuple[float, float] = (0.0, 1.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Probability density over fixed bins (as in Figs. 6 and 10).

    Returns (bin_centers, density); density integrates to 1 over the
    range when values exist, and is all-zero otherwise.
    """
    values = np.asarray(list(values), dtype=float)
    edges = np.linspace(value_range[0], value_range[1], bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    if values.size == 0:
        return centers, np.zeros(bins)
    density, _ = np.histogram(values, bins=edges, density=True)
    return centers, density


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF points (as in Fig. 3).

    Returns (sorted values, cumulative probability at each).
    """
    values = np.asarray(sorted(values), dtype=float)
    if values.size == 0:
        return values, values
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def quantile_summary(values: Sequence[float]) -> dict[str, float]:
    """min/median/mean/p90/max summary used in text reports."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "min": float(values.min()),
        "median": float(np.median(values)),
        "mean": float(values.mean()),
        "p90": float(np.percentile(values, 90)),
        "max": float(values.max()),
    }
