#!/usr/bin/env python3
"""Compare combination strategies on the same communities.

Runs average / minimum / maximum / majority / SCANN over one archive
day's communities and shows how each classifies them — plus the
Condorcet curve explaining why combining helps at all.

Run:  python examples/combiner_comparison.py
"""

from repro.core import (
    AverageStrategy,
    MaximumStrategy,
    MinimumStrategy,
    SCANNStrategy,
    condorcet_probability,
)
from repro.core.majority import MajorityVoteStrategy
from repro.eval.metrics import attack_ratio_by_class
from repro.labeling import MAWILabPipeline
from repro.labeling.heuristics import label_community
from repro.mawi import SyntheticArchive


def main() -> None:
    archive = SyntheticArchive(seed=2010, trace_duration=30.0)
    day = archive.day("2005-06-01")
    pipeline = MAWILabPipeline()
    result = pipeline.run(day.trace)
    community_set = result.community_set
    heuristics = [
        label_community(c, community_set.extractor)
        for c in community_set.communities
    ]
    print(
        f"{day.date}: {len(community_set.communities)} communities "
        f"({community_set.n_single} singles)\n"
    )

    strategies = [
        AverageStrategy(),
        MinimumStrategy(),
        MaximumStrategy(),
        MajorityVoteStrategy(),
        SCANNStrategy(),
    ]
    print(
        f"{'strategy':10s} {'accepted':>8s} {'rejected':>8s} "
        f"{'acc.attack':>10s} {'rej.attack':>10s}"
    )
    print("-" * 52)
    for strategy in strategies:
        decisions = strategy.classify(community_set, pipeline.config_names)
        accepted_flags = [d.accepted for d in decisions]
        acc, rej = attack_ratio_by_class(heuristics, accepted_flags)
        print(
            f"{strategy.name:10s} {sum(accepted_flags):8d} "
            f"{len(decisions) - sum(accepted_flags):8d} "
            f"{acc:10.2f} {rej:10.2f}"
        )

    print(
        "\nThe pessimistic 'minimum' accepts almost nothing (clean but\n"
        "blind); the optimistic 'maximum' accepts almost everything\n"
        "(complete but noisy); SCANN balances both by factoring the vote\n"
        "table with correspondence analysis.\n"
    )

    print("Why combining helps — the Condorcet Jury Theorem, P_maj(L):")
    print(f"{'L':>4s} " + " ".join(f"p={p:.1f}" for p in (0.4, 0.6, 0.8)))
    for n in (1, 3, 5, 9, 15):
        values = " ".join(
            f"{condorcet_probability(n, p):5.3f}" for p in (0.4, 0.6, 0.8)
        )
        print(f"{n:>4d} {values}")


if __name__ == "__main__":
    main()
