"""Unit tests for repro.net.pcap (round trips and error handling)."""

import io
import struct

import pytest

from repro.errors import PcapError
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, SYN
from repro.net.pcap import read_pcap, write_pcap
from repro.net.trace import Trace
from tests.conftest import make_packet


def _round_trip(trace: Trace) -> Trace:
    buffer = io.BytesIO()
    write_pcap(trace, buffer)
    buffer.seek(0)
    return read_pcap(buffer)


class TestRoundTrip:
    def test_tcp_fields_preserved(self):
        original = Trace(
            [make_packet(time=1.25, sport=1234, dport=80, tcp_flags=SYN, size=60)]
        )
        result = _round_trip(original)
        assert len(result) == 1
        p = result[0]
        assert p.proto == PROTO_TCP
        assert (p.sport, p.dport) == (1234, 80)
        assert p.tcp_flags == SYN
        assert p.size == 60
        assert p.time == pytest.approx(1.25, abs=1e-5)

    def test_udp_and_icmp(self):
        original = Trace(
            [
                make_packet(time=0.0, proto=PROTO_UDP, sport=5353, dport=53),
                make_packet(
                    time=1.0, proto=PROTO_ICMP, sport=0, dport=0, icmp_type=8
                ),
            ]
        )
        result = _round_trip(original)
        protos = sorted(p.proto for p in result)
        assert protos == [PROTO_ICMP, PROTO_UDP]
        icmp = next(p for p in result if p.is_icmp)
        assert icmp.icmp_type == 8

    def test_addresses_preserved(self):
        original = Trace([make_packet(src=0xC0000201, dst=0x08080808)])
        result = _round_trip(original)
        assert result[0].src == 0xC0000201
        assert result[0].dst == 0x08080808

    def test_many_packets(self, tiny_trace):
        result = _round_trip(tiny_trace)
        assert len(result) == len(tiny_trace)
        assert [p.time for p in result] == pytest.approx(
            [p.time for p in tiny_trace], abs=1e-5
        )

    def test_write_returns_stats(self, tiny_trace):
        buffer = io.BytesIO()
        stats = write_pcap(tiny_trace, buffer)
        assert stats.packets == len(tiny_trace)


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\x00" * 10))

    def test_bad_magic(self):
        data = struct.pack("<IHHiIII", 0xDEADBEEF, 2, 4, 0, 0, 65535, 101)
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(data))

    def test_unsupported_linktype(self):
        data = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 42)
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(data))

    def test_truncated_record(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack("<IIII", 0, 0, 100, 100)  # promises 100 bytes
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(header + record + b"\x00" * 10))

    def test_non_ip_packets_skipped(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        body = b"\x60" + b"\x00" * 19  # IPv6 version nibble
        record = struct.pack("<IIII", 0, 0, len(body), len(body))
        trace = read_pcap(io.BytesIO(header + record + body))
        assert len(trace) == 0

    def test_file_path_round_trip(self, tmp_path, tiny_trace):
        path = str(tmp_path / "trace.pcap")
        write_pcap(tiny_trace, path)
        result = read_pcap(path)
        assert len(result) == len(tiny_trace)
