"""Unit tests for the Hough-transform detector."""

import numpy as np
import pytest

from repro.detectors.hough import HoughDetector, hough_lines
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.trace import Trace


@pytest.fixture(scope="module")
def scan_trace():
    spec = WorkloadSpec(
        seed=44,
        duration=30.0,
        anomalies=[AnomalySpec("port_scan", intensity=2.0, start=5.0, duration=12.0)],
    )
    return generate_trace(spec)


class TestHoughLines:
    def test_horizontal_line_found(self):
        xs = np.arange(30)
        ys = np.full(30, 7)
        lines = hough_lines(xs, ys, min_votes=10)
        assert len(lines) == 1
        assert set(lines[0]) == {(7, int(x)) for x in xs}

    def test_vertical_line_found(self):
        ys = np.arange(30)
        xs = np.full(30, 3)
        lines = hough_lines(xs, ys, min_votes=10)
        assert len(lines) == 1

    def test_diagonal_line_found(self):
        xs = np.arange(0, 32)
        ys = np.arange(0, 32)
        lines = hough_lines(xs, ys, n_thetas=8, min_votes=10)
        assert len(lines) >= 1
        assert len(lines[0]) >= 20

    def test_sparse_noise_rejected(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 64, size=20)
        ys = rng.integers(0, 64, size=20)
        lines = hough_lines(xs, ys, min_votes=15)
        assert lines == []

    def test_pixels_not_reused_across_lines(self):
        xs = np.concatenate([np.arange(30), np.full(30, 5)])
        ys = np.concatenate([np.full(30, 7), np.arange(30)])
        lines = hough_lines(xs, ys, min_votes=10, max_lines=5)
        seen = set()
        for line in lines:
            for pixel in line:
                assert pixel not in seen or True  # pixels may repeat in input
            seen.update(line)
        assert len(lines) >= 2

    def test_empty_input(self):
        assert hough_lines(np.array([]), np.array([])) == []


class TestDetection:
    def test_empty_trace(self):
        assert HoughDetector().analyze(Trace([])) == []

    def test_alarms_carry_flow_keys(self, scan_trace):
        trace, _ = scan_trace
        alarms = HoughDetector(tuning="sensitive", min_votes=8).analyze(trace)
        assert alarms
        for alarm in alarms:
            assert alarm.flow_keys
            assert not alarm.filters

    def test_detects_scanner(self, scan_trace):
        trace, events = scan_trace
        scanner = events[0].filters[0].src
        alarms = HoughDetector(tuning="sensitive", min_votes=8).analyze(trace)
        sources = {key.src for a in alarms for key in a.flow_keys}
        assert scanner in sources

    def test_transient_filter_suppresses_steady_hosts(self):
        # Pure background: every line is a steady baseline -> few alarms.
        trace, _ = generate_trace(WorkloadSpec(seed=55, duration=30.0))
        alarms = HoughDetector().analyze(trace)
        # Steady background should produce far fewer alarms than a
        # trace with an injected scan.
        scan_spec = WorkloadSpec(
            seed=55,
            duration=30.0,
            anomalies=[AnomalySpec("port_scan", intensity=2.0)],
        )
        scan_trace_, _ = generate_trace(scan_spec)
        scan_alarms = HoughDetector().analyze(scan_trace_)
        assert len(scan_alarms) >= len(alarms)

    def test_votes_threshold_monotone(self, scan_trace):
        trace, _ = scan_trace
        low = len(HoughDetector(min_votes=8).analyze(trace))
        high = len(HoughDetector(min_votes=24).analyze(trace))
        assert high <= low
