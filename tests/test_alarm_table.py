"""Columnar alarm/label storage: round-trips, slicing algebra, parity.

The satellite properties:

* ``AlarmTable.from_alarms(alarms).to_alarms() == alarms`` for any
  alarm list (wildcard filters, flow-key sets, scores);
* ``concat(slice(a), slice(b))`` is the identity on any split point;
* the pipeline labels identically from the object list and the table
  on both engines (the tentpole's byte-identical anchor);
* ``LabelStore`` round-trips records exactly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.alarm_table import AlarmTable
from repro.detectors.base import Alarm
from repro.net.filters import FeatureFilter
from repro.net.flow import FlowKey
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP

# -- strategies -------------------------------------------------------

_opt_addr = st.none() | st.integers(0, 2**32 - 1)
_opt_port = st.none() | st.integers(0, 2**16 - 1)
_protos = st.sampled_from([PROTO_TCP, PROTO_UDP, PROTO_ICMP])

filters = st.builds(
    FeatureFilter,
    src=_opt_addr,
    dst=_opt_addr,
    sport=_opt_port,
    dport=_opt_port,
    proto=st.none() | _protos,
    t0=st.none() | st.floats(0.0, 5.0, allow_nan=False),
    t1=st.none() | st.floats(5.0, 10.0, allow_nan=False),
)

flow_keys = st.builds(
    FlowKey,
    src=st.integers(0, 2**32 - 1),
    sport=st.integers(0, 2**16 - 1),
    dst=st.integers(0, 2**32 - 1),
    dport=st.integers(0, 2**16 - 1),
    proto=_protos,
)


@st.composite
def alarms_strategy(draw):
    detector = draw(st.sampled_from(["pca", "gamma", "hough", "kl"]))
    tuning = draw(st.sampled_from(["optimal", "sensitive", "conservative"]))
    t0 = draw(st.floats(0.0, 5.0, allow_nan=False))
    t1 = draw(st.floats(5.0, 10.0, allow_nan=False))
    alarm_filters = tuple(draw(st.lists(filters, max_size=3)))
    keys = frozenset(draw(st.lists(flow_keys, max_size=4)))
    if not alarm_filters and not keys:
        alarm_filters = (FeatureFilter(src=draw(st.integers(0, 10))),)
    return Alarm(
        detector=detector,
        config=f"{detector}/{tuning}",
        t0=t0,
        t1=t1,
        filters=alarm_filters,
        flow_keys=keys,
        score=draw(st.floats(-10.0, 10.0, allow_nan=False)),
    )


alarm_lists = st.lists(alarms_strategy(), max_size=25)

_SETTINGS = settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


# -- AlarmTable <-> list round-trip ------------------------------------


@pytest.mark.parametrize("engine", ["numpy", "python"])
@given(alarm_lists)
@_SETTINGS
def test_from_alarms_to_alarms_round_trips(engine, alarm_list):
    table = AlarmTable.from_alarms(alarm_list, engine=engine)
    assert len(table) == len(alarm_list)
    assert table.to_alarms() == alarm_list


@given(alarm_lists)
@_SETTINGS
def test_round_trip_survives_pickling(alarm_list):
    """A pickled table (the cache / pool-pipe format) rebuilds views
    equal to the source objects, through cold caches."""
    table = pickle.loads(
        pickle.dumps(AlarmTable.from_alarms(alarm_list))
    )
    assert table.to_alarms() == alarm_list
    assert table == AlarmTable.from_alarms(alarm_list)


@given(alarm_lists)
@_SETTINGS
def test_engines_encode_identically(alarm_list):
    assert AlarmTable.from_alarms(
        alarm_list, engine="numpy"
    ) == AlarmTable.from_alarms(alarm_list, engine="python")


# -- slicing algebra ----------------------------------------------------


@given(alarm_lists, st.integers(0, 25))
@_SETTINGS
def test_concat_of_slices_is_identity(alarm_list, raw_split):
    split = min(raw_split, len(alarm_list))
    table = AlarmTable.from_alarms(alarm_list)
    head = table.take(np.arange(0, split))
    tail = table.take(np.arange(split, len(table)))
    rebuilt = AlarmTable.concatenate([head, tail])
    assert rebuilt.to_alarms() == alarm_list
    # Cold-cache equality too: codes, bounds and encoded designations
    # must all survive, not just the views.
    assert pickle.loads(pickle.dumps(rebuilt)).to_alarms() == alarm_list


@given(alarm_lists, st.data())
@_SETTINGS
def test_take_matches_list_indexing(alarm_list, data):
    table = AlarmTable.from_alarms(alarm_list)
    rows = data.draw(
        st.lists(
            st.integers(0, max(len(alarm_list) - 1, 0)), max_size=12
        )
        if alarm_list
        else st.just([])
    )
    subset = table.take(np.array(rows, dtype=np.int64))
    assert subset.to_alarms() == [alarm_list[i] for i in rows]


@given(alarm_lists)
@_SETTINGS
def test_boolean_mask_take(alarm_list):
    table = AlarmTable.from_alarms(alarm_list)
    mask = table.t1 <= 7.5
    survivors = table.take(~mask)
    assert survivors.to_alarms() == [
        a for a in alarm_list if not a.t1 <= 7.5
    ]


def test_empty_table():
    table = AlarmTable.empty()
    assert len(table) == 0
    assert table.to_alarms() == []
    assert AlarmTable.concatenate([]) == table
    assert table.take(np.empty(0, dtype=np.int64)).to_alarms() == []


def test_code_columns_group_by_name():
    alarms = [
        Alarm("pca", "pca/a", 0.0, 1.0, (FeatureFilter(src=1),)),
        Alarm("kl", "kl/a", 0.0, 1.0, (FeatureFilter(src=2),)),
        Alarm("pca", "pca/a", 1.0, 2.0, (FeatureFilter(src=3),)),
    ]
    table = AlarmTable.from_alarms(alarms)
    assert table.detectors == ("pca", "kl")
    assert table.configs == ("pca/a", "kl/a")
    assert table.det_code.tolist() == [0, 1, 0]
    assert table.config_code.tolist() == [0, 1, 0]
    assert table.config_names_at([0, 2]) == {"pca/a"}
    assert table.detector_names_at([0, 1]) == {"pca", "kl"}


# -- pipeline parity: list path vs table path ---------------------------


@pytest.fixture(scope="module")
def archive_day():
    from repro.mawi.archive import SyntheticArchive

    return SyntheticArchive(seed=11, trace_duration=8.0).day("2005-03-01")


@pytest.mark.parametrize("engine", ["numpy", "python"])
def test_pipeline_labels_identically_from_list_and_table(archive_day, engine):
    from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv

    pipeline = MAWILabPipeline(engine=engine)
    trace = archive_day.trace
    alarm_list = pipeline.detect(trace)
    table = pipeline.detect_table(trace)
    assert table.to_alarms() == alarm_list
    from_list = pipeline.run_with_alarms(trace, alarm_list)
    from_table = pipeline.run_with_alarms(trace, table)
    assert labels_to_csv(from_list.labels) == labels_to_csv(
        from_table.labels
    )


# -- LabelStore ---------------------------------------------------------


def test_label_store_round_trips_records(archive_day):
    from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv
    from repro.labeling.store import LabelStore, taxonomy_counts

    result = MAWILabPipeline().run(archive_day.trace)
    store = LabelStore.from_records(result.labels)
    assert store.to_records() == result.labels
    assert labels_to_csv(store) == labels_to_csv(result.labels)
    # Cold caches (the pickled store) materialize equal records too.
    clone = pickle.loads(pickle.dumps(store))
    assert clone.to_records() == result.labels
    counts = taxonomy_counts(store)
    assert counts["anomalous"] == len(result.anomalous())
    assert counts["suspicious"] == len(result.suspicious())
    assert counts["notice"] == len(result.notice())


def test_label_store_take_is_a_column_gather(archive_day):
    from repro.labeling.mawilab import MAWILabPipeline
    from repro.labeling.store import LabelStore

    result = MAWILabPipeline().run(archive_day.trace)
    store = LabelStore.from_records(result.labels)
    rows = [i for i in range(len(store)) if i % 2 == 0][::-1]
    subset = store.take(np.array(rows, dtype=np.int64))
    assert subset.to_records() == [result.labels[i] for i in rows]
    mask = store.taxonomy_code == 0
    assert store.take(mask).to_records() == [
        r for r in result.labels if r.taxonomy == "anomalous"
    ]


def test_label_store_with_columns_overrides(archive_day):
    from repro.labeling.mawilab import MAWILabPipeline
    from repro.labeling.store import LabelStore

    result = MAWILabPipeline().run(archive_day.trace)
    store = LabelStore.from_records(result.labels)
    renumbered = store.with_columns(
        community_id=np.arange(len(store)) + 100
    )
    assert [r.community_id for r in renumbered] == [
        i + 100 for i in range(len(store))
    ]
    # Everything else is untouched.
    assert [r.taxonomy for r in renumbered] == [
        r.taxonomy for r in result.labels
    ]
    with pytest.raises(KeyError):
        store.with_columns(no_such_column=np.arange(len(store)))
