"""Picklable pipeline configuration.

Pool workers cannot receive a live :class:`MAWILabPipeline` (strategy
objects and detector instances are cheap to rebuild but awkward to
ship), so batch tasks carry this frozen description instead and each
worker materializes the pipeline locally.  The CLI builds its serial
pipelines through the same path, guaranteeing that serial and sharded
runs label identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def strategy_names() -> tuple[str, ...]:
    """Names accepted for :attr:`PipelineConfig.strategy`."""
    return ("scann", "average", "minimum", "maximum", "majority")


def _strategy_for(name: str):
    from repro.core.majority import MajorityVoteStrategy
    from repro.core.scann import SCANNStrategy
    from repro.core.strategies import (
        AverageStrategy,
        MaximumStrategy,
        MinimumStrategy,
    )

    strategies = {
        "scann": SCANNStrategy,
        "average": AverageStrategy,
        "minimum": MinimumStrategy,
        "maximum": MaximumStrategy,
        "majority": MajorityVoteStrategy,
    }
    try:
        return strategies[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown strategy {name!r}; known: {sorted(strategies)}"
        ) from exc


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to rebuild a :class:`MAWILabPipeline`.

    Attributes mirror the pipeline constructor; ``detectors`` /
    ``tunings`` restrict the ensemble (``None`` keeps the paper's 12
    configurations).
    """

    strategy: str = "scann"
    granularity: str = "uniflow"
    measure: str = "simpson"
    edge_threshold: float = 0.1
    rule_support_pct: float = 20.0
    seed: int = 0
    detectors: Optional[tuple[str, ...]] = None
    tunings: Optional[tuple[str, ...]] = None
    #: Execution-engine name ("auto" / "numpy" / "python"), kept as a
    #: string so the frozen config pickles into pool workers without
    #: dragging kernel tables along; resolved on build.  Engines emit
    #: byte-identical output, so it is *not* part of alarm-cache keys.
    engine: str = "auto"

    def build_pipeline(self):
        """Materialize the pipeline this config describes."""
        from repro.detectors.registry import default_ensemble
        from repro.labeling.mawilab import MAWILabPipeline
        from repro.net.flow import Granularity

        ensemble = None
        if self.detectors is not None or self.tunings is not None:
            ensemble = default_ensemble(
                detectors=self.detectors,
                tunings=self.tunings,
                engine=self.engine,
            )
        return MAWILabPipeline(
            ensemble=ensemble,
            granularity=Granularity(self.granularity),
            strategy=_strategy_for(self.strategy),
            measure=self.measure,
            edge_threshold=self.edge_threshold,
            rule_support_pct=self.rule_support_pct,
            seed=self.seed,
            engine=self.engine,
        )

    def describe(self) -> str:
        return (
            f"{self.strategy}/{self.granularity}/{self.measure}"
            f" thr={self.edge_threshold} support={self.rule_support_pct}%"
            f" engine={self.engine}"
        )
