"""Labeling: heuristics, taxonomy and the end-to-end pipeline.

* :mod:`repro.labeling.heuristics` — Table 1 of the paper: simple
  port/flag/ICMP rules classifying a community's traffic as "Attack",
  "Special" or "Unknown".  Used only for *evaluation* (they are
  independent of the detectors' mechanisms), never by the combiner.
* :mod:`repro.labeling.taxonomy` — the MAWILab taxonomy of Section 5:
  anomalous / suspicious / notice / benign, thresholded on the SCANN
  relative distance.
* :mod:`repro.labeling.mawilab` — :class:`MAWILabPipeline`, the whole
  4-step method on one trace, plus the label records and CSV/XML
  writers that form the public database format.
* :mod:`repro.labeling.warehouse` — :class:`Warehouse`, the versioned
  memory-mapped columnar spill of :class:`LabelStore` /
  ``AlarmTable`` with zero-copy cross-day queries and delta
  recompute.
"""

from repro.labeling.heuristics import (
    CATEGORY_ATTACK,
    CATEGORY_SPECIAL,
    CATEGORY_UNKNOWN,
    HeuristicLabel,
    label_community,
    label_packets,
)
from repro.labeling.taxonomy import (
    TAXONOMY_ANOMALOUS,
    TAXONOMY_BENIGN,
    TAXONOMY_NOTICE,
    TAXONOMY_ORDER,
    TAXONOMY_SUSPICIOUS,
    assign_taxonomy,
    assign_taxonomy_batch,
)
from repro.labeling.database import LabelDatabase, StoredLabel
from repro.labeling.store import LabelStore, taxonomy_counts
from repro.labeling.mawilab import (
    LabelRecord,
    MAWILabPipeline,
    PipelineResult,
    labels_to_csv,
    labels_to_xml,
)
from repro.labeling.warehouse import Warehouse, warehouse_fingerprint

__all__ = [
    "CATEGORY_ATTACK",
    "CATEGORY_SPECIAL",
    "CATEGORY_UNKNOWN",
    "HeuristicLabel",
    "label_community",
    "label_packets",
    "TAXONOMY_ANOMALOUS",
    "TAXONOMY_BENIGN",
    "TAXONOMY_NOTICE",
    "TAXONOMY_ORDER",
    "TAXONOMY_SUSPICIOUS",
    "assign_taxonomy",
    "assign_taxonomy_batch",
    "LabelDatabase",
    "StoredLabel",
    "LabelStore",
    "taxonomy_counts",
    "LabelRecord",
    "MAWILabPipeline",
    "PipelineResult",
    "labels_to_csv",
    "labels_to_xml",
    "Warehouse",
    "warehouse_fingerprint",
]
