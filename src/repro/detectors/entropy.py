"""Entropy-based detector — the "emerging detector" integration demo.

Paper Section 6: "we will also take into account the results from
emerging anomaly detectors, to improve the quality and variety of the
labels over time".  This module provides such a fifth detector —
entropy time series over traffic feature distributions (Nychis et al.,
IMC'08; Lakhina et al., SIGCOMM'05) — and because it follows the
:class:`~repro.detectors.base.Detector` interface it plugs into the
pipeline unchanged:

>>> from repro.detectors import default_ensemble
>>> from repro.detectors.entropy import EntropyDetector, ENTROPY_TUNINGS
>>> from repro.labeling import MAWILabPipeline
>>> ensemble = default_ensemble() + [
...     EntropyDetector(tuning=t, **p) for t, p in ENTROPY_TUNINGS.items()
... ]
>>> pipeline = MAWILabPipeline(ensemble=ensemble)   # 15 configurations

Algorithm
---------
1. Split the trace into ``n_bins`` bins; per bin compute the Shannon
   entropy of the src-IP, dst-IP, src-port and dst-port histograms.
2. A bin whose entropy deviates from the trace median by more than
   ``threshold`` robust standard deviations (either direction —
   scans *raise* dst-IP entropy, floods *lower* it) is anomalous.
3. For an anomalous (bin, feature), report the values dominating the
   distributional change: the most frequent values when entropy
   dropped (concentration) and the newly-appearing heavy values when
   it rose (dispersion), as feature filters over the bin.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.detectors.base import Alarm, Detector
from repro.detectors.features import first_appearance_order
from repro.net.filters import FeatureFilter
from repro.net.trace import Trace

_FEATURES = ("src", "dst", "sport", "dport")
_FILTER_FIELD = {"src": "src", "dst": "dst", "sport": "sport", "dport": "dport"}


def shannon_entropy(counts: Counter) -> float:
    """Shannon entropy (bits) of a histogram; 0 for empty input."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    probabilities = np.array(list(counts.values()), dtype=float) / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def _entropy_series(counts: np.ndarray) -> np.ndarray:
    """Per-bin Shannon entropies of a dense histogram matrix."""
    n_bins = counts.shape[0]
    entropies = np.zeros(n_bins)
    totals = counts.sum(axis=1)
    for b in range(n_bins):
        if totals[b] == 0:
            continue
        row = counts[b]
        probabilities = row[row > 0] / totals[b]
        entropies[b] = float(
            -(probabilities * np.log2(probabilities)).sum()
        )
    return entropies


def _entropy_deviations(entropies: np.ndarray) -> np.ndarray:
    """Robust z-scores of an entropy series (median/MAD centered)."""
    median = float(np.median(entropies))
    mad = float(np.median(np.abs(entropies - median)))
    scale = 1.4826 * mad if mad > 0 else float(entropies.std()) or 1.0
    return (entropies - median) / scale


class EntropyDetector(Detector):
    """Feature-entropy time-series detector (partial-tuple alarms)."""

    name = "entropy"

    @classmethod
    def default_params(cls) -> dict:
        return {
            "n_bins": 12,
            "threshold": 3.0,
            "top_values": 3,
        }

    def plane_specs(self) -> tuple:
        p = self.params
        n_bins = p["n_bins"]
        specs = [("time_bins", n_bins), ("bin_members", n_bins)]
        for feature in _FEATURES:
            specs.extend(
                (
                    ("binned_histogram", feature, n_bins),
                    ("entropy_series", feature, n_bins),
                )
            )
        return tuple(specs)

    def analyze(self, trace: Trace, planes=None) -> list[Alarm]:
        if len(trace) < 8:
            return []
        planes = self._plane_cache(trace, planes)
        if self.engine.vectorized:
            return self._analyze_numpy(trace, planes)
        return self._analyze_python(trace, planes)

    def _analyze_python(self, trace: Trace, planes) -> list[Alarm]:
        """Reference path: Counter histograms, packet-by-packet."""
        p = self.params
        t_start, t_end = trace.start_time, trace.end_time
        span = max(t_end - t_start, 1e-9)
        n_bins = p["n_bins"]
        bins = planes.get(trace, ("bin_members", n_bins))

        alarms: list[Alarm] = []
        bin_width = span / n_bins
        for feature in _FEATURES:
            histograms = planes.get(
                trace, ("binned_counters", feature, n_bins)
            )
            entropies = planes.get(
                trace, ("entropy_series", feature, n_bins)
            )
            deviations = _entropy_deviations(entropies)
            for b in np.nonzero(np.abs(deviations) > p["threshold"])[0]:
                b = int(b)
                if not bins[b]:
                    continue
                t0 = t_start + b * bin_width
                t1 = t0 + bin_width
                values = self._responsible_values(
                    histograms, b, falling=deviations[b] < 0
                )
                alarms.extend(
                    self._value_alarms(feature, values, t0, t1, deviations[b])
                )
        return alarms

    def _analyze_numpy(self, trace: Trace, planes) -> list[Alarm]:
        """Columnar path: dense histograms + vectorized entropies.

        Value selections are integer-identical to
        :meth:`_analyze_python`; entropy floats can differ in the last
        ulp because the reference sums probabilities in Counter
        insertion order.  The bin assignment, histograms and entropy
        series are shared feature planes (identical to the KL
        detector's histogram planes, so the two families share them).
        """
        p = self.params
        t_start, t_end = trace.start_time, trace.end_time
        span = max(t_end - t_start, 1e-9)
        n_bins = p["n_bins"]
        members_lists = planes.get(trace, ("bin_members", n_bins))

        alarms: list[Alarm] = []
        bin_width = span / n_bins
        for feature in _FEATURES:
            histogram = planes.get(
                trace, ("binned_histogram", feature, n_bins)
            )
            entropies = planes.get(
                trace, ("entropy_series", feature, n_bins)
            )
            deviations = _entropy_deviations(entropies)
            for b in np.nonzero(np.abs(deviations) > p["threshold"])[0]:
                b = int(b)
                members = members_lists[b]
                if members.size == 0:
                    continue
                t0 = t_start + b * bin_width
                t1 = t0 + bin_width
                values = self._responsible_values_dense(
                    histogram, b, members, falling=deviations[b] < 0
                )
                alarms.extend(
                    self._value_alarms(feature, values, t0, t1, deviations[b])
                )
        return alarms

    def _value_alarms(
        self, feature: str, values, t0: float, t1: float, deviation: float
    ) -> list[Alarm]:
        """One alarm per responsible value (shared by both engines)."""
        return [
            self._alarm(
                t0,
                t1,
                filters=(
                    FeatureFilter(
                        t0=t0,
                        t1=t1,
                        **{_FILTER_FIELD[feature]: int(value)},
                    ),
                ),
                score=float(abs(deviation)),
            )
            for value in values
        ]

    def _responsible_values_dense(
        self,
        histogram,
        b: int,
        members: np.ndarray,
        falling: bool,
    ) -> list:
        """Dense twin of :meth:`_responsible_values`.

        Same ordering semantics: ``most_common`` ties break by first
        appearance within the bin; "fresh" dispersion values sort by
        (count, value) descending.
        """
        top = self.params["top_values"]
        counts = histogram.counts
        uniq_codes, first_pos = first_appearance_order(histogram.codes[members])
        bin_counts = counts[b, uniq_codes]
        if falling:
            order = np.lexsort((first_pos, -bin_counts))[:top]
            return [int(histogram.values[c]) for c in uniq_codes[order]]
        neighbours = np.zeros(counts.shape[1], dtype=np.int64)
        if b > 0:
            neighbours += counts[b - 1]
        if b + 1 < counts.shape[0]:
            neighbours += counts[b + 1]
        fresh = neighbours[uniq_codes] == 0
        fresh_codes = uniq_codes[fresh]
        fresh_counts = bin_counts[fresh]
        fresh_values = histogram.values[fresh_codes].astype(np.int64)
        order = np.lexsort((-fresh_values, -fresh_counts))[:top]
        return [int(v) for v in fresh_values[order]]

    def _responsible_values(self, histograms, b: int, falling: bool) -> list:
        """Values explaining an entropy drop (concentration) or rise."""
        top = self.params["top_values"]
        current = histograms[b]
        if falling:
            # Concentration: the dominant values.
            return [value for value, _count in current.most_common(top)]
        # Dispersion: heavy values absent from the neighbouring bins.
        neighbours: Counter = Counter()
        if b > 0:
            neighbours += histograms[b - 1]
        if b + 1 < len(histograms):
            neighbours += histograms[b + 1]
        fresh = [
            (count, value)
            for value, count in current.items()
            if value not in neighbours
        ]
        fresh.sort(reverse=True)
        return [value for _count, value in fresh[:top]]


#: Tunings mirroring the paper's optimal/sensitive/conservative scheme.
ENTROPY_TUNINGS = {
    "optimal": {},
    "sensitive": {"threshold": 2.0, "top_values": 5},
    "conservative": {"threshold": 4.5, "top_values": 2},
}


def extended_ensemble():
    """The paper's 12 configurations plus the entropy detector's 3.

    The drop-in way to reproduce Section 6's "integrating the results
    from emerging anomaly detectors".
    """
    from repro.detectors.registry import default_ensemble

    return default_ensemble() + [
        EntropyDetector(tuning=tuning, **params)
        for tuning, params in ENTROPY_TUNINGS.items()
    ]
