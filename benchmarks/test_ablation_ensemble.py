"""Ablation — how many detectors does the combiner need?

The Condorcet argument (Section 2.2.1) predicts that adding competent,
diverse detectors improves the combination.  This ablation runs the
pipeline with growing detector subsets and reports the accepted
attack-ratio contrast and coverage.
"""

from __future__ import annotations


from benchmarks.conftest import GRANULARITY_DATES, run_once
from repro.detectors.registry import default_ensemble
from repro.eval.metrics import attack_ratio
from repro.eval.report import format_table
from repro.labeling.heuristics import label_community
from repro.labeling.mawilab import MAWILabPipeline

SUBSETS = (
    ("kl",),
    ("kl", "gamma"),
    ("kl", "gamma", "hough"),
    ("kl", "gamma", "hough", "pca"),
)


def test_ablation_ensemble_size(archive, benchmark):
    def compute():
        days = [archive.day(d) for d in GRANULARITY_DATES]
        results = []
        for subset in SUBSETS:
            pipeline = MAWILabPipeline(
                ensemble=default_ensemble(detectors=list(subset))
            )
            accepted = []
            attacks_found = 0
            for day in days:
                result = pipeline.run(day.trace)
                cs = result.community_set
                for community, decision in zip(
                    cs.communities, result.decisions
                ):
                    if decision.accepted:
                        label = label_community(community, cs.extractor)
                        accepted.append(label)
                        if label.category == "attack":
                            attacks_found += 1
            results.append(
                (
                    "+".join(subset),
                    len(accepted),
                    attacks_found,
                    attack_ratio(accepted),
                )
            )
        return results

    results = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["ensemble", "#accepted", "#attacks", "attack ratio"],
            results,
            title="Ablation — ensemble size",
        )
    )

    attacks = [row[2] for row in results]
    # The full ensemble finds at least as many attacks as the single
    # best detector alone — the synergy the paper measures.
    assert attacks[-1] >= attacks[0]
    # And at least as many accepted communities overall.
    assert results[-1][1] >= results[0][1]
