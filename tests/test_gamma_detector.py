"""Unit tests for the Gamma multi-resolution sketch detector."""

import numpy as np
import pytest

from repro.detectors.gamma import GammaDetector
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.trace import Trace


@pytest.fixture(scope="module")
def ping_trace():
    spec = WorkloadSpec(
        seed=33,
        duration=30.0,
        anomalies=[AnomalySpec("ping_flood", intensity=2.0, start=8.0, duration=8.0)],
    )
    return generate_trace(spec)


class TestDetection:
    def test_empty_trace(self):
        assert GammaDetector().analyze(Trace([])) == []

    def test_detects_flood_source_or_destination(self, ping_trace):
        trace, events = ping_trace
        event = events[0]
        flood_src = event.filters[0].src
        flood_dst = event.filters[0].dst
        alarms = GammaDetector(tuning="sensitive", threshold=1.8).analyze(trace)
        assert alarms
        reported = {f.src for a in alarms for f in a.filters if f.src is not None}
        reported |= {f.dst for a in alarms for f in a.filters if f.dst is not None}
        assert flood_src in reported or flood_dst in reported

    def test_reports_src_or_dst_only(self, ping_trace):
        trace, _ = ping_trace
        for alarm in GammaDetector(threshold=1.8).analyze(trace):
            (feature_filter,) = alarm.filters
            has_src = feature_filter.src is not None
            has_dst = feature_filter.dst is not None
            assert has_src != has_dst  # exactly one direction

    def test_whole_trace_window(self, ping_trace):
        trace, _ = ping_trace
        for alarm in GammaDetector(threshold=1.8).analyze(trace):
            assert alarm.t0 == pytest.approx(trace.start_time)
            assert alarm.t1 == pytest.approx(trace.end_time)

    def test_threshold_monotone(self, ping_trace):
        trace, _ = ping_trace
        low = len(GammaDetector(threshold=1.5).analyze(trace))
        high = len(GammaDetector(threshold=4.0).analyze(trace))
        assert high <= low


class TestGammaFeatures:
    def test_shape(self):
        counts = np.ones((32, 4))
        features = GammaDetector._gamma_features(counts, n_scales=3)
        assert features.shape == (4, 6)

    def test_constant_counts_zero_variance(self):
        counts = np.full((32, 2), 5.0)
        features = GammaDetector._gamma_features(counts, n_scales=2)
        # var = 0 -> shape feature 0, scale feature 0.
        assert features[:, 0] == pytest.approx([0.0, 0.0])

    def test_poisson_counts_reasonable_fit(self):
        rng = np.random.default_rng(5)
        counts = rng.poisson(10.0, size=(256, 1)).astype(float)
        features = GammaDetector._gamma_features(counts, n_scales=1)
        shape = np.expm1(features[0, 0])
        scale = np.expm1(features[0, 1])
        # Poisson(10): mean 10, var 10 -> shape ~10, scale ~1.
        assert shape == pytest.approx(10.0, rel=0.35)
        assert scale == pytest.approx(1.0, abs=0.35)

    def test_deviations_flag_outlier_sketch(self):
        features = np.ones((8, 4))
        features[3] = 10.0
        deviations = GammaDetector._deviations(features)
        assert np.argmax(deviations) == 3
        assert deviations[3] > 3 * np.median(deviations)
