"""Background traffic generation.

The background model is deliberately simple but covers what the four
detectors and the Table-1 heuristics actually measure:

* flow inter-arrivals are Poisson;
* flow sizes (packets per flow) are Pareto-distributed (heavy tail),
  matching the well-documented heavy-tailed nature of Internet flows;
* services are drawn from a configurable mixture (HTTP dominates, with
  DNS, SSH, FTP, SMTP, NetBIOS background noise, ICMP echo, and — in
  later archive eras — random-port P2P);
* TCP flows carry realistic flag sequences: a SYN handshake, ACK/PSH
  data packets and a FIN, in both directions (so biflow aggregation has
  something to merge);
* packet sizes are drawn per-service (small for DNS/ACKs, MTU-sized for
  bulk transfer).

Hosts live in a handful of /16 networks per side of the link; detectors
that hash on addresses therefore see realistic collision structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.net.addresses import random_host_in
from repro.net.packet import (
    ACK,
    FIN,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PSH,
    SYN,
    Packet,
)
from repro.net.trace import Trace, TraceMetadata

# Networks on the two sides of the simulated trans-Pacific link.
JP_NETWORKS = [(0xCB000000, 16), (0xCB010000, 16), (0x85000000, 16)]  # 203.x, 133.x
US_NETWORKS = [(0x40000000, 16), (0x40010000, 16), (0xD0000000, 16)]  # 64.x, 208.x


@dataclass(frozen=True)
class Service:
    """One background service in the traffic mixture."""

    name: str
    proto: int
    port: int
    weight: float
    mean_pkt_size: int = 600
    # Pareto shape for packets-per-flow; smaller = heavier tail.
    pareto_shape: float = 1.5
    min_packets: int = 2


DEFAULT_SERVICES = [
    # TCP services get min_packets >= 5 so a normal flow's handshake
    # and teardown never dominate its flag statistics — real web flows
    # are not SYN-heavy, and the Table-1 heuristics rely on that.
    Service("http", PROTO_TCP, 80, 0.42, mean_pkt_size=900, pareto_shape=1.3, min_packets=6),
    Service("http-alt", PROTO_TCP, 8080, 0.04, mean_pkt_size=900, pareto_shape=1.3, min_packets=6),
    Service("dns-udp", PROTO_UDP, 53, 0.16, mean_pkt_size=120, pareto_shape=2.5, min_packets=1),
    Service("dns-tcp", PROTO_TCP, 53, 0.02, mean_pkt_size=200, pareto_shape=2.5, min_packets=5),
    Service("ssh", PROTO_TCP, 22, 0.06, mean_pkt_size=400, pareto_shape=1.6, min_packets=6),
    Service("ftp", PROTO_TCP, 21, 0.03, mean_pkt_size=500, pareto_shape=1.4, min_packets=5),
    Service("ftp-data", PROTO_TCP, 20, 0.02, mean_pkt_size=1200, pareto_shape=1.2, min_packets=6),
    Service("smtp", PROTO_TCP, 25, 0.05, mean_pkt_size=700, pareto_shape=1.6, min_packets=5),
    Service("ntp", PROTO_UDP, 123, 0.03, mean_pkt_size=90, pareto_shape=3.0, min_packets=1),
    Service("icmp-echo", PROTO_ICMP, 0, 0.03, mean_pkt_size=84, pareto_shape=2.5, min_packets=2),
    Service("p2p", PROTO_TCP, -1, 0.14, mean_pkt_size=1000, pareto_shape=1.2, min_packets=6),
]


@dataclass(frozen=True)
class BackgroundProfile:
    """Tunable knobs of the background mixture.

    ``p2p_weight`` overrides the weight of the random-port P2P service;
    the archive timeline raises it after 2007 to reproduce the
    elephant-flow mislabeling the paper discusses for Fig. 7.
    """

    flow_rate: float = 40.0  # new flows per second
    p2p_weight: Optional[float] = None
    n_hosts_per_network: int = 200
    n_servers_per_service: int = 8

    def services(self) -> list[Service]:
        """The service mixture with profile overrides applied."""
        services = list(DEFAULT_SERVICES)
        if self.p2p_weight is not None:
            services = [
                replace(s, weight=self.p2p_weight) if s.name == "p2p" else s
                for s in services
            ]
        return services


@dataclass
class WorkloadSpec:
    """Complete specification of one generated trace.

    Attributes
    ----------
    seed:
        RNG seed; identical specs produce identical traces.
    duration:
        Trace duration in seconds.  The real archive uses 900 s; tests
        and benchmarks default to a shorter window for speed — the
        pipeline is duration-agnostic.
    background:
        Background mixture profile.
    anomalies:
        Anomaly specs to inject (see ``repro.mawi.anomalies``).  Each
        entry is an :class:`~repro.mawi.anomalies.AnomalySpec`.
    name / date / link_mbps:
        Trace metadata.
    """

    seed: int = 0
    duration: float = 60.0
    background: BackgroundProfile = field(default_factory=BackgroundProfile)
    anomalies: list = field(default_factory=list)
    name: str = "synthetic"
    date: str = "2009-01-01"
    link_mbps: float = 150.0


class TrafficGenerator:
    """Generates background traffic for a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        profile = spec.background
        self._services = profile.services()
        weights = np.array([s.weight for s in self._services], dtype=float)
        self._service_probs = weights / weights.sum()
        self._jp_hosts = self._draw_hosts(JP_NETWORKS, profile.n_hosts_per_network)
        self._us_hosts = self._draw_hosts(US_NETWORKS, profile.n_hosts_per_network)
        self._servers = {
            s.name: [
                self._pick_host(self.rng.random() < 0.5)
                for _ in range(profile.n_servers_per_service)
            ]
            for s in self._services
        }

    def _draw_hosts(self, networks, count: int) -> list[int]:
        hosts: set[int] = set()
        while len(hosts) < count * len(networks):
            prefix, plen = networks[int(self.rng.integers(0, len(networks)))]
            hosts.add(random_host_in(prefix, plen, self.rng))
        return sorted(hosts)

    def _pick_host(self, japanese: bool) -> int:
        pool = self._jp_hosts if japanese else self._us_hosts
        return pool[int(self.rng.integers(0, len(pool)))]

    def _flow_size(self, service: Service) -> int:
        size = int(self.rng.pareto(service.pareto_shape)) + service.min_packets
        return min(size, 400)  # cap so no single background flow dwarfs the trace

    def _packet_size(self, service: Service) -> int:
        jitter = self.rng.normal(0, service.mean_pkt_size * 0.2)
        return int(np.clip(service.mean_pkt_size + jitter, 40, 1500))

    def generate_packets(self) -> list[Packet]:
        """Generate the background packets (unsorted)."""
        spec = self.spec
        rng = self.rng
        n_flows = rng.poisson(spec.background.flow_rate * spec.duration)
        packets: list[Packet] = []
        service_idx = rng.choice(len(self._services), size=n_flows, p=self._service_probs)
        starts = rng.uniform(0.0, spec.duration, size=n_flows)
        for k in range(n_flows):
            service = self._services[int(service_idx[k])]
            packets.extend(self._one_flow(service, float(starts[k])))
        return packets

    def _one_flow(self, service: Service, start: float) -> list[Packet]:
        rng = self.rng
        client_jp = bool(rng.random() < 0.5)
        client = self._pick_host(client_jp)
        if service.port == -1:  # random-port P2P between two peers
            server = self._pick_host(not client_jp)
            dport = int(rng.integers(1024, 65536))
        else:
            servers = self._servers[service.name]
            server = servers[int(rng.integers(0, len(servers)))]
            dport = service.port
        sport = int(rng.integers(1024, 65536))
        n_packets = self._flow_size(service)
        mean_gap = max(0.005, min(2.0, self.spec.duration / (4 * n_packets)))
        gaps = rng.exponential(mean_gap, size=max(n_packets - 1, 0))
        times = start + np.concatenate(([0.0], np.cumsum(gaps)))
        times = np.clip(times, 0.0, self.spec.duration)
        if service.proto == PROTO_TCP:
            return self._tcp_flow(client, sport, server, dport, times, service)
        if service.proto == PROTO_UDP:
            return self._udp_flow(client, sport, server, dport, times, service)
        return self._icmp_flow(client, server, times, service)

    def _tcp_flow(self, client, sport, server, dport, times, service) -> list[Packet]:
        rng = self.rng
        packets: list[Packet] = []
        for i, t in enumerate(times):
            if i == 0:
                flags, src, dst, sp, dp = SYN, client, server, sport, dport
                size = 48
            elif i == 1 and len(times) > 2:
                flags, src, dst, sp, dp = SYN | ACK, server, client, dport, sport
                size = 48
            elif i == len(times) - 1 and len(times) > 3:
                flags = FIN | ACK
                forward = rng.random() < 0.5
                src, dst = (client, server) if forward else (server, client)
                sp, dp = (sport, dport) if forward else (dport, sport)
                size = 52
            else:
                flags = ACK | (PSH if rng.random() < 0.6 else 0)
                forward = rng.random() < 0.55
                src, dst = (client, server) if forward else (server, client)
                sp, dp = (sport, dport) if forward else (dport, sport)
                size = self._packet_size(service)
            packets.append(
                Packet(
                    time=float(t), src=src, dst=dst, sport=sp, dport=dp,
                    proto=PROTO_TCP, size=size, tcp_flags=flags,
                )
            )
        return packets

    def _udp_flow(self, client, sport, server, dport, times, service) -> list[Packet]:
        rng = self.rng
        packets: list[Packet] = []
        for t in times:
            forward = rng.random() < 0.5
            src, dst = (client, server) if forward else (server, client)
            sp, dp = (sport, dport) if forward else (dport, sport)
            packets.append(
                Packet(
                    time=float(t), src=src, dst=dst, sport=sp, dport=dp,
                    proto=PROTO_UDP, size=self._packet_size(service),
                )
            )
        return packets

    def _icmp_flow(self, client, server, times, service) -> list[Packet]:
        packets: list[Packet] = []
        for i, t in enumerate(times):
            request = i % 2 == 0
            packets.append(
                Packet(
                    time=float(t),
                    src=client if request else server,
                    dst=server if request else client,
                    proto=PROTO_ICMP,
                    size=self._packet_size(service),
                    icmp_type=ICMP_ECHO_REQUEST if request else ICMP_ECHO_REPLY,
                )
            )
        return packets

    # Helpers exposed for the anomaly injectors -----------------------

    def pick_victim(self) -> int:
        """A host to target with injected anomalies."""
        return self._pick_host(self.rng.random() < 0.5)

    def pick_attacker(self) -> int:
        return self._pick_host(self.rng.random() < 0.5)


def generate_trace(spec: WorkloadSpec):
    """Generate a full trace: background plus the spec's anomalies.

    Returns
    -------
    (trace, events):
        ``trace`` is a time-sorted :class:`~repro.net.trace.Trace`;
        ``events`` is the list of
        :class:`~repro.mawi.anomalies.GroundTruthEvent` describing the
        injected anomalies (kept outside the trace — the pipeline never
        sees them).
    """
    from repro.mawi.anomalies import inject_anomaly

    generator = TrafficGenerator(spec)
    packets = generator.generate_packets()
    events = []
    for anomaly in spec.anomalies:
        extra, event = inject_anomaly(anomaly, generator)
        packets.extend(extra)
        events.append(event)
    metadata = TraceMetadata(
        name=spec.name, date=spec.date, link_mbps=spec.link_mbps
    )
    return Trace(packets, metadata), events
