#!/usr/bin/env python3
"""Streaming labeling: tail a synthetic archive day, window by window.

Plays one synthetic MAWI-like day through the streaming engine as if
the capture were still in progress: packets arrive in bounded batches,
each sliding window is labeled as its end passes, and re-accepted
communities from overlapping windows merge into single labels with
extended time spans.  At the end, the run's labels are compared with a
fully-buffered offline run of the same trace.

Run:  python examples/streaming_labeling.py
"""

from repro.labeling import MAWILabPipeline, labels_to_csv
from repro.mawi import SyntheticArchive
from repro.stream import StreamingPipeline, chunk_table


def main() -> None:
    # 1. One archive day, treated as a live stream of 1000-packet
    #    batches (iter_pcap would supply the same shape from a file).
    archive = SyntheticArchive(seed=2010, trace_duration=60.0)
    day = archive.day("2005-06-01")
    trace = day.trace
    print(f"streaming {len(trace)} packets over {trace.duration:.0f}s")

    # 2. A 20-second window advancing every 10 seconds: consecutive
    #    windows overlap by half, so anomalies spanning a boundary are
    #    seen (and merged) twice.
    pipeline = StreamingPipeline(window=20.0, hop=10.0)
    for window in pipeline.process(
        chunk_table(trace.table, 1000), metadata=trace.metadata
    ):
        accepted = [
            record
            for record in window.labels
            if record.taxonomy in ("anomalous", "suspicious")
        ]
        print(f"  {window.describe()}")
        for record in accepted[:3]:
            print(f"    {record.describe()}")

    labels = pipeline.merged_labels()
    stats = pipeline.stats()
    print()
    print(
        f"stream done: {stats.n_windows} windows, "
        f"{stats.packets_per_sec:.0f} pkt/s, "
        f"p95 window latency {stats.p95_latency * 1e3:.0f}ms, "
        f"peak ring {stats.peak_ring_packets}/{stats.total_packets} packets"
    )
    extended = [r for r in labels if r.t1 - r.t0 > pipeline.window]
    print(
        f"labels: {len(labels)} after cross-window merging, "
        f"{len(extended)} with spans extended past one window"
    )

    # 3. The offline pipeline on the same (now fully buffered) trace,
    #    for comparison.  With window >= duration the streaming output
    #    would be byte-identical; with sliding windows it is the
    #    per-window view of the same anomalies.
    offline = MAWILabPipeline().run(trace)
    print(
        f"offline reference: {len(offline.labels)} labels, "
        f"{len(labels_to_csv(offline.labels).splitlines()) - 1} CSV rows"
    )


if __name__ == "__main__":
    main()
