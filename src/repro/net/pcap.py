"""Minimal pcap reader / writer.

The MAWI archive distributes classic libpcap files.  This module
implements the subset needed offline: the classic (non-ng) pcap
container with Ethernet (DLT_EN10MB) or raw-IP (DLT_RAW) link types,
IPv4, and TCP/UDP/ICMP transport headers.  Packets the parser cannot
interpret (non-IPv4, truncated captures) are skipped and counted, which
matches how header-only MAWI traces are typically consumed.

Two entry points share one parser:

* :func:`read_pcap` materializes a whole file as a
  :class:`~repro.net.trace.Trace` (the offline pipeline's input);
* :func:`iter_pcap` yields :class:`~repro.net.table.PacketTable`
  batches of bounded size without ever holding the file in memory —
  the ingestion layer of the streaming engine
  (:mod:`repro.stream`).

Malformed input raises the typed
:class:`~repro.errors.PcapFormatError` carrying the byte offset of the
corruption, never a bare ``struct.error`` and never a silent stop.

Only header fields used by the pipeline are decoded; payload bytes are
never retained.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Union

from repro.errors import PcapError, PcapFormatError
from repro.net.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
)
from repro.net.table import PacketTable
from repro.net.trace import Trace, TraceMetadata

_MAGIC_LE = 0xA1B2C3D4
_MAGIC_BE = 0xD4C3B2A1
_DLT_EN10MB = 1
_DLT_RAW = 101

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

#: Largest per-record capture length accepted before the file is
#: declared corrupt.  The classic pcap snaplen ceiling is 65535; MAWI
#: header traces are far below it.  A caplen beyond this bound is a
#: corrupted record header, not a giant packet.
MAX_CAPLEN = 1 << 18


@dataclass
class PcapStats:
    """Counters describing a parse run."""

    packets: int = 0
    skipped: int = 0


def _parse_ipv4(data: bytes, time: float) -> Union[Packet, None]:
    """Decode one IPv4 datagram into a :class:`Packet`, or None."""
    if len(data) < 20:
        return None
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    if ihl < 20 or len(data) < ihl:
        return None
    total_len = struct.unpack_from(">H", data, 2)[0]
    proto = data[9]
    src, dst = struct.unpack_from(">II", data, 12)
    sport = dport = 0
    tcp_flags = 0
    icmp_type = 0
    transport = data[ihl:]
    if proto == PROTO_TCP:
        if len(transport) < 14:
            return None
        sport, dport = struct.unpack_from(">HH", transport, 0)
        tcp_flags = transport[13] & 0x3F
    elif proto == PROTO_UDP:
        if len(transport) < 4:
            return None
        sport, dport = struct.unpack_from(">HH", transport, 0)
    elif proto == PROTO_ICMP:
        if len(transport) < 1:
            return None
        icmp_type = transport[0]
    else:
        return None
    return Packet(
        time=time,
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        proto=proto,
        size=max(total_len, 20),
        tcp_flags=tcp_flags,
        icmp_type=icmp_type,
    )


def _read_global_header(fh: BinaryIO) -> tuple[struct.Struct, int]:
    """Parse the pcap global header; return (record struct, linktype).

    Raises :class:`PcapFormatError` (with byte offset) for truncation
    or a bad magic, :class:`PcapError` for an unsupported link type.
    """
    header = fh.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapFormatError(
            f"truncated pcap global header ({len(header)} of "
            f"{_GLOBAL_HEADER.size} bytes)",
            offset=0,
        )
    magic = struct.unpack("<I", header[:4])[0]
    if magic == _MAGIC_LE:
        endian = "<"
    elif magic == _MAGIC_BE:
        endian = ">"
    else:
        raise PcapFormatError(f"bad pcap magic {magic:#x}", offset=0)
    fields = struct.unpack(endian + "IHHiIII", header)
    linktype = fields[6]
    if linktype not in (_DLT_EN10MB, _DLT_RAW):
        raise PcapError(f"unsupported link type {linktype}")
    return struct.Struct(endian + "IIII"), linktype


def _iter_packets(fh: BinaryIO) -> Iterator[Packet]:
    """Parse packets one at a time, tracking byte offsets for errors."""
    record, linktype = _read_global_header(fh)
    offset = _GLOBAL_HEADER.size
    while True:
        rec = fh.read(record.size)
        if not rec:
            break
        if len(rec) < record.size:
            raise PcapFormatError(
                f"truncated pcap record header ({len(rec)} of "
                f"{record.size} bytes)",
                offset=offset,
            )
        ts_sec, ts_usec, caplen, _wirelen = record.unpack(rec)
        if caplen > MAX_CAPLEN:
            raise PcapFormatError(
                f"corrupt pcap record header: caplen {caplen} exceeds "
                f"{MAX_CAPLEN}",
                offset=offset,
            )
        data = fh.read(caplen)
        if len(data) < caplen:
            raise PcapFormatError(
                f"truncated pcap record body ({len(data)} of {caplen} "
                "bytes)",
                offset=offset + record.size,
            )
        offset += record.size + caplen
        if linktype == _DLT_EN10MB:
            if len(data) < 14:
                continue
            ethertype = struct.unpack_from(">H", data, 12)[0]
            if ethertype != 0x0800:
                continue
            data = data[14:]
        packet = _parse_ipv4(data, ts_sec + ts_usec / 1e6)
        if packet is not None:
            yield packet


def read_pcap(path_or_file: Union[str, BinaryIO], name: str = "") -> Trace:
    """Read a classic pcap file into a :class:`Trace`.

    Parameters
    ----------
    path_or_file:
        Filesystem path or an open binary file object.
    name:
        Optional trace name for the metadata; defaults to the path.

    Raises
    ------
    PcapFormatError
        If the file is truncated or corrupt (global header, record
        header or record body); the exception carries the byte offset.
    PcapError
        If the link type is unsupported.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            return read_pcap(handle, name=name or path_or_file)
    packets = list(_iter_packets(path_or_file))
    return Trace(packets, TraceMetadata(name=name or "pcap"))


def iter_pcap(
    path_or_file: Union[str, BinaryIO],
    chunk_packets: int = 8192,
) -> Iterator[PacketTable]:
    """Stream a classic pcap file as bounded :class:`PacketTable` batches.

    The file is parsed incrementally: at most ``chunk_packets`` decoded
    packets are held at a time, so arbitrarily large captures can be
    consumed in constant memory.  Batches preserve file order (they are
    *not* re-sorted by time — the streaming window handles ordering).
    Concatenating every yielded table gives exactly the packets
    :func:`read_pcap` would return.

    Raises the same typed errors as :func:`read_pcap`; a corrupt tail
    raises only after the preceding complete batches were yielded,
    which is what lets a streaming consumer label everything up to the
    corruption point.
    """
    if chunk_packets <= 0:
        raise ValueError("chunk_packets must be positive")
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            yield from iter_pcap(handle, chunk_packets=chunk_packets)
            return
    batch: list[Packet] = []
    for packet in _iter_packets(path_or_file):
        batch.append(packet)
        if len(batch) >= chunk_packets:
            yield PacketTable.from_packets(batch)
            batch = []
    if batch:
        yield PacketTable.from_packets(batch)


def _ipv4_bytes(packet: Packet) -> bytes:
    """Serialize a packet as a header-only IPv4 datagram."""
    transport: bytes
    if packet.proto == PROTO_TCP:
        transport = struct.pack(
            ">HHIIBBHHH",
            packet.sport,
            packet.dport,
            0,  # seq
            0,  # ack
            5 << 4,  # data offset
            packet.tcp_flags,
            8192,  # window
            0,  # checksum (unset; readers in this package ignore it)
            0,  # urgent
        )
    elif packet.proto == PROTO_UDP:
        transport = struct.pack(">HHHH", packet.sport, packet.dport, 8, 0)
    else:
        transport = struct.pack(">BBHI", packet.icmp_type, 0, 0, 0)
    total_len = 20 + len(transport)
    header = struct.pack(
        ">BBHHHBBHII",
        0x45,
        0,
        max(packet.size, total_len),
        0,
        0,
        64,
        packet.proto,
        0,  # checksum left zero — readers here ignore it
        packet.src,
        packet.dst,
    )
    return header + transport


def write_pcap(trace: Trace, path_or_file: Union[str, BinaryIO]) -> PcapStats:
    """Write a trace as a classic little-endian raw-IP pcap file.

    Captured lengths equal the serialized header length; wire lengths
    reflect the packet's declared :attr:`Packet.size`, so byte-volume
    statistics survive a round trip.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "wb") as handle:
            return write_pcap(trace, handle)
    fh = path_or_file
    fh.write(
        _GLOBAL_HEADER.pack(_MAGIC_LE, 2, 4, 0, 0, 65535, _DLT_RAW)
    )
    stats = PcapStats()
    for packet in trace:
        data = _ipv4_bytes(packet)
        ts_sec = int(packet.time)
        ts_usec = int(round((packet.time - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        fh.write(
            _RECORD_HEADER.pack(ts_sec, ts_usec, len(data), max(packet.size, len(data)))
        )
        fh.write(data)
        stats.packets += 1
    return stats
