"""Columnar engine acceptance: speedup with byte-identical labels.

The ROADMAP's north star asks the hot path to run "as fast as the
hardware allows"; the columnar packet engine re-expresses Step 1
feature binning, Step 2 traffic extraction and the similarity graph as
NumPy array programs.  This benchmark pins both halves of the claim on
the benchmark synthetic trace:

* end-to-end ``MAWILabPipeline.run`` is at least 3x faster on the
  ``numpy`` engine than on the pure-Python reference engine, and
* ``labels_to_csv`` output is byte-identical between the two.
"""

from __future__ import annotations

import time

from repro.labeling.mawilab import MAWILabPipeline, labels_to_csv
from repro.mawi.archive import SyntheticArchive

from benchmarks.conftest import ARCHIVE_SEED, TRACE_DURATION

BENCH_DATE = "2005-06-01"


def _fresh_trace():
    """A cold trace per run, so neither engine inherits warm caches."""
    archive = SyntheticArchive(
        seed=ARCHIVE_SEED, trace_duration=TRACE_DURATION
    )
    return archive.day(BENCH_DATE).trace


def _run(engine: str):
    trace = _fresh_trace()
    pipeline = MAWILabPipeline(engine=engine)
    started = time.perf_counter()
    result = pipeline.run(trace)
    elapsed = time.perf_counter() - started
    return labels_to_csv(result.labels), elapsed


def test_columnar_engine_3x_and_byte_identical():
    csv_numpy, _warmup = _run("numpy")

    # Best-of-3 for both sides so one scheduler hiccup cannot decide
    # the comparison; the observed gap is ~5-6x, asserted at 3x.
    numpy_best = min(_run("numpy")[1] for _ in range(3))
    python_runs = [_run("python") for _ in range(3)]
    python_best = min(elapsed for _csv, elapsed in python_runs)

    assert csv_numpy == python_runs[0][0]
    assert all(csv == csv_numpy for csv, _elapsed in python_runs)
    assert python_best >= 3.0 * numpy_best, (
        f"columnar speedup {python_best / numpy_best:.2f}x below 3x "
        f"(numpy {numpy_best:.3f}s, python {python_best:.3f}s)"
    )


def test_columnar_alarm_path_2x_and_byte_identical():
    """Steps 2-4 over the columnar ``AlarmTable`` run at least 2x the
    object path on the same precomputed alarm set (the PR 5 acceptance
    bar), with byte-identical labels."""
    from repro.core.alarm_table import AlarmTable

    trace = _fresh_trace()
    columnar = MAWILabPipeline(engine="numpy")
    reference = MAWILabPipeline(engine="python")
    table = columnar.detect_table(trace)
    alarms = table.to_alarms()

    def run_once(pipeline, payload):
        started = time.perf_counter()
        result = pipeline.run_with_alarms(
            trace,
            payload if isinstance(payload, AlarmTable) else list(payload),
        )
        return labels_to_csv(result.labels), time.perf_counter() - started

    run_once(columnar, table)  # warm flow-code caches for both paths
    columnar_best = min(run_once(columnar, table)[1] for _ in range(3))
    object_runs = [run_once(reference, alarms) for _ in range(3)]
    object_best = min(elapsed for _csv, elapsed in object_runs)

    csv_columnar = run_once(columnar, table)[0]
    assert all(csv == csv_columnar for csv, _elapsed in object_runs)
    assert object_best >= 2.0 * columnar_best, (
        f"alarm-path speedup {object_best / columnar_best:.2f}x below 2x "
        f"(columnar {columnar_best:.3f}s, object {object_best:.3f}s)"
    )


def test_engines_identical_across_granularities():
    """CSV parity holds for every similarity granularity, not just the
    default uniflow configuration."""
    from repro.net.flow import Granularity

    for granularity in Granularity:
        outputs = {}
        for engine in ("numpy", "python"):
            pipeline = MAWILabPipeline(
                granularity=granularity, engine=engine
            )
            result = pipeline.run(_fresh_trace())
            outputs[engine] = labels_to_csv(result.labels)
        assert outputs["numpy"] == outputs["python"], granularity
