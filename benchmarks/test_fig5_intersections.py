"""Fig. 5 — communities by size and number of reporting detectors.

Paper findings to reproduce:
(1) the intersection of all four detectors is small relative to the
    total number of communities (the detectors are sensitive to
    distinct traffic);
(2) the PCA detector dominates single communities, and its singles
    have a far lower attack ratio than the other detectors' singles;
(3) the attack ratio of communities grows with the number of
    detectors reporting them.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import GRANULARITY_DATES, run_once
from repro.eval.report import format_table
from repro.labeling.heuristics import label_community
from repro.net.flow import Granularity

SIZE_BUCKETS = [(1, 1), (2, 2), (3, 4), (5, 20), (21, 10**9)]


def _bucket(size):
    for lo, hi in SIZE_BUCKETS:
        if lo <= size <= hi:
            return f"{lo}" if lo == hi else f"{lo}-{hi if hi < 10**9 else '+'}"
    raise AssertionError


def test_fig5_intersections(granularity_runs, benchmark):
    def compute():
        cells = Counter()  # (bucket, n_detectors, category) -> count
        single_by_detector = Counter()
        single_attack_by_detector = Counter()
        by_ndet = Counter()
        attack_by_ndet = Counter()
        total = 0
        for date in GRANULARITY_DATES:
            community_set = granularity_runs[(date, Granularity.UNIFLOW)]
            extractor = community_set.extractor
            for community in community_set.communities:
                total += 1
                n_detectors = len(community.detectors())
                label = label_community(community, extractor)
                cells[(_bucket(community.size), n_detectors, label.category)] += 1
                by_ndet[n_detectors] += 1
                if label.category == "attack":
                    attack_by_ndet[n_detectors] += 1
                if community.is_single:
                    detector = next(iter(community.detectors()))
                    single_by_detector[detector] += 1
                    if label.category == "attack":
                        single_attack_by_detector[detector] += 1
        return {
            "cells": cells,
            "single_by_detector": single_by_detector,
            "single_attack_by_detector": single_attack_by_detector,
            "by_ndet": by_ndet,
            "attack_by_ndet": attack_by_ndet,
            "total": total,
        }

    data = run_once(benchmark, compute)

    rows = []
    for (bucket, n_detectors, category), count in sorted(data["cells"].items()):
        rows.append([bucket, n_detectors, category, count])
    print()
    print(
        format_table(
            ["size", "#detectors", "heuristic", "#communities"],
            rows,
            title="Fig. 5 — communities by size x #detectors x label",
        )
    )
    print(f"  singles by detector: {dict(data['single_by_detector'])}")
    print(f"  attack singles:      {dict(data['single_attack_by_detector'])}")

    # (1) Four-detector intersection is a minority of all communities.
    four = data["by_ndet"].get(4, 0)
    assert four < 0.5 * data["total"]

    # (3) Attack ratio grows with the number of reporting detectors.
    def ratio(n):
        if data["by_ndet"].get(n, 0) == 0:
            return None
        return data["attack_by_ndet"].get(n, 0) / data["by_ndet"][n]

    r1, r4 = ratio(1), ratio(4)
    if r1 is not None and r4 is not None:
        assert r4 >= r1

    # (2) PCA singles are less attack-heavy than the rest (the paper
    # reports 6 % for PCA vs 22-56 % for the others).
    pca_singles = data["single_by_detector"].get("pca", 0)
    if pca_singles >= 3:
        pca_rate = data["single_attack_by_detector"].get("pca", 0) / pca_singles
        other_singles = sum(
            v for k, v in data["single_by_detector"].items() if k != "pca"
        )
        other_attack = sum(
            v for k, v in data["single_attack_by_detector"].items() if k != "pca"
        )
        if other_singles >= 3:
            other_rate = other_attack / other_singles
            assert pca_rate <= other_rate + 0.15
