"""The per-trace and per-detector tasks executed inside pool workers.

Two task shapes share the worker process:

* :func:`run_task` labels one whole trace (Steps 1-4 + CSV export) —
  the shard-mode unit;
* :func:`run_detect` runs Step 1 for a *subset of detector
  configurations* against a shared packet table — the intra-trace
  fan-out unit (``fanout="detector"|"trace"``); the parent merges the
  per-group alarm tables with
  :meth:`~repro.core.alarm_table.AlarmTable.concatenate` and runs
  Steps 2-4 once.

Both must stay module-level functions (pickled by reference into pool
workers) and must never raise: every failure is folded into a
``status="failed"`` report so one bad shard cannot take down a batch.

A task's packets reach the worker over one of three transports:

* **regenerate** — the worker rebuilds the archive day from
  ``(archive_seed, trace_duration, date)``; nothing but a date string
  crosses the process boundary;
* **pickle** — an embedded :class:`~repro.net.trace.Trace` rides the
  task pipe (two copies + pickle framing);
* **shm** — a :class:`~repro.runner.shm.SharedTableHandle` names a
  shared-memory segment the worker attaches zero-copy.  Tasks with
  ``pin_segment=True`` attach through the process-local
  :class:`~repro.runner.shm.SegmentRegistry`, so successive tasks
  against the same (or a recycled arena) segment skip the map.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.ioutil import write_atomic
from repro.net.trace import Trace, TraceMetadata
from repro.runner.config import PipelineConfig
from repro.runner.report import TraceReport
from repro.runner.shm import (
    SharedPlanesHandle,
    SharedTableHandle,
    segment_registry,
)


@dataclass(frozen=True)
class TraceTask:
    """One shard: label one trace (generated, embedded, or shared).

    When both ``trace`` and ``shm`` are ``None`` the worker regenerates
    the archive day from ``(archive_seed, trace_duration, date)`` —
    pickling a date string is far cheaper than pickling a packet trace.
    An embedded ``trace`` or a shared-memory ``shm`` handle supports
    labeling arbitrary traces (e.g. loaded pcaps).
    """

    date: str
    config: PipelineConfig = PipelineConfig()
    archive_seed: int = 2010
    trace_duration: float = 60.0
    trace: Optional[Trace] = None
    shm: Optional[SharedTableHandle] = None
    metadata: Optional[TraceMetadata] = None
    #: Trace-source fingerprint for alarm-cache keys.  Callers that
    #: know the provenance (e.g. an archive day shipped over shm) pass
    #: it so the cache key is transport-independent; ``None`` falls
    #: back to a content digest of the packets.
    fingerprint: Optional[str] = None
    cache_dir: Optional[str] = None
    out_dir: Optional[str] = None
    #: When true, the worker exports its Step 1 alarm table to a
    #: shared-memory segment and the report carries the handle — the
    #: parent attaches the *results* zero-copy (and owns the unlink).
    return_alarms: bool = False
    #: When true, the shm transport attaches through the worker's
    #: pinned :class:`~repro.runner.shm.SegmentRegistry` instead of a
    #: one-shot mapping — the right choice whenever the parent recycles
    #: segment names across shards (arena transport) or several tasks
    #: share one table.
    pin_segment: bool = False


def csv_path_for(out_dir: str | Path, date: str) -> Path:
    """Where one trace's label CSV lands inside ``out_dir``."""
    return Path(out_dir) / f"labels-{date}.csv"


#: Process-local pipeline per config.  Persistent workers run many
#: tasks; rebuilding the pipeline per task would discard the detector
#: instances' memoized deterministic state (sketch hash seeds), which
#: warm reuse keeps.  Configs are frozen/hashable and pipelines are
#: stateless across runs, so reuse is observationally identical.
_pipelines: dict = {}


def _pipeline_for(config: PipelineConfig):
    pipeline = _pipelines.get(config)
    if pipeline is None:
        pipeline = config.build_pipeline()
        _pipelines[config] = pipeline
    return pipeline


def fingerprint_trace(trace: Trace) -> str:
    """Content-derived digest of an inline trace.

    Cache keys for embedded traces must reflect the packets themselves
    — two different traces sharing a name/length/duration must not
    share Step 1 alarms.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{trace.metadata.name}:{len(trace)}".encode())
    for pkt in trace:
        hasher.update(
            f"{pkt.time!r},{pkt.src},{pkt.dst},{pkt.sport},{pkt.dport},"
            f"{pkt.proto},{pkt.size},{pkt.tcp_flags},{pkt.icmp_type};".encode()
        )
    return f"inline:{hasher.hexdigest()[:16]}"


# Shared atomic-publish helper; kept under its historical name because
# callers and tests patch ``worker._write_atomic``.
_write_atomic = write_atomic


def run_task(task: TraceTask) -> TraceReport:
    """Label one trace; never raises (failures become reports)."""
    started = time.perf_counter()
    try:
        report = _run_task_inner(task)
    except Exception as exc:  # noqa: BLE001 - shard isolation is the point
        report = TraceReport(
            date=task.date,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )
    report.elapsed = time.perf_counter() - started
    return report


def _run_task_inner(task: TraceTask) -> TraceReport:
    if task.shm is not None:
        attach_started = time.perf_counter()
        if task.pin_segment:
            # Registry attach: the mapping is pinned across tasks, so
            # a recycled arena segment maps once per worker lifetime.
            table = segment_registry().table(task.shm)
            attach = time.perf_counter() - attach_started
            trace = Trace.from_table(table, task.metadata)
            return _label_trace(
                task, trace, fingerprint=task.fingerprint, attach=attach
            )
        attached = task.shm.attach()
        attach = time.perf_counter() - attach_started
        try:
            trace = Trace.from_table(attached.table, task.metadata)
            return _label_trace(
                task, trace, fingerprint=task.fingerprint, attach=attach
            )
        finally:
            attached.close()
    if task.trace is not None:
        return _label_trace(task, task.trace, fingerprint=task.fingerprint)
    from repro.mawi.archive import SyntheticArchive

    archive = SyntheticArchive(
        seed=task.archive_seed, trace_duration=task.trace_duration
    )
    trace = archive.day(task.date).trace
    return _label_trace(task, trace, fingerprint=archive.fingerprint())


def _label_trace(
    task: TraceTask,
    trace: Trace,
    fingerprint: Optional[str],
    attach: float = 0.0,
) -> TraceReport:
    """Shared Step 1-4 body behind every transport.

    ``fingerprint`` identifies the trace source for the alarm cache;
    ``None`` means content-derived (embedded/shared traces), computed
    only when a cache is actually configured — it costs a full packet
    scan.  ``attach`` is the transport-side attach time, folded into
    the report's phase breakdown.
    """
    from repro.labeling.mawilab import labels_to_csv
    from repro.runner.cache import AlarmCache

    pipeline = _pipeline_for(task.config)

    cache = AlarmCache(task.cache_dir) if task.cache_dir else None
    alarms = None
    key = ""
    if cache is not None:
        if fingerprint is None:
            fingerprint = fingerprint_trace(trace)
        key_parts = (
            fingerprint,
            task.date,
            pipeline.ensemble_fingerprint(),
        )
        key = AlarmCache.make_key(*key_parts)
        alarms = cache.get(key, legacy=AlarmCache.legacy_keys(*key_parts))
    cache_hit = alarms is not None
    compute_started = time.perf_counter()
    if alarms is None:
        # Step 1 batch-emits columnarly; the cache stores the table.
        alarms = pipeline.detect_table(trace)
        if cache is not None:
            cache.put(key, alarms)

    result = pipeline.run_with_alarms(trace, alarms)
    csv_text = labels_to_csv(result.labels)
    compute = time.perf_counter() - compute_started

    alarms_shm = None
    if task.return_alarms:
        from repro.core.alarm_table import AlarmTable
        from repro.runner.shm import export_alarm_table

        if not isinstance(alarms, AlarmTable):
            alarms = AlarmTable.from_alarms(list(alarms))
        alarms_shm = export_alarm_table(alarms)

    csv_path = ""
    if task.out_dir:
        out_path = csv_path_for(task.out_dir, task.date)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        _write_atomic(out_path, csv_text)
        csv_path = str(out_path)

    return TraceReport(
        date=task.date,
        status="ok",
        n_alarms=len(result.alarms),
        n_communities=len(result.community_set.communities),
        n_anomalous=len(result.anomalous()),
        n_suspicious=len(result.suspicious()),
        n_notice=len(result.notice()),
        cache_hit=cache_hit,
        csv_path=csv_path,
        csv_sha256=hashlib.sha256(csv_text.encode()).hexdigest(),
        alarms_shm=alarms_shm,
        phases={
            "attach": round(attach, 6),
            "compute": round(compute, 6),
        },
    )


# -- intra-trace detector fan-out --------------------------------------


@dataclass(frozen=True)
class DetectTask:
    """Step 1 for a subset of detector configurations on one table.

    The intra-trace fan-out unit: the parent exports one packet table,
    slices the ensemble's configuration list into index groups, and
    ships one ``DetectTask`` per group.  Each worker rebuilds only its
    configurations (``config_indices`` into
    ``config.build_pipeline().ensemble`` order), analyzes the shared
    table, and returns its alarms; concatenating group results in
    group order reproduces ``detect_table``'s row order exactly —
    the byte-identity anchor across fan-out modes.

    ``stream_states``, when given (index-aligned with
    ``config_indices``), switches the configurations into streaming
    analysis: each detector runs ``analyze_stream`` with its carried
    state and the updated state returns in the result — which is what
    lets :class:`~repro.stream.pipeline.StreamingPipeline` fan every
    window across the same persistent pool.
    """

    config: PipelineConfig
    config_indices: tuple[int, ...]
    shm: Optional[SharedTableHandle] = None
    trace: Optional[Trace] = None
    metadata: Optional[TraceMetadata] = None
    pin_segment: bool = True
    stream_states: Optional[tuple[dict, ...]] = None
    #: Feature planes the parent already computed for this trace,
    #: exported as one shared segment.  The worker seeds its trace's
    #: :class:`~repro.detectors.planes.PlaneCache` from the zero-copy
    #: views before analyzing, so sibling groups of one trace share
    #: the ensemble's planes instead of recomputing them per worker.
    planes: Optional[SharedPlanesHandle] = None


@dataclass
class DetectResult:
    """Outcome of one :class:`DetectTask` (never an exception)."""

    config_indices: tuple[int, ...]
    status: str = "ok"
    error: str = ""
    #: The group's Step 1 alarms (rows in per-configuration emission
    #: order).  Alarm tables are ~1000x smaller than packet tables, so
    #: they ride the result pipe as-is rather than through a segment.
    alarms: object = None
    #: Updated per-configuration streaming states (streaming tasks).
    states: Optional[tuple[dict, ...]] = None
    n_alarms: int = 0
    phases: dict = field(default_factory=dict)
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def run_detect(task: DetectTask) -> DetectResult:
    """Run Step 1 for one configuration group; never raises."""
    try:
        return _run_detect_inner(task)
    except Exception as exc:  # noqa: BLE001 - group isolation, as run_task
        return DetectResult(
            config_indices=task.config_indices,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            worker_pid=os.getpid(),
        )


def _run_detect_inner(task: DetectTask) -> DetectResult:
    from repro.core.alarm_table import AlarmTable

    attached = None
    attached_planes = None
    attach_started = time.perf_counter()
    if task.shm is not None:
        if task.pin_segment:
            table = segment_registry().table(task.shm)
        else:
            attached = task.shm.attach()
            table = attached.table
        trace = Trace.from_table(table, task.metadata)
    elif task.trace is not None:
        trace = task.trace
    else:
        raise ValueError("DetectTask carries neither shm nor trace")
    if task.planes is not None:
        # Seed the trace-attached plane cache from the parent's
        # exported planes; detectors resolve the same cache via
        # plane_cache_for, so no analyze call-site changes are needed.
        from repro.detectors.planes import plane_cache_for

        pipeline = _pipeline_for(task.config)
        cache = plane_cache_for(trace, pipeline.engine)
        if task.pin_segment:
            plane_views = segment_registry().planes(task.planes)
        else:
            attached_planes = task.planes.attach()
            plane_views = attached_planes.planes
        for spec, value in plane_views.items():
            cache.seed(spec, value)
    attach = time.perf_counter() - attach_started

    detect_started = time.perf_counter()
    try:
        ensemble = _pipeline_for(task.config).ensemble
        tables = []
        states: Optional[list[dict]] = (
            [] if task.stream_states is not None else None
        )
        for position, index in enumerate(task.config_indices):
            detector = ensemble[index]
            if task.stream_states is None:
                tables.append(detector.analyze_table(trace))
            else:
                state = dict(task.stream_states[position])
                alarms = detector.analyze_stream(trace, state)
                tables.append(
                    AlarmTable.from_alarms(
                        list(alarms), engine=detector.engine
                    )
                )
                states.append(state)
        # Alarm tables own their arrays (emission re-encodes), so the
        # result outlives the packet-table views safely.
        merged = AlarmTable.concatenate(tables)
    finally:
        if attached_planes is not None:
            attached_planes.close()
        if attached is not None:
            attached.close()
    detect = time.perf_counter() - detect_started
    return DetectResult(
        config_indices=task.config_indices,
        alarms=merged,
        states=tuple(states) if states is not None else None,
        n_alarms=len(merged),
        phases={
            "attach": round(attach, 6),
            "compute": round(detect, 6),
        },
        worker_pid=os.getpid(),
    )
