"""Additional property-based tests: extractor, heuristics, pcap, CA."""

import io

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.correspondence import CorrespondenceAnalysis
from repro.core.extractor import TrafficExtractor
from repro.detectors.base import Alarm
from repro.labeling.heuristics import label_packets
from repro.net.filters import FeatureFilter
from repro.net.flow import Granularity
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Packet
from repro.net.pcap import read_pcap, write_pcap
from repro.net.trace import Trace

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


def _packet_strategy(proto):
    if proto == PROTO_ICMP:
        return st.builds(
            Packet,
            time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            src=addresses,
            dst=addresses,
            sport=st.just(0),
            dport=st.just(0),
            proto=st.just(PROTO_ICMP),
            size=st.integers(40, 1500),
            tcp_flags=st.just(0),
            icmp_type=st.integers(0, 15),
        )
    return st.builds(
        Packet,
        time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        src=addresses,
        dst=addresses,
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        proto=st.just(proto),
        size=st.integers(40, 1500),
        tcp_flags=st.integers(0, 63) if proto == PROTO_TCP else st.just(0),
    )


packets = st.one_of(
    _packet_strategy(PROTO_TCP),
    _packet_strategy(PROTO_UDP),
    _packet_strategy(PROTO_ICMP),
)

traces = st.lists(packets, min_size=1, max_size=40).map(Trace)


# -- extractor ----------------------------------------------------------


@given(traces, addresses)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_extractor_packet_set_matches_filter(trace, src):
    alarm = Alarm(
        detector="t",
        config="t/x",
        t0=trace.start_time,
        t1=trace.end_time + 1.0,
        filters=(
            FeatureFilter(src=src, t0=trace.start_time, t1=trace.end_time + 1.0),
        ),
    )
    extractor = TrafficExtractor(trace, Granularity.PACKET)
    extracted = extractor.extract(alarm)
    expected = {i for i, p in enumerate(trace) if p.src == src}
    assert extracted == expected


@given(traces)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_extractor_flow_expansion_superset(trace):
    """packets_of(extract(alarm)) covers every packet the alarm matched."""
    src = trace[0].src
    alarm = Alarm(
        detector="t",
        config="t/x",
        t0=trace.start_time,
        t1=trace.end_time + 1.0,
        filters=(
            FeatureFilter(src=src, t0=trace.start_time, t1=trace.end_time + 1.0),
        ),
    )
    for granularity in (Granularity.UNIFLOW, Granularity.BIFLOW):
        extractor = TrafficExtractor(trace, granularity)
        expanded = set(extractor.packets_of(extractor.extract(alarm)))
        direct = {i for i, p in enumerate(trace) if p.src == src}
        assert direct <= expanded


# -- heuristics ---------------------------------------------------------


@given(st.lists(packets, max_size=40))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_heuristics_total_function(packet_list):
    label = label_packets(packet_list)
    assert label.category in ("attack", "special", "unknown")
    assert label.detail


@given(st.lists(packets, min_size=1, max_size=30))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_heuristics_order_invariant(packet_list):
    import random

    shuffled = list(packet_list)
    random.Random(0).shuffle(shuffled)
    assert label_packets(packet_list) == label_packets(shuffled)


# -- pcap round trip ----------------------------------------------------


@given(st.lists(packets, min_size=1, max_size=30))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_pcap_round_trip_preserves_headers(packet_list):
    trace = Trace(packet_list)
    buffer = io.BytesIO()
    write_pcap(trace, buffer)
    buffer.seek(0)
    restored = read_pcap(buffer)
    assert len(restored) == len(trace)
    for original, recovered in zip(trace, restored):
        assert recovered.src == original.src
        assert recovered.dst == original.dst
        assert recovered.proto == original.proto
        assert recovered.sport == original.sport
        assert recovered.dport == original.dport
        assert abs(recovered.time - original.time) < 1e-5
        if original.is_tcp:
            assert recovered.tcp_flags == original.tcp_flags
        if original.is_icmp:
            assert recovered.icmp_type == original.icmp_type


# -- correspondence analysis --------------------------------------------

tables = st.integers(2, 8).flatmap(
    lambda cols: st.lists(
        st.lists(st.integers(0, 9), min_size=cols, max_size=cols),
        min_size=2,
        max_size=12,
    )
)


@given(tables)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_ca_transition_formula_property(rows):
    table = np.array(rows, dtype=float) + 0.25  # keep rows/cols non-zero
    ca = CorrespondenceAnalysis(table)
    projected = ca.project_rows(table)
    assert np.allclose(projected, ca.row_coordinates, atol=1e-6)


@given(tables)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_ca_permuting_rows_permutes_coordinates(rows):
    table = np.array(rows, dtype=float) + 0.25
    ca = CorrespondenceAnalysis(table)
    reversed_ca = CorrespondenceAnalysis(table[::-1])
    # Same inertia regardless of row order.
    assert np.allclose(
        np.sort(ca.inertia), np.sort(reversed_ca.inertia), atol=1e-8
    )
