#!/usr/bin/env python3
"""Longitudinal study: labeling nine years of archive.

Reproduces the flavour of the paper's Figs. 7-8 interactively: sweeps
one day per quarter from 2001 to 2009, labels each day, and prints the
attack-ratio time series along with the era (Blaster/Sasser outbreaks,
link upgrades, post-2007 P2P growth).

Run:  python examples/longitudinal_archive.py
"""

from repro.eval.metrics import attack_ratio_by_class
from repro.labeling import MAWILabPipeline
from repro.labeling.heuristics import label_community
from repro.mawi import SyntheticArchive, era_for_date


def main() -> None:
    archive = SyntheticArchive(seed=2010, trace_duration=30.0)
    pipeline = MAWILabPipeline()

    dates = [
        f"{year}-{month:02d}-01"
        for year in range(2001, 2010)
        for month in (2, 8)
    ]

    print(
        f"{'date':12s} {'era':14s} {'comms':>5s} {'anom':>4s} "
        f"{'susp':>4s} {'acc.ratio':>9s} {'rej.ratio':>9s}"
    )
    print("-" * 66)
    for date in dates:
        day = archive.day(date)
        result = pipeline.run(day.trace)
        community_set = result.community_set
        heuristics = [
            label_community(c, community_set.extractor)
            for c in community_set.communities
        ]
        acc, rej = attack_ratio_by_class(
            heuristics, [d.accepted for d in result.decisions]
        )
        era = era_for_date(date)
        print(
            f"{date:12s} {era.name:14s} "
            f"{len(community_set.communities):5d} "
            f"{len(result.anomalous()):4d} "
            f"{len(result.suspicious()):4d} "
            f"{acc:9.2f} {rej:9.2f}"
        )

    print(
        "\nReading the series: the accepted attack ratio should sit well\n"
        "above the rejected one (SCANN discriminates), dip during worm\n"
        "outbreaks (2003-2005: detectors disagree on worm traffic, paper\n"
        "Fig. 7b) and degrade after mid-2007 when random-port P2P\n"
        "elephant flows — labeled 'Unknown' by the Table-1 heuristics —\n"
        "start dominating anomalies."
    )


if __name__ == "__main__":
    main()
