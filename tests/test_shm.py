"""Shared-memory table transports: zero-copy round-trips.

The satellite properties: any :class:`PacketTable` — including empty
and single-packet tables — exported to a shared-memory segment and
attached *in a subprocess* equals the original, column for column; and
any :class:`AlarmTable` (the worker-result transport) round-trips the
same way, views included.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.alarm_table import AlarmTable
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Packet
from repro.net.table import COLUMNS, PacketTable
from repro.runner.shm import (
    export_alarm_table,
    export_table,
    segment_bytes,
)


def _packet(time, src, dst, sport, dport, proto, size, flags):
    if proto == PROTO_ICMP:
        sport = dport = 0
    return Packet(
        time=time,
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        proto=proto,
        size=size,
        tcp_flags=flags if proto == PROTO_TCP else 0,
        icmp_type=8 if proto == PROTO_ICMP else 0,
    )


packets = st.builds(
    _packet,
    time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    src=st.integers(0, 2**32 - 1),
    dst=st.integers(0, 2**32 - 1),
    sport=st.integers(0, 2**16 - 1),
    dport=st.integers(0, 2**16 - 1),
    proto=st.sampled_from([PROTO_TCP, PROTO_UDP, PROTO_ICMP]),
    size=st.integers(1, 2**31),
    flags=st.integers(0, 255),
)

packet_lists = st.lists(packets, min_size=0, max_size=30)

_single = [
    Packet(
        time=1.5,
        src=1,
        dst=2,
        sport=3,
        dport=4,
        proto=PROTO_TCP,
        size=40,
        tcp_flags=2,
        icmp_type=0,
    )
]


def _columns_equal(a: PacketTable, b: PacketTable) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(getattr(a, c), getattr(b, c)) for c in COLUMNS
    )


def _attach_columns(handle) -> dict:
    """Pool worker: attach the segment and read every column out."""
    attached = handle.attach()
    try:
        table = attached.table
        return {c: getattr(table, c).tolist() for c in COLUMNS}
    finally:
        attached.close()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=1) as executor:
        yield executor


@given(packet_lists)
@example([])
@example(_single)
@settings(
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_export_attach_in_subprocess_round_trips(pool, packet_list):
    table = PacketTable.from_packets(packet_list)
    handle = export_table(table)
    try:
        # In-process attach is already zero-copy...
        attached = handle.attach()
        try:
            assert _columns_equal(attached.table, table)
        finally:
            attached.close()
        # ...and a *different process* reads the same bytes back.
        remote = pool.submit(_attach_columns, handle).result(timeout=60)
        for column in COLUMNS:
            assert remote[column] == getattr(table, column).tolist(), column
    finally:
        handle.unlink()


def test_unlink_is_idempotent_and_frees_the_name():
    from multiprocessing import shared_memory

    handle = export_table(PacketTable.from_packets(_single))
    handle.unlink()
    handle.unlink()  # second unlink is a silent no-op
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=handle.name)


def test_segment_layout_is_eight_byte_aligned():
    assert segment_bytes(0) >= 1
    for n_rows in (1, 3, 7, 1000):
        assert segment_bytes(n_rows) % 8 == 0


def test_attach_is_zero_copy():
    """Attached columns are views over the mapped segment, not copies."""
    table = PacketTable.from_packets(_single * 5)
    handle = export_table(table)
    try:
        attached = handle.attach()
        try:
            for column in COLUMNS:
                assert not getattr(attached.table, column).flags.owndata
        finally:
            attached.close()
    finally:
        handle.unlink()


def _attach_alarms(handle) -> list:
    """Pool worker: attach an alarm segment, materialize every view."""
    attached = handle.attach()
    try:
        return attached.table.to_alarms()
    finally:
        attached.close()


from test_alarm_table import alarm_lists  # noqa: E402


@given(alarm_lists)
@example([])
@settings(
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_alarm_table_round_trips_through_shm_subprocess(pool, alarm_list):
    """The worker-result transport: export an alarm table, attach in a
    different process, get the identical alarms back."""
    table = AlarmTable.from_alarms(alarm_list)
    handle = export_alarm_table(table)
    try:
        # In-process: attach views and the copy-out helper agree.
        attached = handle.attach()
        try:
            assert attached.table == table
        finally:
            attached.close()
        assert handle.to_table().to_alarms() == alarm_list
        # Cross-process: a pool worker materializes equal alarms.
        remote = pool.submit(_attach_alarms, handle).result(timeout=60)
        assert remote == alarm_list
    finally:
        handle.unlink()


def test_alarm_handle_unlink_is_idempotent():
    from repro.detectors.base import Alarm
    from repro.net.filters import FeatureFilter

    table = AlarmTable.from_alarms(
        [Alarm("pca", "pca/a", 0.0, 1.0, (FeatureFilter(src=1),))]
    )
    handle = export_alarm_table(table)
    handle.unlink()
    handle.unlink()  # second unlink is a silent no-op
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=handle.name)


def test_handle_is_small_and_picklable():
    import pickle

    table = PacketTable.from_packets(_single * 1000)
    handle = export_table(table)
    try:
        payload = pickle.dumps(handle)
        # The point of the transport: the task pipe carries a name and
        # a row count, not megabytes of packet arrays.
        assert len(payload) < 512
        clone = pickle.loads(payload)
        attached = clone.attach()
        try:
            assert _columns_equal(attached.table, table)
        finally:
            attached.close()
    finally:
        handle.unlink()
