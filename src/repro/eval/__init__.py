"""Evaluation harness: attack ratio, gain/cost, detector benchmarking.

These utilities implement the paper's evaluation machinery:

* :mod:`repro.eval.metrics` — the *attack ratio* (Section 4.2.1) and
  distribution helpers used by Figs. 6, 7 and 10;
* :mod:`repro.eval.gaincost` — the Table-2 gain/cost quantities used by
  Fig. 8;
* :mod:`repro.eval.benchmark` — benchmarking an *external* detector
  against MAWILab labels via a similarity estimator (the intended use
  of the published database);
* :mod:`repro.eval.report` — plain-text tables and series printers for
  the benchmark harness.
"""

from repro.eval.metrics import (
    attack_ratio,
    attack_ratio_by_class,
    cdf_points,
    histogram_pdf,
)
from repro.eval.gaincost import GainCost, gain_cost, gain_cost_by_detector
from repro.eval.benchmark import DetectorScore, benchmark_detector
from repro.eval.groundtruth import (
    EventMatch,
    GroundTruthScore,
    score_detector,
    score_pipeline_result,
    score_traffic_sets,
)
from repro.eval.report import format_series, format_table

__all__ = [
    "attack_ratio",
    "attack_ratio_by_class",
    "cdf_points",
    "histogram_pdf",
    "GainCost",
    "gain_cost",
    "gain_cost_by_detector",
    "DetectorScore",
    "benchmark_detector",
    "EventMatch",
    "GroundTruthScore",
    "score_detector",
    "score_pipeline_result",
    "score_traffic_sets",
    "format_series",
    "format_table",
]
