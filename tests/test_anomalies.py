"""Unit tests for repro.mawi.anomalies: every injector."""

import pytest

from repro.errors import TraceError
from repro.mawi.anomalies import (
    ANOMALY_INJECTORS,
    AnomalySpec,
    CATEGORY_ATTACK,
    CATEGORY_SPECIAL,
    CATEGORY_UNKNOWN,
    inject_anomaly,
)
from repro.mawi.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, SYN


@pytest.fixture
def generator():
    return TrafficGenerator(WorkloadSpec(seed=9, duration=30.0))


@pytest.mark.parametrize("kind", sorted(ANOMALY_INJECTORS))
def test_injector_basics(kind, generator):
    packets, event = inject_anomaly(AnomalySpec(kind), generator)
    assert packets, f"{kind} produced no packets"
    assert event.kind == kind
    assert event.t1 > event.t0
    assert event.filters
    assert event.n_packets == len(packets)
    # All packets inside the event window (within numerical slack).
    assert all(event.t0 - 1e-6 <= p.time <= event.t1 + 1e-6 for p in packets)
    # Ground-truth filters describe (at least some of) the packets.
    matched = sum(
        1 for p in packets if any(f.matches(p) for f in event.filters)
    )
    assert matched >= 0.5 * len(packets)


def test_unknown_kind_rejected(generator):
    with pytest.raises(TraceError):
        inject_anomaly(AnomalySpec("not-a-thing"), generator)


def test_intensity_scales_packets(generator):
    small, _ = inject_anomaly(AnomalySpec("syn_flood", intensity=0.5), generator)
    big, _ = inject_anomaly(AnomalySpec("syn_flood", intensity=2.0), generator)
    assert len(big) > 2 * len(small)


def test_explicit_window_respected(generator):
    spec = AnomalySpec("ping_flood", start=5.0, duration=3.0)
    packets, event = inject_anomaly(spec, generator)
    assert event.t0 == pytest.approx(5.0)
    assert event.t1 == pytest.approx(8.0)


class TestPerKindProperties:
    def test_sasser_ports(self, generator):
        packets, event = inject_anomaly(AnomalySpec("sasser"), generator)
        assert event.category == CATEGORY_ATTACK
        assert all(p.dport in (1023, 5554, 9898) for p in packets)
        assert all(p.tcp_flags == SYN for p in packets)

    def test_blaster_port(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("blaster"), generator)
        assert all(p.dport == 135 and p.proto == PROTO_TCP for p in packets)

    def test_smb_port(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("smb_scan"), generator)
        assert all(p.dport == 445 for p in packets)

    def test_netbios_mixes_udp_and_tcp(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("netbios"), generator)
        protos = {p.proto for p in packets}
        assert protos == {PROTO_TCP, PROTO_UDP}
        assert {p.dport for p in packets} <= {137, 139}

    def test_ping_flood_is_icmp(self, generator):
        packets, event = inject_anomaly(AnomalySpec("ping_flood"), generator)
        assert all(p.proto == PROTO_ICMP for p in packets)
        assert len({p.dst for p in packets}) == 1
        assert event.category == CATEGORY_ATTACK

    def test_syn_flood_spoofed_sources(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("syn_flood"), generator)
        assert all(p.tcp_flags == SYN for p in packets)
        assert len({p.src for p in packets}) > 10
        assert len({p.dst for p in packets}) == 1

    def test_port_scan_sweeps_ports(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("port_scan"), generator)
        assert len({p.dport for p in packets}) > 20
        assert len({(p.src, p.dst) for p in packets}) == 1

    def test_ddos_many_sources_one_victim(self, generator):
        packets, _ = inject_anomaly(AnomalySpec("ddos"), generator)
        assert len({p.src for p in packets}) >= 4
        assert len({p.dst for p in packets}) == 1

    def test_flash_crowd_is_special(self, generator):
        packets, event = inject_anomaly(AnomalySpec("flash_crowd"), generator)
        assert event.category == CATEGORY_SPECIAL
        tcp = [p for p in packets if p.is_tcp]
        syn = sum(1 for p in tcp if p.tcp_flags == SYN)
        assert syn / len(tcp) < 0.3  # normal handshake ratio

    def test_elephant_flow_is_unknown(self, generator):
        packets, event = inject_anomaly(AnomalySpec("elephant_flow"), generator)
        assert event.category == CATEGORY_UNKNOWN
        ports = {p.dport for p in packets} | {p.sport for p in packets}
        assert all(port >= 10000 for port in ports)

    def test_dns_burst_targets_resolver(self, generator):
        packets, event = inject_anomaly(AnomalySpec("dns_burst"), generator)
        assert event.category == CATEGORY_SPECIAL
        assert all(p.dport == 53 and p.proto == PROTO_UDP for p in packets)
        assert len({p.dst for p in packets}) == 1
