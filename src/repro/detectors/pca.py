"""PCA-subspace anomaly detector on sketched traffic.

Reimplements the detector of Section 3.2(1): the classic
Lakhina-style subspace method, applied to sketches (random projections
of source addresses) so that detections can be traced back to the
source IPs responsible — the known blind spot of link-level PCA
(Ringberg'07) that Li'06/Kanda'10 fixed with sketching.

Algorithm
---------
1. Hash each packet's source address into one of ``n_sketches``
   buckets; count packets per (time bin, sketch) -> matrix ``X``.
2. Center columns of ``X``; PCA via SVD; the top ``n_components``
   principal axes span the *normal* subspace.
3. The squared prediction error (SPE / Q-statistic) of each time bin is
   the squared norm of its residual-subspace projection.  Bins whose
   SPE exceeds ``mean + threshold * std`` (computed robustly over bins)
   are anomalous.
4. For each anomalous bin, rank sketches by their residual
   contribution; within each offending sketch, report the dominant
   source IPs as alarms spanning that time bin.

Tunings
-------
``optimal``      balanced threshold and subspace size.
``sensitive``    lower threshold, fewer normal components — many alarms.
``conservative`` higher threshold — few alarms.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import Alarm, Detector
from repro.detectors.sketch import dominant_keys
from repro.net.filters import FeatureFilter
from repro.net.trace import Trace


class PCADetector(Detector):
    """Sketch + PCA subspace detector reporting source IPs."""

    name = "pca"

    @classmethod
    def default_params(cls) -> dict:
        return {
            "n_bins": 24,
            "n_sketches": 16,
            "n_components": 4,
            "threshold": 3.0,
            "hash_seed": 11,
            "max_ips_per_sketch": 3,
            "max_sketches_per_bin": 2,
        }

    def plane_specs(self) -> tuple:
        p = self.params
        return (
            ("column", "time", None),
            ("column", "src", "uint64"),
            ("sketch_buckets", "src", p["n_sketches"], p["hash_seed"]),
            (
                "pca_residual",
                "src",
                p["n_sketches"],
                p["hash_seed"],
                p["n_bins"],
                p["n_components"],
            ),
        )

    def analyze(self, trace: Trace, planes=None) -> list[Alarm]:
        if len(trace) == 0:
            return []
        p = self.params
        planes = self._plane_cache(trace, planes)
        srcs = planes.get(trace, ("column", "src", "uint64"))
        hasher = self._hasher(p["n_sketches"], p["hash_seed"])
        t_start, t_end = trace.start_time, trace.end_time
        # The residual matrix depends only on the sketch/bin structure,
        # which the tunings share — one plane serves all three configs.
        residual = planes.get(
            trace,
            (
                "pca_residual",
                "src",
                p["n_sketches"],
                p["hash_seed"],
                p["n_bins"],
                p["n_components"],
            ),
        )
        spe = (residual**2).sum(axis=1)
        anomalous_bins = self._threshold_bins(spe, p["threshold"])
        bin_width = max(t_end - t_start, 1e-9) / p["n_bins"]

        alarms: list[Alarm] = []
        buckets = (
            planes.get(
                trace,
                ("sketch_buckets", "src", p["n_sketches"], p["hash_seed"]),
            )
            if anomalous_bins
            else None
        )
        for b in anomalous_bins:
            t0 = t_start + b * bin_width
            t1 = t0 + bin_width
            contributions = residual[b] ** 2
            order = np.argsort(contributions)[::-1]
            window = trace.time_slice(t0, t1)
            mask = np.zeros(len(trace), dtype=bool)
            mask[window.start : window.stop] = True
            for sketch in order[: p["max_sketches_per_bin"]]:
                if contributions[sketch] <= 0:
                    continue
                ips = dominant_keys(
                    srcs,
                    mask,
                    hasher,
                    int(sketch),
                    top=p["max_ips_per_sketch"],
                    engine=self.engine,
                    buckets=buckets,
                )
                for ip in ips:
                    alarms.append(
                        self._alarm(
                            t0,
                            t1,
                            filters=(FeatureFilter(src=ip, t0=t0, t1=t1),),
                            score=float(spe[b]),
                        )
                    )
        return alarms

    @staticmethod
    def _residual_matrix(matrix: np.ndarray, n_components: int) -> np.ndarray:
        """Residual (anomalous-subspace) projection of each row."""
        centered = matrix - matrix.mean(axis=0, keepdims=True)
        # SVD-based PCA; V rows are principal axes in sketch space.
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(n_components, vt.shape[0])
        normal_axes = vt[:k]
        projected = centered @ normal_axes.T @ normal_axes
        return centered - projected

    @staticmethod
    def _threshold_bins(spe: np.ndarray, threshold: float) -> list[int]:
        """Bins with SPE above a robust mean + threshold*std cut."""
        if spe.size == 0:
            return []
        median = float(np.median(spe))
        mad = float(np.median(np.abs(spe - median)))
        scale = 1.4826 * mad if mad > 0 else float(spe.std()) or 1.0
        cut = median + threshold * scale
        return [int(i) for i in np.nonzero(spe > cut)[0]]


#: Tunings used in the experiments (Section 3.2: optimal / sensitive /
#: conservative parameter sets).
PCA_TUNINGS = {
    # Tunings share the sketch/bin structure and the normal-subspace
    # size; only the SPE threshold and the per-bin report budget move,
    # so the three configurations' outputs are comparable.
    "optimal": {},
    "sensitive": {"threshold": 1.5, "max_sketches_per_bin": 3},
    "conservative": {"threshold": 5.0, "max_sketches_per_bin": 1},
}
