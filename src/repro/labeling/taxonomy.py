"""The MAWILab taxonomy (paper Section 5).

Four labels describe the traffic of the archive:

* **anomalous** — accepted by SCANN: abnormal traffic that any
  efficient detector should identify;
* **suspicious** — rejected by SCANN but within relative distance 0.5
  of the decision boundary: probably anomalous, not clearly identified;
* **notice** — rejected with relative distance > 0.5: not anomalous,
  but recorded so every alarm of the combined detectors stays
  traceable;
* **benign** — traffic no detector ever reported.

Only the first three apply to communities; *benign* describes the rest
of the trace and appears in results as the complement.
"""

from __future__ import annotations

from repro.core.strategies import Decision
from repro.errors import LabelingError

TAXONOMY_ANOMALOUS = "anomalous"
TAXONOMY_SUSPICIOUS = "suspicious"
TAXONOMY_NOTICE = "notice"
TAXONOMY_BENIGN = "benign"

#: Code order of the ``"label_assign"`` kernels and the columnar
#: :class:`~repro.labeling.store.LabelStore` taxonomy column.
TAXONOMY_ORDER = (TAXONOMY_ANOMALOUS, TAXONOMY_SUSPICIOUS, TAXONOMY_NOTICE)

#: The relative-distance threshold between suspicious and notice.
SUSPICIOUS_DISTANCE = 0.5


def assign_taxonomy(
    decision: Decision, suspicious_distance: float = SUSPICIOUS_DISTANCE
) -> str:
    """Taxonomy label for one combiner decision.

    For strategies without a relative distance (average/min/max), the
    distance of rejected communities is approximated from ``mu``:
    a ``mu`` close to the 0.5 threshold behaves like a small relative
    distance.  SCANN decisions carry the real metric.
    """
    if decision.accepted:
        return TAXONOMY_ANOMALOUS
    if decision.relative_distance is not None:
        distance = decision.relative_distance
    else:
        threshold = 0.5
        if decision.mu > threshold:
            raise LabelingError(
                "rejected decision with mu above threshold"
            )
        if decision.mu <= 0:
            distance = float("inf")
        else:
            distance = threshold / decision.mu - 1.0
    if distance <= suspicious_distance:
        return TAXONOMY_SUSPICIOUS
    return TAXONOMY_NOTICE


def assign_taxonomy_batch(
    decisions,
    engine="auto",
    suspicious_distance: float = SUSPICIOUS_DISTANCE,
) -> list[str]:
    """Taxonomy labels for a whole decision list at once.

    Columnar twin of :func:`assign_taxonomy`: the decisions' fields are
    packed into three arrays and classified by the engine's
    ``"label_assign"`` kernel in one call (the reference kernel loops
    :func:`assign_taxonomy`, so both engines label identically —
    including raising :class:`~repro.errors.LabelingError` on a
    rejected decision with ``mu`` above threshold).
    """
    import numpy as np

    from repro.engine import resolve_engine

    decisions = list(decisions)
    n = len(decisions)
    if n == 0:
        return []
    accepted = np.fromiter((d.accepted for d in decisions), bool, count=n)
    distance = np.fromiter(
        (
            np.nan if d.relative_distance is None else d.relative_distance
            for d in decisions
        ),
        np.float64,
        count=n,
    )
    mu = np.fromiter((d.mu for d in decisions), np.float64, count=n)
    codes = resolve_engine(engine, what="taxonomy").kernel("label_assign")(
        accepted, distance, mu, suspicious_distance
    )
    return [TAXONOMY_ORDER[int(code)] for code in codes]
