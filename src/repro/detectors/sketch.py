"""Random-projection sketches (hash-based traffic aggregation).

Both the PCA detector (Kanda'10 / Li'06 style) and the Gamma detector
(Dewaele'07) aggregate traffic by hashing an address into a small
number of *sketches* before doing statistics.  Sketching serves two
purposes the paper relies on:

1. it bounds the dimensionality of the monitored signal regardless of
   how many hosts appear, and
2. it lets a detector *invert* a detection back to original traffic
   features — an anomalous sketch contains few enough hosts that the
   dominant ones can be reported (this is how the PCA detector escapes
   the "PCA cannot identify the anomalous flows" critique of
   Ringberg'07, as discussed in Section 3.2).

The hash is a universal multiply-shift scheme seeded per detector
configuration, so different configurations see different random
projections.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import DetectorError

_MERSENNE_PRIME = (1 << 61) - 1


class SketchHasher:
    """Universal hashing of 32-bit keys into ``n_sketches`` buckets."""

    def __init__(self, n_sketches: int, seed: int = 0) -> None:
        if n_sketches <= 0:
            raise DetectorError("n_sketches must be positive")
        rng = np.random.default_rng(seed)
        self.n_sketches = n_sketches
        self._a = int(rng.integers(1, _MERSENNE_PRIME))
        self._b = int(rng.integers(0, _MERSENNE_PRIME))

    def bucket(self, key: int) -> int:
        """Bucket of one key."""
        return ((self._a * key + self._b) % _MERSENNE_PRIME) % self.n_sketches

    def buckets(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized bucket computation for an array of keys."""
        keys = np.asarray(keys, dtype=np.uint64)
        mixed = (self._a * keys.astype(object) + self._b) % _MERSENNE_PRIME
        return np.array([int(v) % self.n_sketches for v in mixed], dtype=np.int64)


def sketch_time_matrix(
    times: np.ndarray,
    keys: np.ndarray,
    hasher: SketchHasher,
    t_start: float,
    t_end: float,
    n_bins: int,
) -> np.ndarray:
    """Packet-count matrix of shape (n_bins, n_sketches).

    Entry ``(t, s)`` counts packets whose timestamp falls in time bin
    ``t`` and whose key hashes to sketch ``s``.
    """
    if n_bins <= 0:
        raise DetectorError("n_bins must be positive")
    span = max(t_end - t_start, 1e-9)
    bins = np.clip(
        ((times - t_start) / span * n_bins).astype(int), 0, n_bins - 1
    )
    buckets = hasher.buckets(keys)
    matrix = np.zeros((n_bins, hasher.n_sketches), dtype=float)
    np.add.at(matrix, (bins, buckets), 1.0)
    return matrix


def dominant_keys(
    keys: np.ndarray,
    mask: np.ndarray,
    hasher: SketchHasher,
    sketch: int,
    top: int = 3,
    min_fraction: float = 0.1,
) -> list[int]:
    """Most frequent keys hashing to ``sketch`` among masked packets.

    Used to invert a sketch-level detection back to concrete addresses:
    return up to ``top`` keys, each accounting for at least
    ``min_fraction`` of the sketch's packets.
    """
    selected = keys[mask]
    if selected.size == 0:
        return []
    in_sketch = [int(k) for k in selected if hasher.bucket(int(k)) == sketch]
    if not in_sketch:
        return []
    counts = Counter(in_sketch)
    total = len(in_sketch)
    result = [
        key
        for key, count in counts.most_common(top)
        if count / total >= min_fraction
    ]
    return result
