"""Stateful detector wrappers for the streaming engine.

Offline detectors are deliberately stateless across traces (that is
what parallelizes archive sweeps).  A sliding-window stream, however,
analyzes many overlapping windows of the *same* traffic, and
recomputing everything from scratch per window throws away two kinds
of state the detectors could carry:

* deterministic per-configuration state that never changes — sketch
  hash seeds (memoized on the detector instance by
  ``Detector._hasher``, which this wrapper keeps alive across window
  advances);
* rolling statistical state — e.g. the KL detector's per-feature
  histogram of the previous window's last time bin, which gives the
  new window's first bin a real predecessor instead of a pinned-zero
  divergence (``KLDetector.analyze_stream``).

:class:`StreamingDetector` owns the carried ``state`` dict for one
configuration and delegates each window to the wrapped detector's
``analyze_stream``.  On the first window the state is empty and every
detector's output is byte-identical to its offline ``analyze`` — the
streaming/offline parity anchor.
"""

from __future__ import annotations

from typing import Sequence

from repro.detectors.base import Alarm, Detector
from repro.net.trace import Trace


class StreamingDetector:
    """One detector configuration plus its carried cross-window state."""

    def __init__(self, detector: Detector) -> None:
        self.detector = detector
        #: Per-configuration carried state; detectors read what the
        #: previous window wrote (see ``Detector.analyze_stream``).
        self.state: dict = {}
        #: Number of windows analyzed so far.
        self.windows_seen = 0

    @property
    def config_name(self) -> str:
        return self.detector.config_name

    def analyze_window(self, trace: Trace) -> list[Alarm]:
        """Analyze one window, advancing the carried state."""
        alarms = self.detector.analyze_stream(trace, self.state)
        self.windows_seen += 1
        return alarms

    def reset(self) -> None:
        """Forget all carried state (start of a new stream)."""
        self.state = {}
        self.windows_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingDetector({self.config_name}, "
            f"windows={self.windows_seen})"
        )


def wrap_ensemble(
    ensemble: Sequence[Detector],
) -> list[StreamingDetector]:
    """Wrap every configuration of an ensemble for streaming."""
    return [StreamingDetector(detector) for detector in ensemble]
