#!/usr/bin/env python3
"""Quickstart: label one synthetic MAWI-like trace.

Generates a 30-second trace with a few injected anomalies, runs the
full MAWILab pipeline (12 detector configurations -> similarity
estimator -> SCANN -> rule mining) and prints the labels, exactly as
the public MAWILab database records them.

Run:  python examples/quickstart.py
"""

from repro.labeling import MAWILabPipeline, labels_to_csv
from repro.mawi import AnomalySpec, WorkloadSpec, generate_trace


def main() -> None:
    # 1. A trace with known injected anomalies (ground truth is
    #    returned separately; the pipeline never sees it).
    spec = WorkloadSpec(
        seed=7,
        duration=30.0,
        anomalies=[
            AnomalySpec("sasser", intensity=1.5),
            AnomalySpec("ping_flood", intensity=1.5),
            AnomalySpec("syn_flood", intensity=1.5),
            AnomalySpec("flash_crowd"),
        ],
    )
    trace, ground_truth = generate_trace(spec)
    print(f"trace: {len(trace)} packets over {trace.duration:.0f}s")
    print("injected:", ", ".join(e.kind for e in ground_truth))
    print()

    # 2. The full pipeline with paper defaults (uniflow granularity,
    #    Simpson similarity, SCANN combiner, 20% rule support).
    pipeline = MAWILabPipeline()
    result = pipeline.run(trace)

    print(
        f"alarms: {len(result.alarms)} from {len(result.config_names)} "
        f"configurations -> {len(result.community_set.communities)} "
        f"communities ({result.community_set.n_single} singles)"
    )
    print()

    # 3. The labels, by taxonomy class.
    for title, records in (
        ("ANOMALOUS (accepted by SCANN)", result.anomalous()),
        ("SUSPICIOUS (rejected, near the boundary)", result.suspicious()),
        ("NOTICE (rejected, far from the boundary)", result.notice()),
    ):
        print(f"== {title}: {len(records)}")
        for record in records[:5]:
            print("  " + record.describe())
        if len(records) > 5:
            print(f"  ... and {len(records) - 5} more")
        print()

    # 4. Database export (CSV; labels_to_xml gives the admd flavour).
    csv = labels_to_csv(result.labels)
    print("CSV export (first 5 rows):")
    for line in csv.splitlines()[:6]:
        print("  " + line)


if __name__ == "__main__":
    main()
