"""Similarity measures between alarm traffic sets.

Section 2.1.2 evaluates three measures to weight similarity-graph
edges; all take the two traffic sets and their intersection size:

* **Simpson index** — |E1 ∩ E2| / min(|E1|, |E2|); 1 when one set is
  included in the other.  The paper's winner, used everywhere by
  default.
* **Jaccard index** — |E1 ∩ E2| / |E1 ∪ E2|.
* **constant** — 1 whenever the sets intersect (unweighted graph).
"""

from __future__ import annotations

from typing import Callable

SimilarityMeasure = Callable[[int, int, int], float]


def simpson(intersection: int, size_a: int, size_b: int) -> float:
    """Simpson (overlap) coefficient.

    >>> simpson(2, 2, 10)   # one alarm included in the other
    1.0
    """
    if intersection <= 0 or size_a == 0 or size_b == 0:
        return 0.0
    return intersection / min(size_a, size_b)


def jaccard(intersection: int, size_a: int, size_b: int) -> float:
    """Jaccard index."""
    union = size_a + size_b - intersection
    if intersection <= 0 or union <= 0:
        return 0.0
    return intersection / union


def constant_measure(intersection: int, size_a: int, size_b: int) -> float:
    """1 if the sets intersect, else 0 (unweighted edges)."""
    return 1.0 if intersection > 0 and size_a > 0 and size_b > 0 else 0.0


SIMILARITY_MEASURES: dict[str, SimilarityMeasure] = {
    "simpson": simpson,
    "jaccard": jaccard,
    "constant": constant_measure,
}


# -- batch (NumPy) variants -------------------------------------------
#
# Each takes parallel integer arrays (intersection sizes, |A| sizes,
# |B| sizes) and returns a float64 weight array.  They compute the same
# IEEE-754 double divisions as the scalar measures above, so the graph
# builder's vectorized path yields bit-identical edge weights.

def simpson_batch(intersection, size_a, size_b):
    """Vectorized :func:`simpson` over aligned arrays."""
    import numpy as np

    denom = np.minimum(size_a, size_b)
    out = np.zeros(len(intersection), dtype=np.float64)
    valid = (intersection > 0) & (denom > 0)
    np.divide(intersection, denom, out=out, where=valid)
    return out


def jaccard_batch(intersection, size_a, size_b):
    """Vectorized :func:`jaccard` over aligned arrays."""
    import numpy as np

    union = size_a + size_b - intersection
    out = np.zeros(len(intersection), dtype=np.float64)
    valid = (intersection > 0) & (union > 0)
    np.divide(intersection, union, out=out, where=valid)
    return out


def constant_batch(intersection, size_a, size_b):
    """Vectorized :func:`constant_measure` over aligned arrays."""
    import numpy as np

    valid = (intersection > 0) & (size_a > 0) & (size_b > 0)
    return valid.astype(np.float64)


BATCH_MEASURES = {
    "simpson": simpson_batch,
    "jaccard": jaccard_batch,
    "constant": constant_batch,
}
