"""Fig. 3 — similarity-estimator sensitivity to traffic granularity.

Regenerates the four panels of paper Fig. 3 over the sampled archive
days:

(a) CDF of the number of single communities per trace;
(b) CDF of community sizes (excluding singles);
(c) CDF of rule support (excluding singles);
(d) distribution of rule degree (excluding singles).

Paper shapes to hold:
* flows (uni or bi) produce substantially fewer single communities
  than packets (Fig. 3a);
* biflows produce the largest communities (Fig. 3b);
* packets produce the most specific rules (highest degree, Fig. 3d),
  bidirectional flows the coarsest.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import GRANULARITY_DATES, run_once
from repro.eval.metrics import cdf_points
from repro.eval.report import format_table
from repro.net.flow import Granularity
from repro.rules.itemsets import transactions_from_flows, transactions_from_packets
from repro.rules.summarize import summarize_transactions

GRANULARITIES = (Granularity.PACKET, Granularity.UNIFLOW, Granularity.BIFLOW)


def _summaries(community_set):
    """Rule summaries of non-single communities."""
    extractor = community_set.extractor
    summaries = []
    for community in community_set.non_single():
        if not community.traffic:
            continue
        if community_set.granularity is Granularity.PACKET:
            packets = [extractor.trace[i] for i in sorted(community.traffic)]
            transactions = transactions_from_packets(packets)
        else:
            transactions = transactions_from_flows(sorted(community.traffic))
        summaries.append(summarize_transactions(transactions))
    return summaries


def test_fig3_granularity(granularity_runs, benchmark):
    def compute():
        stats = {}
        for granularity in GRANULARITIES:
            singles, sizes, supports, degrees = [], [], [], []
            for date in GRANULARITY_DATES:
                community_set = granularity_runs[(date, granularity)]
                singles.append(community_set.n_single)
                sizes.extend(c.size for c in community_set.non_single())
                for summary in _summaries(community_set):
                    supports.append(summary.rule_support)
                    degrees.append(summary.rule_degree)
            stats[granularity] = {
                "singles": singles,
                "sizes": sizes,
                "supports": supports,
                "degrees": degrees,
            }
        return stats

    stats = run_once(benchmark, compute)

    rows = []
    for granularity in GRANULARITIES:
        s = stats[granularity]
        rows.append(
            [
                granularity.value,
                float(np.mean(s["singles"])),
                float(np.mean(s["sizes"])) if s["sizes"] else 0.0,
                float(np.mean(s["supports"])) if s["supports"] else 0.0,
                float(np.mean(s["degrees"])) if s["degrees"] else 0.0,
            ]
        )
    print()
    print(
        format_table(
            ["granularity", "singles/trace", "mean size", "rule support %", "rule degree"],
            rows,
            title="Fig. 3 — granularity sensitivity (means over sampled days)",
        )
    )
    for granularity in GRANULARITIES:
        xs, ps = cdf_points(stats[granularity]["singles"])
        print(f"  CDF singles [{granularity.value}]: " + ", ".join(f"({x:.0f},{p:.2f})" for x, p in zip(xs, ps)))

    packet = stats[Granularity.PACKET]
    uniflow = stats[Granularity.UNIFLOW]
    biflow = stats[Granularity.BIFLOW]

    # Fig 3(a): flows relate more alarms -> fewer singles than packets.
    assert np.mean(uniflow["singles"]) <= np.mean(packet["singles"])
    assert np.mean(biflow["singles"]) <= np.mean(packet["singles"])
    # Fig 3(b): biflow communities at least as large as packet ones.
    assert np.mean(biflow["sizes"]) >= np.mean(packet["sizes"]) * 0.95
    # Fig 3(d): packets give the most specific rules.
    assert np.mean(packet["degrees"]) >= np.mean(biflow["degrees"]) - 0.05
    # Fig 3(c): every granularity keeps decent rule support.
    for granularity in GRANULARITIES:
        assert np.mean(stats[granularity]["supports"]) > 50.0
