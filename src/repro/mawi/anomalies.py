"""Anomaly injectors.

Each injector synthesizes the packets of one anomalous event and a
:class:`GroundTruthEvent` describing it.  The catalogue mirrors the
anomalies the paper's evaluation relies on:

``sasser``            Sasser worm scan — SYNs to ports 1023/5554/9898 tcp.
``blaster``           Blaster/RPC scan — SYNs to port 135 tcp.
``smb_scan``          SMB probing — SYNs to port 445 tcp.
``netbios``           NetBIOS probes — 137/udp and 139/tcp.
``ping_flood``        High-rate ICMP echo to one victim.
``syn_flood``         Spoofed-source SYN flood against one service.
``port_scan``         Vertical SYN scan, one source to one host.
``ddos``              Many sources flooding one victim.
``flash_crowd``       Many legitimate clients hitting one HTTP server
                      (should be labeled "Special", not "Attack").
``elephant_flow``     Bulk transfer on random high ports ("Unknown").
``dns_burst``         Heavy DNS activity ("Special").

The ground-truth category records what the Table-1 heuristics *should*
say about a well-formed community covering the event; the benchmarks
use it to validate the heuristics and to report detection rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import TraceError
from repro.net.filters import FeatureFilter
from repro.net.packet import (
    ACK,
    ICMP_ECHO_REQUEST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PSH,
    SYN,
    Packet,
)

# Ground-truth categories, aligned with Table 1's label groups.
CATEGORY_ATTACK = "attack"
CATEGORY_SPECIAL = "special"
CATEGORY_UNKNOWN = "unknown"


@dataclass
class AnomalySpec:
    """Request to inject one anomaly.

    Attributes
    ----------
    kind:
        Injector name, one of :data:`ANOMALY_INJECTORS`.
    intensity:
        Scales the packet count of the event (1.0 = nominal).
    start, duration:
        Time placement inside the trace; ``start=None`` places the
        event uniformly at random.
    """

    kind: str
    intensity: float = 1.0
    start: float | None = None
    duration: float | None = None


@dataclass
class GroundTruthEvent:
    """What was injected, described independently of the trace.

    ``filters`` designate the injected traffic the same way alarms do,
    so evaluation can reuse the traffic extractor to measure overlap
    between detector output and ground truth.
    """

    kind: str
    category: str
    t0: float
    t1: float
    filters: list[FeatureFilter] = field(default_factory=list)
    description: str = ""
    n_packets: int = 0


def _event_window(spec: AnomalySpec, generator, default_duration: float) -> tuple[float, float]:
    total = generator.spec.duration
    duration = spec.duration if spec.duration is not None else default_duration
    duration = min(duration, total)
    if spec.start is not None:
        start = min(max(spec.start, 0.0), max(total - duration, 0.0))
    else:
        start = float(generator.rng.uniform(0.0, max(total - duration, 1e-9)))
    return start, start + duration


def _scan_like(
    spec: AnomalySpec,
    generator,
    *,
    kind: str,
    ports: list[int],
    proto: int = PROTO_TCP,
    base_packets: int = 350,
    n_sources: int = 1,
    category: str = CATEGORY_ATTACK,
) -> tuple[list[Packet], GroundTruthEvent]:
    """Shared machinery: source(s) probing many destinations on fixed ports."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.5)
    n_packets = max(8, int(base_packets * spec.intensity))
    sources = [generator.pick_attacker() for _ in range(n_sources)]
    packets: list[Packet] = []
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    for t in times:
        src = sources[int(rng.integers(0, len(sources)))]
        dst = generator.pick_victim()
        dport = int(ports[int(rng.integers(0, len(ports)))])
        packets.append(
            Packet(
                time=float(t),
                src=src,
                dst=dst,
                sport=int(rng.integers(1024, 65536)),
                dport=dport,
                proto=proto,
                size=48 if proto == PROTO_TCP else 78,
                tcp_flags=SYN if proto == PROTO_TCP else 0,
            )
        )
    filters = [FeatureFilter(src=s, t0=t0, t1=t1) for s in sources]
    event = GroundTruthEvent(
        kind=kind,
        category=category,
        t0=t0,
        t1=t1,
        filters=filters,
        description=f"{kind} from {n_sources} source(s) on ports {ports}",
        n_packets=len(packets),
    )
    return packets, event


def inject_sasser(spec: AnomalySpec, generator):
    """Sasser worm scan: SYN probes on 1023/5554/9898 tcp (Table 1)."""
    return _scan_like(spec, generator, kind="sasser", ports=[1023, 5554, 9898])


def inject_blaster(spec: AnomalySpec, generator):
    """Blaster-style RPC scan: SYN probes on 135/tcp (Table 1, "RPC")."""
    return _scan_like(spec, generator, kind="blaster", ports=[135])


def inject_smb_scan(spec: AnomalySpec, generator):
    """SMB scan: SYN probes on 445/tcp (Table 1, "SMB")."""
    return _scan_like(spec, generator, kind="smb_scan", ports=[445])


def inject_netbios(spec: AnomalySpec, generator):
    """NetBIOS probing on 137/udp and 139/tcp (Table 1, "NetBIOS")."""
    rng = generator.rng
    tcp_packets, event = _scan_like(
        spec, generator, kind="netbios", ports=[139], base_packets=180
    )
    # Add the UDP name-service half on 137/udp from the same source.
    src = event.filters[0].src
    n_udp = max(4, int(180 * spec.intensity))
    times = np.sort(rng.uniform(event.t0, event.t1, size=n_udp))
    udp_packets = [
        Packet(
            time=float(t),
            src=src,
            dst=generator.pick_victim(),
            sport=137,
            dport=137,
            proto=PROTO_UDP,
            size=78,
        )
        for t in times
    ]
    event.n_packets += len(udp_packets)
    event.description = "netbios probing on 137/udp and 139/tcp"
    return tcp_packets + udp_packets, event


def inject_ping_flood(spec: AnomalySpec, generator):
    """High-rate ICMP echo against one victim (Table 1, "Ping")."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.4)
    src = generator.pick_attacker()
    dst = generator.pick_victim()
    n_packets = max(20, int(700 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = [
        Packet(
            time=float(t), src=src, dst=dst, proto=PROTO_ICMP,
            size=84, icmp_type=ICMP_ECHO_REQUEST,
        )
        for t in times
    ]
    event = GroundTruthEvent(
        kind="ping_flood",
        category=CATEGORY_ATTACK,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(src=src, dst=dst, proto=PROTO_ICMP, t0=t0, t1=t1)],
        description="ICMP echo flood",
        n_packets=len(packets),
    )
    return packets, event


def inject_syn_flood(spec: AnomalySpec, generator):
    """Spoofed-source SYN flood on a web server (Table 1, "Other attacks")."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.3)
    dst = generator.pick_victim()
    dport = 80
    n_packets = max(30, int(900 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = [
        Packet(
            time=float(t),
            src=generator.pick_attacker(),
            dst=dst,
            sport=int(rng.integers(1024, 65536)),
            dport=dport,
            proto=PROTO_TCP,
            size=48,
            tcp_flags=SYN,
        )
        for t in times
    ]
    event = GroundTruthEvent(
        kind="syn_flood",
        category=CATEGORY_ATTACK,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(dst=dst, dport=dport, proto=PROTO_TCP, t0=t0, t1=t1)],
        description=f"SYN flood on port {dport}",
        n_packets=len(packets),
    )
    return packets, event


def inject_port_scan(spec: AnomalySpec, generator):
    """Vertical SYN scan: one source sweeps many ports of one host."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.4)
    src = generator.pick_attacker()
    dst = generator.pick_victim()
    n_packets = max(20, int(500 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = [
        Packet(
            time=float(t),
            src=src,
            dst=dst,
            sport=int(rng.integers(1024, 65536)),
            dport=int(rng.integers(1, 10000)),
            proto=PROTO_TCP,
            size=48,
            tcp_flags=SYN,
        )
        for t in times
    ]
    event = GroundTruthEvent(
        kind="port_scan",
        category=CATEGORY_ATTACK,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(src=src, dst=dst, proto=PROTO_TCP, t0=t0, t1=t1)],
        description="vertical port scan",
        n_packets=len(packets),
    )
    return packets, event


def inject_ddos(spec: AnomalySpec, generator):
    """Distributed flood: many sources sending TCP junk to one victim."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.3)
    dst = generator.pick_victim()
    dport = int(rng.choice([80, 443, 53]))
    n_sources = max(4, int(20 * spec.intensity))
    sources = [generator.pick_attacker() for _ in range(n_sources)]
    n_packets = max(40, int(1100 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = []
    for t in times:
        flags = SYN if rng.random() < 0.7 else ACK
        packets.append(
            Packet(
                time=float(t),
                src=sources[int(rng.integers(0, n_sources))],
                dst=dst,
                sport=int(rng.integers(1024, 65536)),
                dport=dport,
                proto=PROTO_TCP,
                size=60,
                tcp_flags=flags,
            )
        )
    event = GroundTruthEvent(
        kind="ddos",
        category=CATEGORY_ATTACK,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(dst=dst, dport=dport, proto=PROTO_TCP, t0=t0, t1=t1)],
        description=f"DDoS from {n_sources} sources on port {dport}",
        n_packets=len(packets),
    )
    return packets, event


def inject_flash_crowd(spec: AnomalySpec, generator):
    """Flash crowd: many clients fetching from one HTTP server.

    Flag ratios stay normal (full handshakes, mostly ACK/PSH data), so
    Table 1 labels it "Special: Http" — an anomaly that is not an
    attack, exactly the case the paper's taxonomy separates.
    """
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.5)
    server = generator.pick_victim()
    n_clients = max(10, int(70 * spec.intensity))
    packets: list[Packet] = []
    for _ in range(n_clients):
        client = generator.pick_attacker()
        sport = int(rng.integers(1024, 65536))
        n_data = int(rng.integers(6, 20))
        start = float(rng.uniform(t0, max(t0, t1 - 1.0)))
        times = start + np.sort(rng.exponential(0.05, size=n_data + 2).cumsum())
        times = np.clip(times, t0, t1)
        packets.append(Packet(time=float(times[0]), src=client, dst=server,
                              sport=sport, dport=80, proto=PROTO_TCP,
                              size=48, tcp_flags=SYN))
        packets.append(Packet(time=float(times[1]), src=server, dst=client,
                              sport=80, dport=sport, proto=PROTO_TCP,
                              size=48, tcp_flags=SYN | ACK))
        for t in times[2:]:
            forward = rng.random() < 0.3
            packets.append(
                Packet(
                    time=float(t),
                    src=client if forward else server,
                    dst=server if forward else client,
                    sport=sport if forward else 80,
                    dport=80 if forward else sport,
                    proto=PROTO_TCP,
                    size=int(rng.integers(400, 1500)),
                    tcp_flags=ACK | (PSH if rng.random() < 0.7 else 0),
                )
            )
    event = GroundTruthEvent(
        kind="flash_crowd",
        category=CATEGORY_SPECIAL,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(dst=server, dport=80, proto=PROTO_TCP, t0=t0, t1=t1),
                 FeatureFilter(src=server, sport=80, proto=PROTO_TCP, t0=t0, t1=t1)],
        description=f"flash crowd of {n_clients} clients",
        n_packets=len(packets),
    )
    return packets, event


def inject_elephant_flow(spec: AnomalySpec, generator):
    """Bulk transfer on random high ports — P2P-style elephant flow.

    Table 1 has no rule for it, so a community covering it is labeled
    "Unknown"; the archive timeline injects many of these after 2007 to
    reproduce the attack-ratio drop in Fig. 7.
    """
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.7)
    a = generator.pick_attacker()
    b = generator.pick_victim()
    sport = int(rng.integers(10000, 65536))
    dport = int(rng.integers(10000, 65536))
    n_packets = max(50, int(1200 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = []
    for i, t in enumerate(times):
        forward = rng.random() < 0.8
        packets.append(
            Packet(
                time=float(t),
                src=a if forward else b,
                dst=b if forward else a,
                sport=sport if forward else dport,
                dport=dport if forward else sport,
                proto=PROTO_TCP,
                size=1500 if forward else 52,
                tcp_flags=SYN if i == 0 else ACK | PSH,
            )
        )
    event = GroundTruthEvent(
        kind="elephant_flow",
        category=CATEGORY_UNKNOWN,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(src=a, dst=b, sport=sport, dport=dport, t0=t0, t1=t1),
                 FeatureFilter(src=b, dst=a, sport=dport, dport=sport, t0=t0, t1=t1)],
        description="high-volume random-port flow",
        n_packets=len(packets),
    )
    return packets, event


def inject_dns_burst(spec: AnomalySpec, generator):
    """A burst of DNS requests to one resolver ("Special: dns")."""
    rng = generator.rng
    t0, t1 = _event_window(spec, generator, default_duration=generator.spec.duration * 0.3)
    resolver = generator.pick_victim()
    n_packets = max(30, int(600 * spec.intensity))
    times = np.sort(rng.uniform(t0, t1, size=n_packets))
    packets = []
    for t in times:
        client = generator.pick_attacker()
        packets.append(
            Packet(
                time=float(t),
                src=client,
                dst=resolver,
                sport=int(rng.integers(1024, 65536)),
                dport=53,
                proto=PROTO_UDP,
                size=90,
            )
        )
    event = GroundTruthEvent(
        kind="dns_burst",
        category=CATEGORY_SPECIAL,
        t0=t0,
        t1=t1,
        filters=[FeatureFilter(dst=resolver, dport=53, proto=PROTO_UDP, t0=t0, t1=t1)],
        description="DNS request burst",
        n_packets=len(packets),
    )
    return packets, event


ANOMALY_INJECTORS: dict[str, Callable] = {
    "sasser": inject_sasser,
    "blaster": inject_blaster,
    "smb_scan": inject_smb_scan,
    "netbios": inject_netbios,
    "ping_flood": inject_ping_flood,
    "syn_flood": inject_syn_flood,
    "port_scan": inject_port_scan,
    "ddos": inject_ddos,
    "flash_crowd": inject_flash_crowd,
    "elephant_flow": inject_elephant_flow,
    "dns_burst": inject_dns_burst,
}


def inject_anomaly(spec: AnomalySpec, generator):
    """Dispatch one :class:`AnomalySpec` to its injector.

    Returns ``(packets, GroundTruthEvent)``.
    """
    injector = ANOMALY_INJECTORS.get(spec.kind)
    if injector is None:
        raise TraceError(
            f"unknown anomaly kind {spec.kind!r}; "
            f"known: {sorted(ANOMALY_INJECTORS)}"
        )
    return injector(spec, generator)
