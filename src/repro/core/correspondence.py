"""Correspondence analysis (Benzecri), from scratch.

Correspondence analysis (CA) is a multivariate technique for
categorical data: it decomposes a two-way contingency (indicator)
table into a low-dimensional space where rows with similar profiles
sit close together.  SCANN (Merz'99, paper Section 2.2.3) uses it to
factor the detectors' vote table and discard non-discriminating votes
— e.g. a detector that always votes the same way contributes a
constant column, which CA assigns zero inertia.

Implementation: the standard SVD route.

1. ``P = N / n``                        (correspondence matrix)
2. ``r = P 1``, ``c = P^T 1``            (row / column masses)
3. ``S = D_r^{-1/2} (P - r c^T) D_c^{-1/2}``  (standardized residuals)
4. ``S = U Sigma V^T``                   (SVD)
5. row principal coordinates ``F = D_r^{-1/2} U Sigma``

Supplementary rows (never used to fit the axes) are projected through
the transition formula ``f_sup = profile @ D_c^{-1/2} V`` — this is how
SCANN places its two reference points.

All-zero columns are dropped (a vote option nobody ever chose carries
no mass); all-zero rows are rejected as an error, since every
community votes somewhere by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CombinerError

_EPS = 1e-12


class CorrespondenceAnalysis:
    """CA of a non-negative table; rows are observations.

    Parameters
    ----------
    table:
        2-D non-negative array (n_rows, n_cols); typically an indicator
        matrix.
    n_components:
        Number of principal axes retained; ``None`` keeps every axis
        with non-negligible inertia.
    """

    def __init__(self, table: np.ndarray, n_components: int | None = None) -> None:
        table = np.asarray(table, dtype=float)
        if table.ndim != 2:
            raise CombinerError("CA table must be 2-D")
        if table.size == 0:
            raise CombinerError("CA table is empty")
        if (table < 0).any():
            raise CombinerError("CA table must be non-negative")

        # Drop all-zero columns (zero-mass categories).
        col_sums = table.sum(axis=0)
        self.kept_columns = np.nonzero(col_sums > 0)[0]
        if self.kept_columns.size == 0:
            raise CombinerError("CA table has no non-zero column")
        table = table[:, self.kept_columns]

        row_sums = table.sum(axis=1)
        if (row_sums <= 0).any():
            raise CombinerError("CA table has an all-zero row")

        total = table.sum()
        p = table / total
        self.row_masses = p.sum(axis=1)
        self.col_masses = p.sum(axis=0)
        expected = np.outer(self.row_masses, self.col_masses)
        residuals = (p - expected) / np.sqrt(
            np.outer(self.row_masses, self.col_masses) + _EPS
        )
        u, sigma, vt = np.linalg.svd(residuals, full_matrices=False)

        keep = sigma > 1e-9
        if n_components is not None:
            limit = np.zeros_like(keep)
            limit[: min(n_components, keep.size)] = True
            keep &= limit
        self.singular_values = sigma[keep]
        self._u = u[:, keep]
        self._v = vt[keep].T  # (n_cols, k)

        # Row principal coordinates.
        d_r = np.sqrt(self.row_masses) + _EPS
        self.row_coordinates = (self._u / d_r[:, None]) * self.singular_values

    @property
    def n_components(self) -> int:
        return int(self.singular_values.size)

    @property
    def inertia(self) -> np.ndarray:
        """Principal inertias (squared singular values)."""
        return self.singular_values**2

    def project_rows(self, rows: np.ndarray) -> np.ndarray:
        """Project supplementary rows into the principal space.

        ``rows`` is (m, n_cols_original); columns dropped at fit time
        are dropped here too.  Rows are normalized to profiles
        internally; an all-zero supplementary row maps to the origin.
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim == 1:
            rows = rows[None, :]
        rows = rows[:, self.kept_columns]
        sums = rows.sum(axis=1, keepdims=True)
        profiles = np.divide(
            rows, np.where(sums > 0, sums, 1.0)
        )
        d_c = np.sqrt(self.col_masses) + _EPS
        return (profiles / d_c[None, :]) @ self._v
