"""Unit tests for the KL-divergence detector."""

from collections import Counter

import pytest

from repro.detectors.kl import KLDetector, _grown_values, _robust_cut, _symmetric_kl
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.trace import Trace
import numpy as np


@pytest.fixture(scope="module")
def sasser_trace():
    spec = WorkloadSpec(
        seed=66,
        duration=30.0,
        anomalies=[AnomalySpec("sasser", intensity=2.0, start=12.0, duration=8.0)],
    )
    return generate_trace(spec)


class TestSymmetricKL:
    def test_identical_histograms_zero(self):
        h = Counter({1: 10, 2: 5})
        assert _symmetric_kl(h, h, 1e-4) == pytest.approx(0.0, abs=1e-6)

    def test_symmetric(self):
        a = Counter({1: 10, 2: 1})
        b = Counter({1: 1, 2: 10})
        assert _symmetric_kl(a, b, 1e-4) == pytest.approx(
            _symmetric_kl(b, a, 1e-4)
        )

    def test_disjoint_histograms_large(self):
        a = Counter({1: 10})
        b = Counter({2: 10})
        assert _symmetric_kl(a, b, 1e-4) > 1.0

    def test_empty_histogram_zero(self):
        assert _symmetric_kl(Counter(), Counter({1: 3}), 1e-4) == 0.0

    def test_nonnegative(self):
        a = Counter({1: 3, 2: 7, 3: 1})
        b = Counter({1: 5, 2: 2, 4: 4})
        assert _symmetric_kl(a, b, 1e-4) >= 0.0


class TestHelpers:
    def test_robust_cut_above_median(self):
        series = np.array([1.0, 1.1, 0.9, 1.0, 5.0])
        cut = _robust_cut(series, threshold=3.0)
        assert cut > 1.0
        assert 5.0 > cut

    def test_grown_values(self):
        prev = Counter({80: 50, 53: 50})
        curr = Counter({80: 50, 53: 50, 445: 80})
        grown = _grown_values(prev, curr, top=3)
        assert 445 in grown

    def test_grown_values_ignores_shrinkage(self):
        prev = Counter({80: 100})
        curr = Counter({80: 10})
        assert _grown_values(prev, curr, top=3) == set()


class TestDetection:
    def test_empty_trace(self):
        assert KLDetector().analyze(Trace([])) == []

    def test_detects_sasser_ports(self, sasser_trace):
        trace, _ = sasser_trace
        alarms = KLDetector(tuning="sensitive", threshold=1.8).analyze(trace)
        assert alarms
        ports = {
            f.dport for a in alarms for f in a.filters if f.dport is not None
        }
        ips = {f.src for a in alarms for f in a.filters if f.src is not None}
        assert ports & {1023, 5554, 9898} or ips

    def test_alarms_are_partial_tuples(self, sasser_trace):
        trace, _ = sasser_trace
        for alarm in KLDetector(threshold=1.8).analyze(trace):
            (feature_filter,) = alarm.filters
            assert 1 <= feature_filter.degree <= 4

    def test_lift_filter_drops_steady_rules(self):
        from tests.conftest import make_packet

        detector = KLDetector()
        # Current bin: same port-80 mix as the previous bin -> the
        # mined dport=80 rule has lift ~1 and must be dropped.
        steady = [make_packet(time=1.0, src=i, dport=80) for i in range(20)]
        previous = [make_packet(time=0.0, src=i + 100, dport=80) for i in range(20)]
        alarms = detector._mine_alarms(steady, previous, 1.0, 2.0, 1.0)
        assert all(
            a.filters[0].dport != 80 or a.filters[0].degree > 1 for a in alarms
        )

    def test_lift_filter_keeps_new_rules(self):
        from tests.conftest import make_packet

        detector = KLDetector()
        # Port 445 did not exist before -> infinite lift -> kept.
        current = [make_packet(time=1.0, src=7, dst=i, dport=445) for i in range(20)]
        previous = [make_packet(time=0.0, src=i + 100, dport=80) for i in range(20)]
        alarms = detector._mine_alarms(current, previous, 1.0, 2.0, 1.0)
        ports = {a.filters[0].dport for a in alarms}
        assert 445 in ports

    def test_no_duplicate_alarms(self, sasser_trace):
        trace, _ = sasser_trace
        alarms = KLDetector(threshold=1.8).analyze(trace)
        keys = [(a.filters, a.t0, a.t1) for a in alarms]
        assert len(keys) == len(set(keys))

    def test_tiny_trace_no_crash(self):
        from tests.conftest import make_packet

        trace = Trace([make_packet(time=float(i)) for i in range(3)])
        assert KLDetector().analyze(trace) == []
