"""Confidence scores (paper Section 2.2.2).

Running a detector with several parameter sets and measuring the
variability of its output quantifies its parameter sensitivity.  The
confidence score of detector ``d`` for community ``c`` is

    phi_d(c) = (number of d's configurations reporting an alarm in c)
               / (total number of d's configurations)

a continuous value in [0, 1]: 0 means the detector ignores the
community, 1 means every tuning of the detector flags it.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.community import Community
from repro.detectors.base import Alarm
from repro.errors import CombinerError


def configs_by_detector(config_names: Sequence[str]) -> dict[str, list[str]]:
    """Group full configuration names by detector family.

    Config names follow the ``"family/tuning"`` convention.
    """
    grouped: dict[str, list[str]] = {}
    for name in config_names:
        family = name.split("/", 1)[0]
        grouped.setdefault(family, []).append(name)
    return grouped


def confidence_scores(
    community: Community,
    detector_configs: dict[str, list[str]],
) -> dict[str, float]:
    """Per-detector confidence scores for one community.

    Parameters
    ----------
    community:
        The community to score.
    detector_configs:
        Mapping detector family -> list of its configuration names
        (every configuration that *ran*, not only those that alarmed —
        the denominator T_d counts all of them).

    Returns
    -------
    dict
        detector family -> phi in [0, 1].

    Examples
    --------
    The paper's Fig. 2: nine configurations (A, B, C with tunings
    0, 1, 2); community with alarms from A0, A1, B0, B1, B2 gives
    phi_A = 2/3, phi_B = 1, phi_C = 0.
    """
    present = community.configs()
    scores: dict[str, float] = {}
    for detector, configs in detector_configs.items():
        if not configs:
            raise CombinerError(f"detector {detector!r} has no configurations")
        reporting = sum(1 for config in configs if config in present)
        scores[detector] = reporting / len(configs)
    return scores


def vote_vector(
    community: Community, config_names: Sequence[str]
) -> list[int]:
    """Binary votes of every configuration for one community.

    Entry j is 1 iff configuration j has at least one alarm in the
    community.  This is the SCANN input (Section 2.2.3: SCANN
    "considers directly the binary outputs of different
    configurations").
    """
    present = community.configs()
    return [1 if name in present else 0 for name in config_names]


def all_config_names(alarms: Sequence[Alarm]) -> list[str]:
    """Sorted configuration names observed in an alarm list.

    Note: a configuration that raised *no* alarm on a trace does not
    appear here; callers that know the full ensemble should pass the
    ensemble's config list instead so silent configurations still count
    in the denominators.
    """
    return sorted({alarm.config for alarm in alarms})
