"""Resumable daily ingest: archive days into the label database.

MAWILab's public artifact is a database of *daily* label files kept
current as new trace days appear.  :class:`ArchiveScheduler` is that
loop: it walks an archive's dates on a cadence, labels each day once,
and versions the outputs into a
:class:`~repro.labeling.database.LabelDatabase` — with a crash journal
(:class:`IngestJournal`) so a restarted scheduler resumes mid-archive
instead of re-labeling completed days, and an
:class:`~repro.runner.cache.AlarmCache` so even a forced re-run skips
Step 1 (the expensive detection ensemble) on days it has seen.

Failure handling is per-day: a day that raises is retried with
exponential backoff up to ``max_retries`` times, then journaled as
``failed`` and retried again on the next pass — one bad day never
stalls the rest of the archive.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.engine import EngineSpec
from repro.errors import ServeError
from repro.ioutil import write_atomic
from repro.labeling.database import LabelDatabase, LiveLabelIndex
from repro.labeling.warehouse import (
    Warehouse,
    archive_meta,
    warehouse_fingerprint,
)
from repro.runner.cache import AlarmCache
from repro.runner.config import PipelineConfig
from repro.session import LabelingSession


class IngestJournal:
    """Crash-safe record of which archive days are ingested.

    A tiny JSON document (written atomically via
    :func:`repro.ioutil.write_atomic`) mapping each date to its
    ``status`` (``done`` / ``failed``), attempt count, and the
    scheduler *version* it was produced under.  A restarted scheduler
    with the same version skips ``done`` days; a version change (new
    archive, new ensemble, new configuration) invalidates every entry
    so outputs are regenerated.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._days: dict[str, dict] = {}
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except (OSError, ValueError) as exc:
                raise ServeError(
                    f"corrupt ingest journal {self.path}: {exc}"
                ) from exc
            self._days = dict(payload.get("days", {}))

    def entry(self, date: str) -> Optional[dict]:
        return self._days.get(date)

    def is_done(self, date: str, version: str) -> bool:
        entry = self._days.get(date)
        return (
            entry is not None
            and entry.get("status") == "done"
            and entry.get("version") == version
        )

    def record(
        self,
        date: str,
        status: str,
        version: str,
        attempts: int,
        error: Optional[str] = None,
    ) -> None:
        entry = {
            "status": status,
            "version": version,
            "attempts": attempts,
        }
        if error:
            entry["error"] = error
        self._days[date] = entry
        self._flush()

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(
            self.path,
            json.dumps({"days": self._days}, indent=2, sort_keys=True)
            + "\n",
        )

    def dates(self, status: Optional[str] = None) -> list[str]:
        if status is None:
            return sorted(self._days)
        return sorted(
            d for d, e in self._days.items() if e.get("status") == status
        )


@dataclass
class DayOutcome:
    """What happened to one archive day during a scheduler pass."""

    date: str
    status: str  # "done" | "skipped" | "failed"
    attempts: int = 0
    elapsed: float = 0.0
    cache_hit: bool = False
    error: Optional[str] = None
    csv_path: Optional[str] = None

    def describe(self) -> str:
        extra = " (cache hit)" if self.cache_hit else ""
        if self.status == "failed":
            extra = f": {self.error}"
        return f"{self.date}: {self.status}{extra}"


@dataclass
class SchedulerStats:
    """Counters across every pass of one scheduler instance."""

    passes: int = 0
    done: int = 0
    skipped: int = 0
    failed: int = 0
    cache_hits: int = 0
    elapsed: float = 0.0
    outcomes: list[DayOutcome] = field(default_factory=list)


class ArchiveScheduler:
    """Walk archive days into the label database, resumably.

    Parameters
    ----------
    archive:
        Anything with ``fingerprint()`` and ``day(date)`` (the
        :class:`~repro.mawi.archive.SyntheticArchive` contract).
    dates:
        The dates this scheduler is responsible for, in ingest order.
    database:
        Target :class:`~repro.labeling.database.LabelDatabase` (or a
        root path string).
    session:
        Optional shared :class:`~repro.session.LabelingSession`; when
        omitted one is built from ``config``/``engine`` and owned (and
        closed) by the scheduler.
    cache_dir:
        Optional Step 1 alarm-cache directory; with it, a re-labeled
        day (journal wiped, version bumped with same ensemble) skips
        the detection ensemble entirely.
    journal_path:
        Where the :class:`IngestJournal` lives; defaults to
        ``<database root>/ingest-journal.json``.
    index:
        Optional :class:`~repro.labeling.database.LiveLabelIndex` to
        publish each completed day into (the serving daemon's index),
        so scheduled days become queryable without a restart.
    warehouse:
        Optional :class:`~repro.labeling.warehouse.Warehouse` (or root
        path); each completed day is dual-written there as columnar
        segments alongside the CSV, so archived days answer queries
        zero-copy from mmap instead of re-parsing text.
    max_retries:
        Extra attempts per day per pass after the first failure.
    backoff:
        Base delay in seconds between attempts (doubles per retry).
    sleep:
        Injectable sleep (tests pass a recorder to assert backoff
        without waiting).
    version:
        Output version string; defaults to a digest of the archive
        fingerprint, the ensemble fingerprint, and the configuration,
        so any change to the inputs regenerates the outputs.
    """

    def __init__(
        self,
        archive,
        dates: Sequence[str],
        database: LabelDatabase | str,
        *,
        session: Optional[LabelingSession] = None,
        config: Optional[PipelineConfig] = None,
        engine: EngineSpec = None,
        cache_dir: Optional[str] = None,
        journal_path: Optional[str | Path] = None,
        index: Optional[LiveLabelIndex] = None,
        warehouse: Optional[Warehouse | str] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        version: Optional[str] = None,
    ) -> None:
        self.archive = archive
        self.dates = list(dates)
        self.database = (
            database
            if isinstance(database, LabelDatabase)
            else LabelDatabase(database)
        )
        self._owns_session = session is None
        self.session = session or LabelingSession(
            config=config, engine=engine
        )
        self.cache = AlarmCache(cache_dir) if cache_dir else None
        self.index = index
        self.max_retries = max_retries
        self.backoff = backoff
        self.sleep = sleep
        self.journal = IngestJournal(
            journal_path
            if journal_path is not None
            else Path(self.database.root) / "ingest-journal.json"
        )
        self.version = version or self._default_version()
        self.warehouse = (
            warehouse
            if warehouse is None or isinstance(warehouse, Warehouse)
            else Warehouse(warehouse)
        )
        self.warehouse_version: Optional[str] = None
        if self.warehouse is not None:
            # Dual-write target: the warehouse version is keyed by the
            # same digest as the scheduler version, so a recompute under
            # an unchanged configuration lands in the same version.
            self.warehouse_version = self.warehouse.ensure_version(
                self._default_version(),
                ensemble_fingerprint=(
                    self.session.pipeline.ensemble_fingerprint()
                ),
                config=repr(self.session.config),
                archive=archive_meta(self.archive),
            )
        self.stats = SchedulerStats()

    def _default_version(self) -> str:
        return warehouse_fingerprint(
            self.archive.fingerprint(),
            self.session.pipeline.ensemble_fingerprint(),
            repr(self.session.config),
        )

    # -- one pass ------------------------------------------------------

    def pending(self) -> list[str]:
        """Dates still owed under the current version, in order."""
        return [
            d
            for d in self.dates
            if not self.journal.is_done(d, self.version)
        ]

    def run_once(
        self,
        limit: Optional[int] = None,
        progress: Optional[Callable[[DayOutcome], None]] = None,
    ) -> list[DayOutcome]:
        """Ingest every pending day (up to ``limit``); one journal
        entry and one versioned day file per success."""
        outcomes: list[DayOutcome] = []
        pending = self.pending()
        if limit is not None:
            pending = pending[:limit]
        done_before = {
            d for d in self.dates if self.journal.is_done(d, self.version)
        }
        for date in self.dates:
            if date in done_before:
                outcome = DayOutcome(date=date, status="skipped")
                outcomes.append(outcome)
                self.stats.skipped += 1
                if progress:
                    progress(outcome)
                continue
            if date not in pending:
                continue
            outcome = self._ingest_day(date)
            outcomes.append(outcome)
            if outcome.status == "done":
                self.stats.done += 1
                if outcome.cache_hit:
                    self.stats.cache_hits += 1
            else:
                self.stats.failed += 1
            if progress:
                progress(outcome)
        self.stats.passes += 1
        self.stats.outcomes.extend(outcomes)
        return outcomes

    def _ingest_day(self, date: str) -> DayOutcome:
        started = time.perf_counter()
        attempts = 0
        last_error: Optional[str] = None
        while attempts <= self.max_retries:
            if attempts:
                self.sleep(self.backoff * (2 ** (attempts - 1)))
            attempts += 1
            try:
                cache_hit, csv_path = self._label_day(date)
            except Exception as exc:  # noqa: BLE001 - per-day isolation
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            self.journal.record(date, "done", self.version, attempts)
            return DayOutcome(
                date=date,
                status="done",
                attempts=attempts,
                elapsed=time.perf_counter() - started,
                cache_hit=cache_hit,
                csv_path=csv_path,
            )
        self.journal.record(
            date, "failed", self.version, attempts, error=last_error
        )
        return DayOutcome(
            date=date,
            status="failed",
            attempts=attempts,
            elapsed=time.perf_counter() - started,
            error=last_error,
        )

    def _label_day(self, date: str) -> tuple[bool, str]:
        day = self.archive.day(date)
        pipeline = self.session.pipeline
        cache_hit = False
        alarms = None
        key = None
        if self.cache is not None:
            key = AlarmCache.make_key(
                self.archive.fingerprint(),
                date,
                pipeline.ensemble_fingerprint(),
            )
            alarms = self.cache.get(key)
            cache_hit = alarms is not None
        if alarms is None:
            result = pipeline.run(day.trace)
            if self.cache is not None and key is not None:
                self.cache.put(key, result.alarms)
        else:
            result = pipeline.run_with_alarms(day.trace, alarms)
        csv_path = self.database.store_day(date, result)
        if self.warehouse is not None:
            self.warehouse.store_result(
                date, result, version=self.warehouse_version
            )
        if self.index is not None:
            self.index.publish_result(date, result)
        return cache_hit, csv_path

    # -- the loop ------------------------------------------------------

    def run_forever(
        self,
        cadence: float,
        stop: Optional[threading.Event] = None,
        progress: Optional[Callable[[DayOutcome], None]] = None,
    ) -> SchedulerStats:
        """Pass over the archive every ``cadence`` seconds until
        ``stop`` is set (the cron-like serving mode)."""
        stop = stop or threading.Event()
        while not stop.is_set():
            self.run_once(progress=progress)
            stop.wait(cadence)
        return self.stats

    def close(self) -> None:
        """Release the session if this scheduler owns it."""
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "ArchiveScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
