"""Sketch + multi-resolution Gamma detector.

Reimplements the detector of Section 3.2(2) (Dewaele et al.,
SIGCOMM LSAD'07): traffic is hashed into sketches, each sketch's
packet-count process is aggregated at several dyadic time scales and
modeled with a Gamma distribution; sketches whose Gamma parameter
trajectory sits far from an adaptively computed reference are
anomalous.  The hashing is done twice — on source and on destination
addresses — so alarms carry either a source or a destination IP.

Algorithm
---------
1. For key in {src, dst}: hash addresses into ``n_sketches`` buckets.
2. For each sketch, compute packet counts in windows of
   ``base_window`` seconds, then aggregate dyadically over
   ``n_scales`` scales.
3. At each scale fit Gamma(shape, scale) by the method of moments; the
   feature vector of a sketch is ``[log1p(shape_j), log1p(scale_j)]``
   over scales.
4. Reference = element-wise median over sketches; deviation = mean
   absolute z-score using the MAD as the robust scale.  Sketches with
   deviation above ``threshold`` are anomalous.
5. Report the dominant addresses of each anomalous sketch as alarms
   spanning the whole trace (the method is a whole-trace test).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import Alarm, Detector
from repro.detectors.sketch import dominant_keys
from repro.net.filters import FeatureFilter
from repro.net.trace import Trace


class GammaDetector(Detector):
    """Gamma multi-resolution sketch detector (src and dst hashing)."""

    name = "gamma"

    @classmethod
    def default_params(cls) -> dict:
        return {
            "n_sketches": 16,
            "base_window": 0.5,
            "n_scales": 4,
            "threshold": 2.5,
            "hash_seed": 23,
            "max_ips_per_sketch": 3,
        }

    def plane_specs(self) -> tuple:
        p = self.params
        specs = [("column", "time", None)]
        for direction in ("src", "dst"):
            seed = p["hash_seed"] + (0 if direction == "src" else 1)
            specs.extend(
                (
                    ("column", direction, "uint64"),
                    ("sketch_buckets", direction, p["n_sketches"], seed),
                    (
                        "gamma_deviations",
                        direction,
                        p["n_sketches"],
                        seed,
                        p["base_window"],
                        p["n_scales"],
                    ),
                )
            )
        return tuple(specs)

    def analyze(self, trace: Trace, planes=None) -> list[Alarm]:
        if len(trace) == 0:
            return []
        alarms: list[Alarm] = []
        planes = self._plane_cache(trace, planes)
        for direction in ("src", "dst"):
            keys = planes.get(trace, ("column", direction, "uint64"))
            alarms.extend(
                self._analyze_direction(trace, keys, direction, planes)
            )
        return alarms

    def _analyze_direction(
        self,
        trace: Trace,
        keys: np.ndarray,
        direction: str,
        planes,
    ) -> list[Alarm]:
        p = self.params
        seed = p["hash_seed"] + (0 if direction == "src" else 1)
        hasher = self._hasher(p["n_sketches"], seed)
        t_start, t_end = trace.start_time, trace.end_time
        # The whole sketch/scale/Gamma-fit pipeline depends only on the
        # structure the tunings share; the per-sketch deviation vector
        # is one plane serving all three configurations.
        deviations = planes.get(
            trace,
            (
                "gamma_deviations",
                direction,
                p["n_sketches"],
                seed,
                p["base_window"],
                p["n_scales"],
            ),
        )
        mask_all = np.ones(len(trace), dtype=bool)

        alarms: list[Alarm] = []
        anomalous = np.nonzero(deviations > p["threshold"])[0]
        buckets = (
            planes.get(
                trace, ("sketch_buckets", direction, p["n_sketches"], seed)
            )
            if anomalous.size
            else None
        )
        for sketch in anomalous:
            ips = dominant_keys(
                keys,
                mask_all,
                hasher,
                int(sketch),
                top=p["max_ips_per_sketch"],
                engine=self.engine,
                buckets=buckets,
            )
            for ip in ips:
                if direction == "src":
                    feature_filter = FeatureFilter(src=ip, t0=t_start, t1=t_end)
                else:
                    feature_filter = FeatureFilter(dst=ip, t0=t_start, t1=t_end)
                alarms.append(
                    self._alarm(
                        t_start,
                        t_end,
                        filters=(feature_filter,),
                        score=float(deviations[sketch]),
                    )
                )
        return alarms

    @staticmethod
    def _gamma_features(counts: np.ndarray, n_scales: int) -> np.ndarray:
        """Per-sketch feature vectors of Gamma MoM fits across scales.

        Returns an array of shape (n_sketches, 2 * n_scales).
        """
        _n_windows, n_sketches = counts.shape
        features = np.zeros((n_sketches, 2 * n_scales))
        for j in range(n_scales):
            # Dyadic aggregation to scale j.
            agg = counts
            for _ in range(j):
                if agg.shape[0] < 2:
                    break
                trim = agg.shape[0] - (agg.shape[0] % 2)
                agg = agg[:trim].reshape(-1, 2, n_sketches).sum(axis=1)
            mean = agg.mean(axis=0)
            var = agg.var(axis=0)
            # Method of moments: shape = mean^2/var, scale = var/mean.
            with np.errstate(divide="ignore", invalid="ignore"):
                shape = np.where(var > 0, mean**2 / np.maximum(var, 1e-12), 0.0)
                scale = np.where(mean > 0, var / np.maximum(mean, 1e-12), 0.0)
            features[:, 2 * j] = np.log1p(shape)
            features[:, 2 * j + 1] = np.log1p(scale)
        return features

    @staticmethod
    def _deviations(features: np.ndarray) -> np.ndarray:
        """Robust distance of each sketch from the median reference.

        The per-sketch deviation is the *maximum* robust z-score over
        the feature vector: an anomaly typically distorts the Gamma fit
        at one or two scales, and averaging over scales would dilute
        exactly the signal the detector looks for.
        """
        reference = np.median(features, axis=0)
        mad = np.median(np.abs(features - reference), axis=0)
        scale = np.where(mad > 0, 1.4826 * mad, 1.0)
        z = np.abs(features - reference) / scale
        return z.max(axis=1)


#: Tunings for the experiments.
GAMMA_TUNINGS = {
    # Tunings vary the detection threshold only: keeping the sketch
    # structure identical makes the three configurations' outputs
    # nested (conservative detections are a subset of sensitive ones),
    # which is what lets all three vote for the same community.
    "optimal": {},
    "sensitive": {"threshold": 1.8},
    "conservative": {"threshold": 3.5},
}
