"""Table 2 + Fig. 8 — gain/cost of SCANN per detector.

Quantities (Table 2): for SCANN-accepted communities, gain_acc counts
"Attack"-labeled ones and cost_acc the rest; for rejected communities,
gain_rej counts non-attacks and cost_rej the missed attacks.

Paper shapes:
* SCANN rejects far more communities than it accepts (Fig. 8b vs 8c);
* the Gamma detector has a substantial cost_rej share (its true
  positives are hard to corroborate);
* the overall gain_rej is large — most rejected communities are indeed
  not attacks.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.eval.gaincost import GainCost, gain_cost_by_detector
from repro.eval.report import format_table

DETECTORS = ("pca", "gamma", "hough", "kl")


def test_fig8_gain_cost(corpus, benchmark):
    def compute():
        totals = {name: GainCost() for name in (*DETECTORS, "overall")}
        for day in corpus:
            per_detector = gain_cost_by_detector(
                day.result.decisions,
                day.heuristics,
                day.result.community_set.communities,
                detectors=DETECTORS,
            )
            for name, value in per_detector.items():
                totals[name] = totals[name] + value
        return totals

    totals = run_once(benchmark, compute)

    rows = [
        [
            name,
            totals[name].gain_acc,
            totals[name].cost_acc,
            totals[name].gain_rej,
            totals[name].cost_rej,
        ]
        for name in (*DETECTORS, "overall")
    ]
    print()
    print(
        format_table(
            ["detector", "gain_acc", "cost_acc", "gain_rej", "cost_rej"],
            rows,
            title="Table 2 / Fig. 8 — SCANN gain & cost (2001-2009 sample)",
        )
    )

    overall = totals["overall"]
    # Fig. 8: rejected communities far outnumber accepted ones.
    assert overall.rejected > overall.accepted
    # Most rejections are correct (gain_rej dominates cost_rej).
    assert overall.gain_rej > overall.cost_rej
    # Accepting is worthwhile: gain_acc is a solid share of accepts.
    assert overall.gain_acc >= overall.cost_acc * 0.5
    # Per-detector totals each bounded by the overall counts.
    for name in DETECTORS:
        assert totals[name].accepted <= overall.accepted
        assert totals[name].rejected <= overall.rejected
