"""Hough-transform anomaly detector.

Reimplements the detector of Section 3.2(3) (Fontugne & Fukuda, ACM
SAC'11): traffic is rendered as a 2-D picture and anomalies are found
as *lines* via the Hough transform, a classic pattern-recognition
technique.  Alarms are **aggregated sets of flows** — the flows whose
packets produced the detected line's pixels.

Picture model
-------------
Two pictures are built per trace: one with the y-axis a hash of the
source address, one with a hash of the destination address; the x-axis
is time.  A host that is persistently active (a scanner sweeping
victims, a flood source, a flooded victim, an elephant flow endpoint)
draws a *horizontal* line in one of the pictures; a synchronized burst
across many hosts (DDoS) draws a *vertical* line.  The Hough transform
finds both without being told which.

Implementation
--------------
1. Quantize packets into an ``(y_bins, x_bins)`` count image per
   direction; binarize at ``pixel_threshold`` packets per pixel.
2. Accumulate the standard (rho, theta) Hough space over lit pixels.
3. Accept accumulator peaks with at least ``min_votes`` pixels; collect
   the lit pixels within 1 pixel of each accepted line.
4. Map the pixels of each line back to packets, group them into
   unidirectional flows and emit one alarm per line carrying that flow
   set.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import Alarm, Detector
from repro.net.flow import Granularity, uniflow_key
from repro.net.trace import Trace


class HoughDetector(Detector):
    """Line detection on 2-D traffic pictures; reports flow sets."""

    name = "hough"

    @classmethod
    def default_params(cls) -> dict:
        return {
            "x_bins": 48,
            "y_bins": 64,
            "pixel_threshold": 4,
            "min_votes": 14,
            "n_thetas": 8,
            "max_lines": 12,
            "max_keys_per_line": 2,
            "line_contrast": 2.0,
            "whole_trace_min_packets": 400,
            "hash_seed": 37,
        }

    def plane_specs(self) -> tuple:
        p = self.params
        specs = [("column", "time", None), ("hough_x", p["x_bins"])]
        for direction in ("src", "dst"):
            seed = p["hash_seed"] + (0 if direction == "src" else 1)
            specs.extend(
                (
                    ("column", direction, "uint64"),
                    ("sketch_buckets", direction, p["y_bins"], seed),
                    (
                        "hough_pixels",
                        direction,
                        p["x_bins"],
                        p["y_bins"],
                        p["pixel_threshold"],
                        seed,
                    ),
                )
            )
        return tuple(specs)

    def analyze(self, trace: Trace, planes=None) -> list[Alarm]:
        if len(trace) == 0:
            return []
        p = self.params
        planes = self._plane_cache(trace, planes)
        t_start, t_end = trace.start_time, trace.end_time
        span = max(t_end - t_start, 1e-9)
        x = planes.get(trace, ("hough_x", p["x_bins"]))
        alarms: list[Alarm] = []
        for direction in ("src", "dst"):
            seed = p["hash_seed"] + (0 if direction == "src" else 1)
            y = planes.get(
                trace, ("sketch_buckets", direction, p["y_bins"], seed)
            )
            alarms.extend(
                self._analyze_picture(
                    trace, x, y, t_start, span, direction, planes, seed
                )
            )
        return alarms

    def _analyze_picture(
        self,
        trace: Trace,
        x: np.ndarray,
        y: np.ndarray,
        t_start: float,
        span: float,
        direction: str,
        planes,
        seed: int,
    ) -> list[Alarm]:
        p = self.params
        # The quantized picture and its lit pixels are fixed across
        # tunings (only vote thresholds move) — one plane per direction.
        ys, xs = planes.get(
            trace,
            (
                "hough_pixels",
                direction,
                p["x_bins"],
                p["y_bins"],
                p["pixel_threshold"],
                seed,
            ),
        )
        if ys.size == 0:
            return []
        lines = hough_lines(
            xs, ys, n_thetas=p["n_thetas"], min_votes=p["min_votes"],
            max_lines=p["max_lines"],
        )
        alarms: list[Alarm] = []
        bin_width = span / p["x_bins"]
        vectorized = self.engine.vectorized
        for line_pixels in lines:
            if vectorized:
                # Packets whose (y, x) pixel is on the line, via a 2-D
                # lookup image instead of a per-packet set probe.
                line_image = np.zeros((p["y_bins"], p["x_bins"]), dtype=bool)
                line_ys, line_xs = zip(*line_pixels)
                line_image[list(line_ys), list(line_xs)] = True
                indices = np.nonzero(line_image[y, x])[0]
            else:
                pixel_set = set(line_pixels)
                member = np.array(
                    [(int(yy), int(xx)) in pixel_set for yy, xx in zip(y, x)]
                )
                indices = np.nonzero(member)[0]
            if indices.size == 0:
                continue
            # A line pixel aggregates every host hashing to its y bin;
            # retrieving "the original data" (the cited method's final
            # step) means keeping only hosts that actually drew the
            # line.  One alarm per dominant host on the line.
            cutoff = max(
                int(p["min_votes"]), int(0.25 * indices.size)
            )
            if vectorized:
                line_keys = trace.table.column(direction)[indices]
                uniq, first_index, counts = np.unique(
                    line_keys, return_index=True, return_counts=True
                )
                # Count-descending, ties by first appearance — the
                # stable-sort order of the reference branch below.
                order = np.lexsort((first_index, -counts))
                ranked = [
                    (int(uniq[i]), indices[line_keys == uniq[i]])
                    for i in order[: p["max_keys_per_line"]]
                ]
            else:
                per_key: dict[int, list[int]] = {}
                for i in indices:
                    key = int(getattr(trace[int(i)], direction))
                    per_key.setdefault(key, []).append(int(i))
                ranked = sorted(
                    per_key.items(), key=lambda kv: len(kv[1]), reverse=True
                )
            for key, key_indices in ranked[: p["max_keys_per_line"]]:
                if len(key_indices) < cutoff:
                    continue
                x_values = x[key_indices]
                t0 = t_start + int(x_values.min()) * bin_width
                t1 = t_start + (int(x_values.max()) + 1) * bin_width
                if not self._is_transient(trace, key, direction, t0, t1):
                    continue
                if vectorized:
                    codes, flow_keys = planes.get(
                        trace, ("flow_codes", Granularity.UNIFLOW.name)
                    )
                    flows = frozenset(
                        flow_keys[c]
                        for c in np.unique(codes[key_indices])
                    )
                else:
                    flows = frozenset(
                        uniflow_key(trace[i]) for i in key_indices
                    )
                alarms.append(
                    self._alarm(
                        t0,
                        t1,
                        flow_keys=flows,
                        score=float(len(key_indices)),
                    )
                )
        return alarms

    def _is_transient(
        self, trace: Trace, key: int, direction: str, t0: float, t1: float
    ) -> bool:
        """True when the host's activity is concentrated in [t0, t1).

        The cited detector adapts its time interval and does not report
        hosts whose picture line merely reflects a steady baseline
        (every busy server is a permanent line).  We keep a line only
        when the host's packet rate inside the line's window exceeds
        ``line_contrast`` times its rate outside — i.e. the activity is
        transient or bursty, not an always-on baseline.

        Lines covering (nearly) the whole trace are kept when the host
        is intense enough to dominate its picture row; steady
        moderate-rate hosts are dropped.
        """
        contrast = self.params["line_contrast"]
        span = max(trace.end_time - trace.start_time, 1e-9)
        window = max(t1 - t0, 1e-9)
        outside = span - window
        if self.engine.vectorized:
            host = trace.table.column(direction) == key
            if outside <= span * 0.1:
                return (
                    int(host.sum()) >= self.params["whole_trace_min_packets"]
                )
            time = trace.table.time
            total = int(host.sum())
            inside = int((host & (time >= t0) & (time < t1)).sum())
        else:
            if outside <= span * 0.1:
                # Whole-trace line: no outside baseline to compare
                # against; treat as transient only if clearly heavy.
                count = sum(
                    1 for pkt in trace if getattr(pkt, direction) == key
                )
                return count >= self.params["whole_trace_min_packets"]
            inside = 0
            total = 0
            for pkt in trace:
                if getattr(pkt, direction) != key:
                    continue
                total += 1
                if t0 <= pkt.time < t1:
                    inside += 1
        if total == 0:
            return False
        rate_in = inside / window
        rate_out = (total - inside) / outside
        return rate_in >= contrast * max(rate_out, 1e-9)


def hough_lines(
    xs: np.ndarray,
    ys: np.ndarray,
    n_thetas: int = 8,
    min_votes: int = 12,
    max_lines: int = 12,
) -> list[list[tuple[int, int]]]:
    """Standard (rho, theta) Hough transform over lit pixels.

    Parameters
    ----------
    xs, ys:
        Coordinates of lit pixels.
    n_thetas:
        Number of angle steps over [0, pi).
    min_votes:
        Minimum number of pixels on a line for it to be reported.
    max_lines:
        Report at most this many lines (strongest first); pixels
        already claimed by a stronger line do not vote again.

    Returns
    -------
    list of pixel lists
        Each inner list holds the ``(y, x)`` pixels of one detected
        line.
    """
    if xs.size == 0:
        return []
    thetas = np.linspace(0.0, np.pi, n_thetas, endpoint=False)
    cos_t = np.cos(thetas)
    sin_t = np.sin(thetas)
    max_rho = int(np.ceil(np.hypot(xs.max() + 1, ys.max() + 1)))
    # rho can be negative for theta > pi/2; offset into a non-negative index.
    rho_offset = max_rho
    n_rhos = 2 * max_rho + 1

    remaining = np.ones(xs.size, dtype=bool)
    lines: list[list[tuple[int, int]]] = []
    for _ in range(max_lines):
        active = np.nonzero(remaining)[0]
        if active.size < min_votes:
            break
        accumulator = np.zeros((n_rhos, n_thetas), dtype=int)
        # Vote: rho = x cos(theta) + y sin(theta), rounded.
        rho_all = (
            np.outer(xs[active], cos_t) + np.outer(ys[active], sin_t)
        )
        rho_idx = np.round(rho_all).astype(int) + rho_offset
        for t_i in range(n_thetas):
            np.add.at(accumulator[:, t_i], rho_idx[:, t_i], 1)
        peak = np.unravel_index(np.argmax(accumulator), accumulator.shape)
        votes = accumulator[peak]
        if votes < min_votes:
            break
        rho_i, theta_i = int(peak[0]), int(peak[1])
        on_line = np.abs(rho_idx[:, theta_i] - rho_i) <= 1
        members = active[on_line]
        if members.size < min_votes:
            break
        lines.append([(int(ys[i]), int(xs[i])) for i in members])
        remaining[members] = False
    return lines


#: Tunings for the experiments.
HOUGH_TUNINGS = {
    # The picture quantization stays fixed across tunings so the
    # detected lines (and hence the reported flow sets) are comparable;
    # only the vote threshold and the line budget move.
    "optimal": {},
    "sensitive": {"min_votes": 8, "max_lines": 20},
    "conservative": {"min_votes": 20, "max_lines": 6},
}
