"""LabelingSession: one configuration, every run mode, one output.

The unification contract: offline, archive, batch (both transports)
and full-coverage streaming runs of the same session configuration
produce byte-identical label CSVs.  Plus the engine-agnostic alarm
cache: entries written under one engine (or under pre-engine-layer
legacy keys) hit under any other.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.labeling.mawilab import labels_to_csv
from repro.mawi.archive import SyntheticArchive
from repro.runner.cache import AlarmCache
from repro.runner.config import PipelineConfig
from repro.session import LabelingSession

DATE = "2004-06-01"


@pytest.fixture(scope="module")
def archive() -> SyntheticArchive:
    return SyntheticArchive(seed=7, trace_duration=12.0)


@pytest.fixture(scope="module")
def day_trace(archive):
    return archive.day(DATE).trace


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestModeParity:
    def test_archive_and_batch_transports_match_offline(
        self, archive, day_trace
    ):
        session = LabelingSession()
        offline = _sha(labels_to_csv(session.label_trace(day_trace).labels))

        by_archive = session.label_archive(archive, [DATE])
        assert [r.status for r in by_archive.reports] == ["ok"]
        assert by_archive.reports[0].csv_sha256 == offline

        for transport in ("pickle", "shm"):
            shipped = LabelingSession(transport=transport).label_traces(
                [day_trace]
            )
            assert [r.status for r in shipped.reports] == ["ok"]
            assert shipped.reports[0].csv_sha256 == offline, transport

    def test_full_window_stream_matches_offline(self, day_trace):
        from repro.stream import chunk_table

        session = LabelingSession()
        offline = labels_to_csv(session.label_trace(day_trace).labels)
        streamed = session.label_stream(
            chunk_table(day_trace.table, 500),
            window=1e9,
            metadata=day_trace.metadata,
        )
        assert streamed.to_csv() == offline

    def test_engines_agree_through_the_session(self, day_trace):
        outputs = {
            engine: labels_to_csv(
                LabelingSession(engine=engine).label_trace(day_trace).labels
            )
            for engine in ("numpy", "python")
        }
        assert outputs["numpy"] == outputs["python"]

    def test_pooled_shm_matches_serial(self, archive):
        dates = [DATE, "2004-06-02"]
        traces = [archive.day(d).trace for d in dates]
        serial = LabelingSession(workers=1).label_traces(traces)
        pooled = LabelingSession(workers=2, transport="shm").label_traces(
            traces
        )
        assert [r.csv_sha256 for r in serial.reports] == [
            r.csv_sha256 for r in pooled.reports
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_collect_alarms_returns_worker_tables_zero_copy(
        self, archive, day_trace, workers
    ):
        """Workers export their Step 1 alarm tables over shared memory;
        the session collects them into the batch report, equal to an
        in-process detection, with every segment freed afterwards."""
        batch = LabelingSession(workers=workers).label_traces(
            [day_trace], collect_alarms=True
        )
        assert [r.status for r in batch.reports] == ["ok"]
        name = day_trace.metadata.name
        table = batch.alarm_tables[name]
        expected = LabelingSession().pipeline.detect(day_trace)
        assert table.to_alarms() == expected
        # The transport handle was consumed, not leaked into the report
        # (and the JSON rendering stays serializable).
        assert batch.reports[0].alarms_shm is None
        assert "alarms_shm" not in batch.to_json()

    def test_collect_alarms_off_by_default(self, day_trace):
        batch = LabelingSession().label_traces([day_trace])
        assert batch.alarm_tables == {}


class TestSessionConfig:
    def test_engine_override_replaces_config_engine(self):
        session = LabelingSession(
            config=PipelineConfig(engine="numpy"), engine="python"
        )
        assert session.engine.name == "python"
        assert session.config.engine == "python"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            LabelingSession(transport="carrier-pigeon")

    def test_resume_requires_out_dir(self):
        with pytest.raises(ValueError, match="out_dir"):
            LabelingSession(resume=True)

    def test_pipeline_is_built_once(self):
        session = LabelingSession()
        assert session.pipeline is session.pipeline

    def test_export_formats(self, day_trace):
        session = LabelingSession()
        labels = session.label_trace(day_trace).labels
        assert session.export(labels, fmt="csv").startswith("community,")
        assert session.export(labels, fmt="xml").startswith("<?xml")
        with pytest.raises(ValueError, match="format"):
            session.export(labels, fmt="yaml")


class TestEngineAgnosticCache:
    def test_cache_written_under_one_engine_hits_under_the_other(
        self, archive, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        first = LabelingSession(
            config=PipelineConfig(engine="numpy"), cache_dir=cache_dir
        ).label_archive(archive, [DATE])
        assert first.cache_hits == 0

        second = LabelingSession(
            config=PipelineConfig(engine="python"), cache_dir=cache_dir
        ).label_archive(archive, [DATE])
        assert second.cache_hits == 1
        assert (
            second.reports[0].csv_sha256 == first.reports[0].csv_sha256
        )

    def test_legacy_engine_suffixed_keys_migrate_once(
        self, archive, tmp_path
    ):
        """An entry cached under the pre-engine-layer key (engine name
        hashed in) is found, served, and rewritten under the new key."""
        cache_dir = tmp_path / "cache"
        config = PipelineConfig()
        key_parts = (
            archive.fingerprint(),
            DATE,
            config.build_pipeline().ensemble_fingerprint(),
        )

        # Seed the cache the way the old code would have.
        seeded = LabelingSession(
            config=config, cache_dir=str(cache_dir)
        ).label_archive(archive, [DATE])
        assert seeded.cache_misses == 1
        cache = AlarmCache(cache_dir)
        new_key = AlarmCache.make_key(*key_parts)
        legacy_key = AlarmCache.legacy_keys(*key_parts)[0]
        cache.path_for(new_key).rename(cache.path_for(legacy_key))

        # The next run hits through the legacy key...
        migrated = LabelingSession(
            config=config, cache_dir=str(cache_dir)
        ).label_archive(archive, [DATE])
        assert migrated.cache_hits == 1
        # ...and the migration rewrote the entry under the new key.
        assert cache.path_for(new_key).is_file()
        final = LabelingSession(
            config=config, cache_dir=str(cache_dir)
        ).label_archive(archive, [DATE])
        assert final.cache_hits == 1
        assert (
            final.reports[0].csv_sha256 == seeded.reports[0].csv_sha256
        )

    def test_cache_hits_across_transports(self, archive, tmp_path):
        """A cache warmed by the regenerate transport hits when the
        same archive days are shipped as pregenerated traces (given the
        archive fingerprint), and vice versa."""
        from repro.net.trace import Trace, TraceMetadata

        cache_dir = str(tmp_path / "cache")
        warmed = LabelingSession(cache_dir=cache_dir).label_archive(
            archive, [DATE]
        )
        assert warmed.cache_misses == 1

        day = archive.day(DATE).trace
        shipped_trace = Trace.from_table(
            day.table, TraceMetadata(name=DATE, date=DATE)
        )
        for transport in ("pickle", "shm"):
            shipped = LabelingSession(
                cache_dir=cache_dir, transport=transport
            ).label_traces(
                [shipped_trace], fingerprints=[archive.fingerprint()]
            )
            assert shipped.cache_hits == 1, transport
            assert (
                shipped.reports[0].csv_sha256
                == warmed.reports[0].csv_sha256
            )

    def test_shm_segments_bounded_and_freed(self, archive):
        """Shard exports recycle a bounded arena pool — segments are
        pinned and reused across shards, not created per shard — and
        close() unlinks every segment."""
        from multiprocessing import shared_memory

        dates = [DATE, "2004-06-02", "2004-06-03"]
        traces = [archive.day(d).trace for d in dates]
        session = LabelingSession(transport="shm")
        batch = session.label_traces(traces)
        assert all(r.ok for r in batch.reports)
        # Serial shards pipeline through at most a few arena slots; a
        # 3-trace batch must not have allocated 3 segments.
        assert 1 <= len(session._arenas) <= 3
        assert sum(a.allocations for a in session._arenas) >= 1
        names = [a.name for a in session._arenas if a.name]
        assert names, "arena should hold a live recycled segment"
        session.close()
        # close() unlinks every arena segment — nothing leaks.
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert session._arenas == []

    def test_engines_emit_identical_alarm_sets(self, day_trace):
        """The premise the shared key rests on, asserted directly."""
        from repro.labeling.mawilab import MAWILabPipeline

        fast = MAWILabPipeline(engine="numpy")
        reference = MAWILabPipeline(engine="python")
        assert [
            (a.config, a.t0, a.t1, a.filters, a.flow_keys)
            for a in fast.detect(day_trace)
        ] == [
            (a.config, a.t0, a.t1, a.filters, a.flow_keys)
            for a in reference.detect(day_trace)
        ]
