"""The similarity estimator: alarms in, communities out.

Orchestrates Step 2 of the paper's method:

1. :class:`~repro.core.extractor.TrafficExtractor` retrieves the
   traffic designated by each alarm at the chosen granularity;
2. :func:`~repro.core.graph.build_similarity_graph` connects alarms
   whose traffic intersects, weighted by a similarity measure
   (Simpson by default);
3. :func:`~repro.core.louvain.louvain` clusters the graph into
   communities; alarms left alone become *single communities*.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.alarm_table import AlarmTable
from repro.core.community import Community, CommunitySet
from repro.core.extractor import TrafficExtractor
from repro.core.graph import build_similarity_graph
from repro.core.louvain import louvain
from repro.detectors.base import Alarm
from repro.engine import EngineSpec, resolve_engine, resolve_legacy_backend
from repro.net.flow import Granularity
from repro.net.trace import Trace


class SimilarityEstimator:
    """Groups similar alarms into communities.

    Parameters
    ----------
    granularity:
        Traffic granularity for alarm association (uniflow by default —
        the paper's final choice, Section 5).
    measure:
        Similarity measure name ("simpson" / "jaccard" / "constant") or
        a callable.
    edge_threshold:
        Minimum edge weight kept in the graph.
    seed:
        Louvain shuffle seed (fixes the partition).
    resolution:
        Louvain modularity resolution.
    engine:
        Traffic-extraction engine spec (resolved through
        :func:`repro.engine.resolve_engine`).  On a vectorized engine,
        per-alarm traffic flows from the columnar extractor into the
        graph kernel as dense code arrays, and the public ``FrozenSet``
        traffic sets are materialized afterwards for the community
        records.
    graph_engine:
        Similarity-graph construction engine; defaults to ``engine``.
        All graph kernels build identical graphs.
    """

    def __init__(
        self,
        granularity: Granularity = Granularity.UNIFLOW,
        measure: str = "simpson",
        edge_threshold: float = 0.0,
        seed: int = 0,
        resolution: float = 1.0,
        engine: EngineSpec = "auto",
        graph_engine: EngineSpec = None,
        backend: EngineSpec = None,
    ) -> None:
        engine = resolve_legacy_backend(engine, backend, what="estimator")
        self.granularity = granularity
        self.measure = measure
        self.edge_threshold = edge_threshold
        self.seed = seed
        self.resolution = resolution
        self.engine = resolve_engine(engine, what="estimator")
        self.graph_engine = (
            self.engine
            if graph_engine is None
            else resolve_engine(graph_engine, what="graph")
        )

    def build(
        self,
        trace: Trace,
        alarms: Union[Sequence[Alarm], AlarmTable],
        timings: Optional[dict] = None,
    ) -> CommunitySet:
        """Run the estimator on one trace's alarms.

        ``alarms`` may be a plain list or an
        :class:`~repro.core.alarm_table.AlarmTable`; on a vectorized
        engine the table's encoded designation columns feed extraction
        directly (no :class:`Alarm` views), and the resulting
        communities are index vectors over the table.  ``timings``,
        when given, accumulates per-stage wall seconds under the keys
        ``"extract"``, ``"graph"`` and ``"combine"`` (Louvain
        clustering) — the ``repro bench`` instrumentation.
        """
        clock = time.perf_counter
        table: Optional[AlarmTable] = None
        if isinstance(alarms, AlarmTable):
            if self.engine.vectorized:
                table = alarms
            else:
                alarms = alarms.to_alarms()
        else:
            alarms = list(alarms)
        started = clock()
        extractor = TrafficExtractor(
            trace, self.granularity, engine=self.engine
        )
        if extractor.engine.vectorized:
            if table is not None:
                code_sets = extractor.extract_table_codes(table)
            else:
                code_sets = extractor.extract_all_codes(alarms)
            graph_input: Sequence = code_sets
            traffic_sets = [
                extractor.codes_to_traffic(codes) for codes in code_sets
            ]
        else:
            traffic_sets = extractor.extract_all(alarms)
            graph_input = traffic_sets
        if timings is not None:
            timings["extract"] = timings.get("extract", 0.0) + clock() - started
        started = clock()
        graph = build_similarity_graph(
            graph_input,
            measure=self.measure,
            edge_threshold=self.edge_threshold,
            engine=self.graph_engine,
        )
        if timings is not None:
            timings["graph"] = timings.get("graph", 0.0) + clock() - started
        started = clock()
        partition = louvain(
            graph, resolution=self.resolution, seed=self.seed
        )
        communities = self._materialize(
            table if table is not None else alarms, traffic_sets, partition
        )
        if timings is not None:
            timings["combine"] = timings.get("combine", 0.0) + clock() - started
        return CommunitySet(
            communities=communities,
            alarms=table if table is not None else alarms,
            traffic_sets=traffic_sets,
            granularity=self.granularity,
            graph=graph,
            extractor=extractor,
            alarm_table=table,
        )

    @staticmethod
    def _materialize(
        alarms: Union[list[Alarm], AlarmTable],
        traffic_sets: list,
        partition: dict[int, int],
    ) -> list[Community]:
        """Build Community objects from the Louvain partition.

        With an :class:`AlarmTable`, communities stay index vectors:
        their time envelopes come from vectorized column reductions
        and their member alarms are lazy table views.
        """
        members: dict[int, list[int]] = {}
        for alarm_id, label in partition.items():
            members.setdefault(label, []).append(alarm_id)
        table = alarms if isinstance(alarms, AlarmTable) else None
        communities: list[Community] = []
        for new_id, label in enumerate(sorted(members)):
            alarm_ids = tuple(sorted(members[label]))
            traffic = frozenset().union(
                *(traffic_sets[i] for i in alarm_ids)
            )
            if table is not None:
                ids = np.fromiter(alarm_ids, np.int64, count=len(alarm_ids))
                communities.append(
                    Community(
                        id=new_id,
                        alarm_ids=alarm_ids,
                        table=table,
                        traffic=traffic,
                        t0=float(table.t0[ids].min()),
                        t1=float(table.t1[ids].max()),
                    )
                )
                continue
            member_alarms = tuple(alarms[i] for i in alarm_ids)
            t0 = min(a.t0 for a in member_alarms)
            t1 = max(a.t1 for a in member_alarms)
            communities.append(
                Community(
                    id=new_id,
                    alarm_ids=alarm_ids,
                    alarms=member_alarms,
                    traffic=traffic,
                    t0=t0,
                    t1=t1,
                )
            )
        return communities
