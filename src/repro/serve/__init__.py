"""The serving layer: the labeling pipeline as a long-lived daemon.

MAWILab the artifact is a *continuously published* label database;
this package promotes the one-shot :class:`~repro.session.LabelingSession`
into that always-on shape:

* :mod:`repro.serve.daemon` — :class:`LabelingService`, the front door
  accepting many concurrent packet feeds with bounded-ring
  backpressure, sharded over the session's persistent worker pool;
* :mod:`repro.serve.scheduler` — :class:`ArchiveScheduler`, the
  resumable daily-ingest loop walking archive days into the
  :class:`~repro.labeling.database.LabelDatabase` with a crash journal;
* :mod:`repro.serve.http` — the stdlib-only HTTP/JSON surface
  (``/labels``, ``/feeds``, ``/health``, ``/metrics``) over the
  :class:`~repro.labeling.database.LiveLabelIndex`.
"""

from repro.serve.daemon import Feed, LabelingService
from repro.serve.http import LabelServer, rows_to_table, table_to_rows
from repro.serve.scheduler import ArchiveScheduler, DayOutcome, IngestJournal

__all__ = [
    "ArchiveScheduler",
    "DayOutcome",
    "Feed",
    "IngestJournal",
    "LabelServer",
    "LabelingService",
    "rows_to_table",
    "table_to_rows",
]
