"""Detector interface and the alarm model.

An :class:`Alarm` is "a set of traffic features that designates a
particular traffic identified by a detector" (paper Section 2.1.1).
Two designation mechanisms cover all four detectors:

* ``filters`` — a list of :class:`~repro.net.filters.FeatureFilter`
  (partial header matches within a time window); used by the PCA,
  Gamma and KL detectors.
* ``flow_keys`` — an explicit set of unidirectional
  :class:`~repro.net.flow.FlowKey`; used by the Hough detector, whose
  native output is an aggregated set of flows.

An alarm may carry both; the associated traffic is the union.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.engine import EngineSpec, resolve_engine
from repro.errors import DetectorError, EngineError
from repro.net.filters import FeatureFilter
from repro.net.flow import FlowKey
from repro.net.trace import Trace


@dataclass(frozen=True)
class Alarm:
    """One alarm emitted by one detector configuration.

    Attributes
    ----------
    detector:
        Detector family name ("pca", "gamma", "hough", "kl").
    config:
        Full configuration id, e.g. ``"pca/sensitive"``.
    t0, t1:
        Time window (half-open) the alarm covers.
    filters:
        Feature filters designating the traffic (may be empty).
    flow_keys:
        Explicit uniflow keys designating the traffic (may be empty).
    score:
        Detector-specific anomaly score (only used for reporting).
    """

    detector: str
    config: str
    t0: float
    t1: float
    filters: tuple[FeatureFilter, ...] = ()
    flow_keys: frozenset = frozenset()
    score: float = 0.0

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise DetectorError(f"alarm with negative window [{self.t0}, {self.t1})")
        if not self.filters and not self.flow_keys:
            raise DetectorError("alarm designates no traffic")

    def describe(self) -> str:
        """Short human-readable form.

        Always leads with the full configuration id (falling back to
        the detector family when a bare family name was stamped in) so
        every rendering carries the time window's detector config.  An
        alarm designating traffic through both filters and flow keys is
        a *union* of the two, rendered with an explicit ``∪``; an alarm
        whose designation is empty-handed renders that state explicitly
        rather than as a blank.
        """
        config = self.config or self.detector or "?"
        parts = [f.describe() for f in self.filters]
        if self.flow_keys:
            parts.append(f"{len(self.flow_keys)} flows")
        body = " ∪ ".join(parts) if parts else "(empty traffic union)"
        return f"[{config}] {self.t0:.1f}-{self.t1:.1f}s {body}"


@dataclass(frozen=True)
class Configuration:
    """A detector with one fixed parameter set.

    The paper calls "configuration" the pair (detector, parameter set);
    confidence scores are computed per detector over its
    configurations.  ``tuning`` is one of ``"optimal"``,
    ``"sensitive"``, ``"conservative"``.
    """

    detector: str
    tuning: str
    params: tuple = ()  # (name, value) pairs; hashable for use as dict key

    @property
    def name(self) -> str:
        return f"{self.detector}/{self.tuning}"

    def params_dict(self) -> dict:
        return dict(self.params)


class Detector(abc.ABC):
    """Base class: analyze one trace, return alarms.

    Subclasses are stateless across traces — every :meth:`analyze`
    call is independent, which is what lets the archive sweeps
    parallelize trivially and keeps configurations comparable.
    """

    #: Family name; subclasses override.
    name: str = "base"

    def __init__(
        self, tuning: str = "optimal", engine: EngineSpec = "auto", **params
    ) -> None:
        if "backend" in params:
            from repro.engine import resolve_legacy_backend

            engine = resolve_legacy_backend(
                engine, params.pop("backend"), what=self.name
            )
        self.tuning = tuning
        #: Feature-path engine: a vectorized engine reads the trace's
        #: columnar table, the reference engine scans packet objects.
        #: All engines emit identical alarms; the engine is
        #: deliberately *not* a detector parameter so it never enters
        #: ensemble fingerprints or alarm-cache keys derived from them.
        try:
            self.engine = resolve_engine(engine, what=self.name)
        except EngineError as exc:
            raise DetectorError(str(exc)) from None
        self.params = dict(self.default_params())
        unknown = set(params) - set(self.params)
        if unknown:
            raise DetectorError(
                f"{self.name}: unknown parameters {sorted(unknown)}"
            )
        self.params.update(params)

    @classmethod
    @abc.abstractmethod
    def default_params(cls) -> dict:
        """Default parameter set (the "optimal" tuning)."""

    @property
    def config_name(self) -> str:
        return f"{self.name}/{self.tuning}"

    @abc.abstractmethod
    def analyze(self, trace: Trace, planes=None) -> list[Alarm]:
        """Analyze one trace and return the alarms.

        ``planes`` optionally supplies a
        :class:`~repro.detectors.planes.PlaneCache` so sibling
        configurations share derived feature arrays; ``None`` resolves
        the trace-attached cache (see :meth:`_plane_cache`).
        """

    def analyze_table(self, trace: Trace, planes=None):
        """Analyze one trace, batch-emitting into an alarm table.

        The columnar twin of :meth:`analyze`: one
        :class:`~repro.core.alarm_table.AlarmTable` whose rows are this
        configuration's alarms in emission order, encoded through the
        engine's ``"alarm_codes"`` kernel.  The default implementation
        wraps :meth:`analyze`, so every detector batch-emits without
        per-detector code; the table's lazy views are the very alarm
        objects the detector produced.
        """
        from repro.core.alarm_table import AlarmTable

        # Only forward planes when given: third-party subclasses with
        # the pre-plane `analyze(self, trace)` signature stay valid.
        alarms = (
            self.analyze(trace)
            if planes is None
            else self.analyze(trace, planes=planes)
        )
        return AlarmTable.from_alarms(alarms, engine=self.engine)

    def analyze_stream(
        self, trace: Trace, state: dict, planes=None
    ) -> list[Alarm]:
        """Analyze one *window* of a stream, carrying ``state`` across.

        ``state`` is a per-configuration dict owned by the caller
        (see :class:`~repro.detectors.streaming.StreamingDetector`);
        detectors read what the previous window left and write what the
        next window should see.  The default implementation ignores the
        state and delegates to :meth:`analyze`, which keeps the
        stateless detectors correct; detectors with cross-window
        baselines (e.g. KL's histogram baseline) override this.

        With an empty ``state`` (first window) every override must emit
        exactly :meth:`analyze`'s alarms — that is what makes streaming
        output byte-identical to the offline pipeline when one window
        covers the whole trace.
        """
        if planes is None:
            return self.analyze(trace)
        return self.analyze(trace, planes=planes)

    def plane_specs(self) -> tuple:
        """Feature-plane specs this configuration derives from a trace.

        Used by the fan-out parent to precompute and export the
        ensemble's shared planes, and by the streaming engine to know
        which histogram/bucket planes to maintain incrementally.  The
        specs follow the vectorized engine's plane usage (the export
        and streaming paths are vectorized-only); the reference engine
        simply recomputes.  Detectors without shareable planes return
        an empty tuple.
        """
        return ()

    def _plane_cache(self, trace: Trace, planes):
        """``planes`` if given, else the trace-attached shared cache."""
        if planes is not None:
            return planes
        from repro.detectors.planes import plane_cache_for

        return plane_cache_for(trace, self.engine)

    def _hasher(self, n_sketches: int, seed: int):
        """Process-wide memoized sketch hasher.

        Delegates to :func:`~repro.detectors.sketch.shared_hasher`:
        hashers are deterministic in ``(n_sketches, seed)``, so every
        detector instance — across configurations, streaming windows
        and the feature-plane kernels — shares one object per key.
        """
        from repro.detectors.sketch import shared_hasher

        return shared_hasher(n_sketches, seed)

    def _alarm(
        self,
        t0: float,
        t1: float,
        filters: tuple[FeatureFilter, ...] = (),
        flow_keys: Optional[frozenset] = None,
        score: float = 0.0,
    ) -> Alarm:
        """Convenience constructor stamping detector/config names."""
        return Alarm(
            detector=self.name,
            config=self.config_name,
            t0=t0,
            t1=t1,
            filters=filters,
            flow_keys=flow_keys or frozenset(),
            score=score,
        )
