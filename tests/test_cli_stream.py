"""CLI tests for the `stream` subcommand.

The acceptance anchor lives here: `repro stream` with a window
covering the whole trace writes a byte-identical label CSV to
`repro label` on the same pcap, for both execution engines.
"""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def day_pcap(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("stream") / "day.pcap")
    assert (
        main(
            [
                "generate",
                "--seed",
                "7",
                "--duration",
                "12",
                "--anomaly",
                "sasser",
                "--out",
                path,
            ]
        )
        == 0
    )
    return path


class TestStreamCommand:
    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_full_window_byte_matches_label(
        self, day_pcap, tmp_path, engine
    ):
        ref = tmp_path / f"ref-{engine}.csv"
        got = tmp_path / f"stream-{engine}.csv"
        assert (
            main(
                ["label", day_pcap, "--engine", engine, "--out", str(ref)]
            )
            == 0
        )
        assert (
            main(
                [
                    "stream",
                    day_pcap,
                    "--window",
                    "1000000",
                    "--engine",
                    engine,
                    "--out",
                    str(got),
                ]
            )
            == 0
        )
        assert got.read_bytes() == ref.read_bytes()

    def test_windowed_run_reports_progress(self, day_pcap, capsys):
        assert (
            main(
                ["stream", day_pcap, "--window", "4", "--hop", "2"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "window#0" in captured.err
        assert "pkt/s" in captured.err
        assert captured.out.startswith("community,taxonomy")

    def test_xml_output_well_formed(self, day_pcap, capsys):
        import xml.etree.ElementTree as ET

        assert (
            main(
                [
                    "stream",
                    day_pcap,
                    "--window",
                    "1000000",
                    "--format",
                    "xml",
                ]
            )
            == 0
        )
        root = ET.fromstring(capsys.readouterr().out)
        assert root.tag == "admd"

    def test_rejects_bad_hop_cleanly(self, day_pcap, capsys):
        assert (
            main(
                ["stream", day_pcap, "--window", "4", "--hop", "8"]
            )
            == 2
        )
        assert "error: hop" in capsys.readouterr().err

    def test_rejects_packet_granularity(self, day_pcap, capsys):
        assert (
            main(
                ["stream", day_pcap, "--granularity", "packet"]
            )
            == 2
        )
        assert "not streamable" in capsys.readouterr().err

    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["stream", "x.pcap"])
        assert args.window == 60.0
        assert args.hop is None
        assert args.chunk == 8192
        assert args.engine == "auto"
