"""Detector sensitivity sweeps (ROC-style curves).

The paper motivates confidence scores by the detectors' parameter
sensitivity: "running a detector with several parameter sets and
measuring the variability of its output quantifies its parameter
sensitivity" (Section 2.2.2).  This module measures that variability
directly: sweep one parameter of a detector over a grid and score each
setting against ground truth, yielding the recall/precision trade-off
curve that the optimal/sensitive/conservative tunings sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.eval.groundtruth import score_detector
from repro.mawi.anomalies import GroundTruthEvent
from repro.net.flow import Granularity
from repro.net.trace import Trace


@dataclass
class SweepPoint:
    """One parameter setting's aggregate score."""

    value: float
    recall: float
    precision: float
    n_alarms: int


@dataclass
class SweepResult:
    """A full sensitivity sweep of one detector parameter."""

    detector: str
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def best_by_f1(self) -> SweepPoint:
        """The sweep point with the best F1 score."""
        if not self.points:
            raise ValueError("empty sweep")

        def f1(point: SweepPoint) -> float:
            if point.recall + point.precision == 0:
                return 0.0
            return (
                2 * point.recall * point.precision
                / (point.recall + point.precision)
            )

        return max(self.points, key=f1)

    def to_rows(self) -> list[list]:
        return [
            [p.value, p.recall, p.precision, p.n_alarms] for p in self.points
        ]


def _score_grid_chunk(payload: tuple) -> list[SweepPoint]:
    """Score a chunk of grid values (module-level for pool workers).

    Chunking keeps per-chunk payloads small; pooled sweeps additionally
    ship each workload trace as a zero-copy shared-memory handle
    (attached here, once per chunk) instead of pickling the packet
    arrays into every chunk's task.
    """
    (
        detector_cls,
        parameter,
        values,
        fixed_params,
        engine,
        workloads,
        shipped,
        granularity,
        min_overlap,
    ) = payload
    attachments = []
    if shipped is not None:
        from repro.net.trace import Trace

        workloads = []
        for handle, metadata, events in shipped:
            attached = handle.attach()
            attachments.append(attached)
            workloads.append(
                (Trace.from_table(attached.table, metadata), events)
            )
    try:
        points = []
        for value in values:
            params = dict(fixed_params)
            params[parameter] = value
            detector = detector_cls(engine=engine, **params)
            recalls, precisions, alarms = [], [], 0
            for trace, events in workloads:
                score = score_detector(
                    detector,
                    trace,
                    events,
                    granularity=granularity,
                    min_overlap=min_overlap,
                )
                recalls.append(score.recall)
                precisions.append(score.precision)
                alarms += score.n_objects
            n = max(len(workloads), 1)
            points.append(
                SweepPoint(
                    value=float(value),
                    recall=sum(recalls) / n,
                    precision=sum(precisions) / n,
                    n_alarms=alarms,
                )
            )
        return points
    finally:
        del workloads
        for attached in attachments:
            attached.close()


def sweep_parameter(
    detector_cls,
    parameter: str,
    values: Sequence[float],
    workloads: Sequence[tuple[Trace, Sequence[GroundTruthEvent]]],
    granularity: Granularity = Granularity.UNIFLOW,
    min_overlap: float = 0.2,
    workers: int = 1,
    engine: str = "auto",
    **fixed_params,
) -> SweepResult:
    """Sweep ``parameter`` of ``detector_cls`` over ``values``.

    Parameters
    ----------
    detector_cls:
        A :class:`~repro.detectors.base.Detector` subclass.
    parameter:
        Name of the parameter to sweep (must exist in the detector's
        defaults).
    values:
        Grid of values.
    workloads:
        ``(trace, events)`` pairs; scores are averaged over them.
    workers:
        Process-pool size for scoring grid values concurrently
        (``<= 1`` keeps the sweep in-process).  Grid points are
        independent, so results are identical at any pool size.  With
        a pool, each workload trace is exported once to a shared-memory
        segment and every chunk attaches it zero-copy — chunk payloads
        stay O(grid), not O(grid x corpus).
    engine:
        Execution-engine spec applied to every swept detector.
    fixed_params:
        Other parameter overrides held constant during the sweep.

    Returns
    -------
    SweepResult
        One :class:`SweepPoint` per grid value.
    """
    from repro.runner.pool import parallel_map

    workloads = [(trace, list(events)) for trace, events in workloads]
    values = list(values)
    n_chunks = min(max(workers, 1), len(values)) or 1
    chunks = [values[i::n_chunks] for i in range(n_chunks)]

    shipped = None
    handles = []
    if workers > 1:
        from repro.runner.shm import export_table

        shipped = []
        for trace, events in workloads:
            handle = export_table(trace.table)
            handles.append(handle)
            shipped.append((handle, trace.metadata, events))
    payloads = [
        (
            detector_cls,
            parameter,
            chunk,
            fixed_params,
            engine,
            None if shipped is not None else workloads,
            shipped,
            granularity,
            min_overlap,
        )
        for chunk in chunks
    ]
    try:
        chunk_points = parallel_map(
            _score_grid_chunk, payloads, workers=workers
        )
    finally:
        for handle in handles:
            handle.unlink()
    # Unstripe back to input order (chunk i holds values[i::n_chunks]).
    points: list[SweepPoint] = [None] * len(values)  # type: ignore[list-item]
    for i, chunk_result in enumerate(chunk_points):
        points[i::n_chunks] = chunk_result
    return SweepResult(
        detector=detector_cls.name, parameter=parameter, points=points
    )
