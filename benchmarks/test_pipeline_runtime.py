"""Section 6 — runtime of the full pipeline on one trace.

The paper reports that combining alarms for one 15-minute MAWI trace
takes a few minutes, compatible with real-time analysis.  This
benchmark times the whole 4-step pipeline (12 detector configurations,
similarity estimator, SCANN, rule mining) on one synthetic archive day
and asserts it stays well inside real time (trace duration).
"""

from __future__ import annotations

import time

from repro.core.extractor import TrafficExtractor
from repro.core.graph import build_similarity_graph
from repro.detectors.registry import run_ensemble
from repro.labeling.mawilab import MAWILabPipeline
from repro.net.flow import Granularity


def test_pipeline_runtime(archive, benchmark):
    day = archive.day("2005-06-01")
    pipeline = MAWILabPipeline()

    result = benchmark(pipeline.run, day.trace)

    assert result.labels
    # Real-time capable: mean runtime below the trace duration.
    assert benchmark.stats["mean"] < day.trace.duration


def test_combiner_runtime_excluding_detectors(archive, benchmark):
    """Steps 2-4 only (the paper's 'few minutes to combine alarms')."""
    day = archive.day("2005-06-01")
    pipeline = MAWILabPipeline()
    alarms = []
    for detector in pipeline.ensemble:
        alarms.extend(detector.analyze(day.trace))

    result = benchmark(pipeline.run_with_alarms, day.trace, alarms)

    assert result.labels
    assert benchmark.stats["mean"] < day.trace.duration


def test_similarity_graph_build_runtime(archive, benchmark):
    """Vectorized graph construction vs the pure-Python reference."""
    day = archive.day("2005-06-01")
    alarms = run_ensemble(day.trace)
    traffic_sets = TrafficExtractor(
        day.trace, Granularity.UNIFLOW
    ).extract_all(alarms)

    graph = benchmark(
        build_similarity_graph,
        traffic_sets,
        edge_threshold=0.1,
        engine="numpy",
    )

    # Best-of-3 for the reference so one slow outlier can't flatter the
    # comparison, plus 1.5x slack against shared-runner noise; the
    # vectorized path is ~3x faster, so real regressions still trip it.
    reference_elapsed = []
    for _ in range(3):
        t0 = time.perf_counter()
        reference = build_similarity_graph(
            traffic_sets, edge_threshold=0.1, engine="python"
        )
        reference_elapsed.append(time.perf_counter() - t0)
    assert graph.adjacency == reference.adjacency
    assert benchmark.stats["mean"] <= 1.5 * min(reference_elapsed)
