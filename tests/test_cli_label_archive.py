"""CLI integration tests for the `label-archive` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner import worker as worker_module


@pytest.fixture
def out_dir(tmp_path):
    return tmp_path / "out"


def _label_archive(out_dir, *extra: str) -> int:
    return main(
        [
            "label-archive",
            "--seed",
            "7",
            "--duration",
            "15",
            "--start",
            "2004-06-01",
            "--months",
            "2",
            "--out-dir",
            str(out_dir),
            *extra,
        ]
    )


def test_label_archive_writes_csvs_and_report(out_dir, tmp_path, capsys):
    code = _label_archive(out_dir, "--cache-dir", str(tmp_path / "cache"))
    assert code == 0
    assert (out_dir / "labels-2004-06-01.csv").is_file()
    assert (out_dir / "labels-2004-07-01.csv").is_file()
    header = (out_dir / "labels-2004-06-01.csv").read_text().splitlines()[0]
    assert header.startswith("community,taxonomy,")
    payload = json.loads((out_dir / "report.json").read_text())
    assert payload["n_completed"] == 2
    assert payload["n_failed"] == 0
    assert payload["cache_misses"] == 2
    out = capsys.readouterr().out
    assert "2004-06-01" in out and "2004-07-01" in out


def test_label_archive_explicit_dates_and_workers(out_dir):
    code = _label_archive(
        out_dir,
        "--date",
        "2005-03-01",
        "--date",
        "2005-03-02",
        "--workers",
        "2",
    )
    assert code == 0
    assert (out_dir / "labels-2005-03-01.csv").is_file()
    assert (out_dir / "labels-2005-03-02.csv").is_file()


def test_label_archive_resume_skips_existing(out_dir):
    assert _label_archive(out_dir) == 0
    first = (out_dir / "labels-2004-06-01.csv").read_bytes()
    assert _label_archive(out_dir, "--resume") == 0
    payload = json.loads((out_dir / "report.json").read_text())
    assert payload["n_skipped"] == 2
    assert payload["n_completed"] == 0
    assert (out_dir / "labels-2004-06-01.csv").read_bytes() == first


def test_label_archive_failure_sets_exit_code(out_dir, monkeypatch, capsys):
    def boom(task):
        raise RuntimeError("worker exploded")

    monkeypatch.setattr(worker_module, "_run_task_inner", boom)
    code = _label_archive(out_dir)
    assert code == 1
    payload = json.loads((out_dir / "report.json").read_text())
    assert payload["n_failed"] == 2
    assert "worker exploded" in capsys.readouterr().out
