"""Execution-engine layer: kernel registries, capabilities, scratch.

Public face of :mod:`repro.engine.core`.  Everything that used to take
a loose ``backend: str`` parameter now takes an *engine spec* — an
:class:`Engine` instance, a registered name (``"numpy"``,
``"python"``), the ``"auto"`` alias, or ``None`` — and resolves it
through :func:`resolve_engine`.  Paired kernel implementations are
registered per engine in :mod:`repro.engine.kernels` (loaded lazily on
first kernel access) and compared by the table-driven parity suite in
``tests/test_engine_parity.py``.
"""

from repro.engine.core import (
    ENGINE_ALIASES,
    KERNEL_OPS,
    NUMPY_ENGINE,
    PYTHON_ENGINE,
    Engine,
    EngineSpec,
    ScratchAllocator,
    auto_engine,
    available_engines,
    engine_pairs,
    get_engine,
    register_engine,
    resolve_engine,
    resolve_legacy_backend,
)
from repro.errors import EngineError

__all__ = [
    "ENGINE_ALIASES",
    "KERNEL_OPS",
    "NUMPY_ENGINE",
    "PYTHON_ENGINE",
    "Engine",
    "EngineError",
    "EngineSpec",
    "ScratchAllocator",
    "auto_engine",
    "available_engines",
    "engine_pairs",
    "get_engine",
    "register_engine",
    "resolve_engine",
    "resolve_legacy_backend",
]
