"""Columnar alarm storage: the struct-of-arrays twin of :class:`Alarm`.

An :class:`AlarmTable` is to alarms what
:class:`~repro.net.table.PacketTable` is to packets: one NumPy array
per alarm field, with :class:`~repro.detectors.base.Alarm` objects
materialized lazily (and cached) only where object-level code still
needs them.  Everything downstream of Step 1 — similarity estimation,
community detection, the acceptance heuristics — can read the columns
directly: time spans for window eviction and community envelopes,
dense detector/configuration codes for vote tables, encoded
filter/flow-key rows for traffic extraction.

Layout
------
Per-alarm numeric columns (length ``n``):

``det_code``     int32   — index into the :attr:`detectors` name pool.
``config_code``  int32   — index into the :attr:`configs` name pool.
``t0, t1``       float64 — the alarm's half-open time window.
``score``        float64 — detector-specific anomaly score.

Variable-length designations are stored as *ragged* columns: per-alarm
``filter_bounds`` / ``flow_bounds`` (length ``n + 1``, monotone) index
into flat per-filter / per-flow-key column blocks:

* filters — one row per :class:`~repro.net.filters.FeatureFilter`,
  fields encoded numerically with ``-1`` (ints) / ``NaN`` (floats)
  standing for the wildcard ``None``;
* flow keys — one row per :class:`~repro.net.flow.FlowKey`
  (src/sport/dst/dport/proto as unsigned columns).

Because every column is a plain array, an alarm table pickles
compactly (the alarm cache stores these), ships zero-copy over shared
memory (:func:`repro.runner.shm.export_alarm_table`), and slices /
concatenates without touching Python objects.  Detector and
configuration *names* live in small first-appearance-ordered pools;
the dense coding is computed by the paired ``"alarm_codes"`` engine
kernels.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.detectors.base import Alarm
from repro.net.filters import FeatureFilter
from repro.net.flow import FlowKey

#: Per-alarm numeric columns (length n).
ALARM_COLUMN_DTYPES: dict[str, np.dtype] = {
    "det_code": np.dtype(np.int32),
    "config_code": np.dtype(np.int32),
    "t0": np.dtype(np.float64),
    "t1": np.dtype(np.float64),
    "score": np.dtype(np.float64),
}

#: Per-filter encoded columns (length = total filters).  ``-1`` / NaN
#: encode the wildcard ``None``.
FILTER_COLUMN_DTYPES: dict[str, np.dtype] = {
    "f_src": np.dtype(np.int64),
    "f_dst": np.dtype(np.int64),
    "f_sport": np.dtype(np.int32),
    "f_dport": np.dtype(np.int32),
    "f_proto": np.dtype(np.int16),
    "f_t0": np.dtype(np.float64),
    "f_t1": np.dtype(np.float64),
}

#: Per-flow-key columns (length = total flow keys).
FLOW_COLUMN_DTYPES: dict[str, np.dtype] = {
    "w_src": np.dtype(np.uint32),
    "w_sport": np.dtype(np.uint16),
    "w_dst": np.dtype(np.uint32),
    "w_dport": np.dtype(np.uint16),
    "w_proto": np.dtype(np.uint8),
}

#: Ragged bounds columns (length n + 1 each).
BOUND_COLUMNS = ("filter_bounds", "flow_bounds")

ALARM_COLUMNS = tuple(ALARM_COLUMN_DTYPES)
FILTER_COLUMNS = tuple(FILTER_COLUMN_DTYPES)
FLOW_COLUMNS = tuple(FLOW_COLUMN_DTYPES)

#: Every array the table carries, in constructor order.
ALL_ARRAYS = ALARM_COLUMNS + BOUND_COLUMNS + FILTER_COLUMNS + FLOW_COLUMNS


def _encode_optional_int(value: Optional[int]) -> int:
    return -1 if value is None else int(value)


def _encode_optional_float(value: Optional[float]) -> float:
    return np.nan if value is None else float(value)


def _ragged_take(bounds: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather ragged segments for a row subset.

    Returns ``(new_bounds, flat_indices)``: the bounds of the selected
    segments re-packed contiguously, and the flat indices into the old
    per-element block that realize the gather.
    """
    counts = bounds[1:] - bounds[:-1]
    picked = counts[rows]
    new_bounds = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(picked, out=new_bounds[1:])
    total = int(new_bounds[-1])
    if total == 0:
        return new_bounds, np.empty(0, dtype=np.int64)
    starts = bounds[:-1][rows]
    flat = (
        np.repeat(starts, picked)
        + np.arange(total, dtype=np.int64)
        - np.repeat(new_bounds[:-1], picked)
    )
    return new_bounds, flat


class AlarmTable:
    """Struct-of-arrays alarm storage with lazy :class:`Alarm` views."""

    __slots__ = ALL_ARRAYS + (
        "detectors",
        "configs",
        "_alarm_cache",
        "_filter_cache",
        "_flow_key_cache",
    )

    def __init__(
        self,
        det_code,
        config_code,
        t0,
        t1,
        score,
        filter_bounds,
        flow_bounds,
        f_src,
        f_dst,
        f_sport,
        f_dport,
        f_proto,
        f_t0,
        f_t1,
        w_src,
        w_sport,
        w_dst,
        w_dport,
        w_proto,
        detectors: Sequence[str] = (),
        configs: Sequence[str] = (),
    ) -> None:
        values = dict(
            zip(
                ALL_ARRAYS,
                (
                    det_code, config_code, t0, t1, score,
                    filter_bounds, flow_bounds,
                    f_src, f_dst, f_sport, f_dport, f_proto, f_t0, f_t1,
                    w_src, w_sport, w_dst, w_dport, w_proto,
                ),
            )
        )
        dtypes = {
            **ALARM_COLUMN_DTYPES,
            **FILTER_COLUMN_DTYPES,
            **FLOW_COLUMN_DTYPES,
            "filter_bounds": np.dtype(np.int64),
            "flow_bounds": np.dtype(np.int64),
        }
        for name, value in values.items():
            column = np.asarray(value, dtype=dtypes[name])
            if column.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            object.__setattr__(self, name, column)
        object.__setattr__(self, "detectors", tuple(detectors))
        object.__setattr__(self, "configs", tuple(configs))
        self._validate()
        n = len(self.det_code)
        object.__setattr__(self, "_alarm_cache", [None] * n)
        object.__setattr__(self, "_filter_cache", [None] * len(self.f_src))
        object.__setattr__(self, "_flow_key_cache", [None] * len(self.w_src))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("AlarmTable is immutable")

    def __reduce__(self):
        return (
            AlarmTable,
            tuple(getattr(self, name) for name in ALL_ARRAYS)
            + (self.detectors, self.configs),
        )

    def _validate(self) -> None:
        n = len(self.det_code)
        for name in ALARM_COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} length mismatch")
        for bounds, block in (
            (self.filter_bounds, FILTER_COLUMNS),
            (self.flow_bounds, FLOW_COLUMNS),
        ):
            if len(bounds) != n + 1:
                raise ValueError("bounds must have n + 1 entries")
            if n and not (bounds[1:] >= bounds[:-1]).all():
                raise ValueError("bounds must be monotone")
            if int(bounds[0]) != 0:
                raise ValueError("bounds must start at 0")
            total = int(bounds[-1])
            for name in block:
                if len(getattr(self, name)) != total:
                    raise ValueError(f"column {name!r} length mismatch")
        if n:
            if self.det_code.size and int(self.det_code.max(initial=-1)) >= len(
                self.detectors
            ):
                raise ValueError("det_code out of range of the detector pool")
            if int(self.config_code.max(initial=-1)) >= len(self.configs):
                raise ValueError("config_code out of range of the config pool")

    # -- construction --------------------------------------------------

    @classmethod
    def from_alarms(
        cls, alarms: Sequence[Alarm], engine="auto"
    ) -> "AlarmTable":
        """Batch-encode alarm objects into one table.

        The dense detector / configuration coding runs through the
        engine's paired ``"alarm_codes"`` kernel (first-appearance
        numbering on every engine).
        """
        from repro.engine import resolve_engine

        engine = resolve_engine(engine, what="alarm-table")
        alarms = list(alarms)
        n = len(alarms)
        alarm_codes = engine.kernel("alarm_codes")
        det_code, detectors = alarm_codes([a.detector for a in alarms])
        config_code, configs = alarm_codes([a.config for a in alarms])

        filter_bounds = np.zeros(n + 1, dtype=np.int64)
        flow_bounds = np.zeros(n + 1, dtype=np.int64)
        for i, alarm in enumerate(alarms):
            filter_bounds[i + 1] = filter_bounds[i] + len(alarm.filters)
            flow_bounds[i + 1] = flow_bounds[i] + len(alarm.flow_keys)

        filters = [f for a in alarms for f in a.filters]
        flow_keys = [k for a in alarms for k in a.flow_keys]
        table = cls(
            det_code=det_code,
            config_code=config_code,
            t0=np.fromiter((a.t0 for a in alarms), np.float64, count=n),
            t1=np.fromiter((a.t1 for a in alarms), np.float64, count=n),
            score=np.fromiter((a.score for a in alarms), np.float64, count=n),
            filter_bounds=filter_bounds,
            flow_bounds=flow_bounds,
            f_src=[_encode_optional_int(f.src) for f in filters],
            f_dst=[_encode_optional_int(f.dst) for f in filters],
            f_sport=[_encode_optional_int(f.sport) for f in filters],
            f_dport=[_encode_optional_int(f.dport) for f in filters],
            f_proto=[_encode_optional_int(f.proto) for f in filters],
            f_t0=[_encode_optional_float(f.t0) for f in filters],
            f_t1=[_encode_optional_float(f.t1) for f in filters],
            w_src=[k.src for k in flow_keys],
            w_sport=[k.sport for k in flow_keys],
            w_dst=[k.dst for k in flow_keys],
            w_dport=[k.dport for k in flow_keys],
            w_proto=[k.proto for k in flow_keys],
            detectors=detectors,
            configs=configs,
        )
        # Seed the lazy caches with the originals: views materialized
        # from a freshly encoded table are the very objects encoded.
        object.__setattr__(table, "_alarm_cache", list(alarms))
        object.__setattr__(table, "_filter_cache", list(filters))
        object.__setattr__(table, "_flow_key_cache", list(flow_keys))
        return table

    @classmethod
    def empty(cls) -> "AlarmTable":
        zero = np.empty(0)
        return cls(
            *([zero] * len(ALARM_COLUMNS)),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            *([zero] * (len(FILTER_COLUMNS) + len(FLOW_COLUMNS))),
        )

    @classmethod
    def concatenate(cls, tables: Iterable["AlarmTable"]) -> "AlarmTable":
        """Stack tables row-wise, merging the name pools.

        Pool order is first appearance across the inputs, so
        concatenating per-detector tables in ensemble order numbers
        configurations exactly like sequential list extension.
        """
        tables = [t for t in tables]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]

        def merge_pool(attr: str, code_attr: str):
            pool: list[str] = []
            code_of: dict[str, int] = {}
            remapped = []
            for table in tables:
                mapping = np.empty(len(getattr(table, attr)), dtype=np.int32)
                for j, name in enumerate(getattr(table, attr)):
                    code = code_of.get(name)
                    if code is None:
                        code = code_of[name] = len(pool)
                        pool.append(name)
                    mapping[j] = code
                codes = getattr(table, code_attr)
                remapped.append(
                    mapping[codes] if len(codes) else codes.astype(np.int32)
                )
            return np.concatenate(remapped), tuple(pool)

        det_code, detectors = merge_pool("detectors", "det_code")
        config_code, configs = merge_pool("configs", "config_code")

        def cat(name: str) -> np.ndarray:
            return np.concatenate([getattr(t, name) for t in tables])

        def cat_bounds(name: str) -> np.ndarray:
            parts = [tables[0].column(name)]
            offset = int(parts[0][-1])
            for table in tables[1:]:
                bounds = table.column(name)
                parts.append(bounds[1:] + offset)
                offset += int(bounds[-1])
            return np.concatenate(parts)

        return cls(
            det_code=det_code,
            config_code=config_code,
            t0=cat("t0"),
            t1=cat("t1"),
            score=cat("score"),
            filter_bounds=cat_bounds("filter_bounds"),
            flow_bounds=cat_bounds("flow_bounds"),
            **{name: cat(name) for name in FILTER_COLUMNS},
            **{name: cat(name) for name in FLOW_COLUMNS},
            detectors=detectors,
            configs=configs,
        )

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.det_code)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Alarm]:
        for i in range(len(self)):
            yield self.alarm(i)

    def __getitem__(self, index: int) -> Alarm:
        return self.alarm(index)

    def column(self, name: str) -> np.ndarray:
        if name not in ALL_ARRAYS:
            raise KeyError(f"unknown column {name!r}")
        return getattr(self, name)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AlarmTable):
            return NotImplemented
        return (
            self.detectors == other.detectors
            and self.configs == other.configs
            and all(
                np.array_equal(
                    getattr(self, name), getattr(other, name), equal_nan=True
                )
                for name in ALL_ARRAYS
            )
        )

    __hash__ = None  # mutable caches inside; identity hashing is a trap

    # -- lazy object views ---------------------------------------------

    def filter_at(self, index: int) -> FeatureFilter:
        """Materialize one pooled filter row (cached)."""
        cached = self._filter_cache[index]
        if cached is None:
            def opt_int(column):
                value = int(getattr(self, column)[index])
                return None if value < 0 else value

            def opt_float(column):
                value = float(getattr(self, column)[index])
                return None if np.isnan(value) else value

            cached = self._filter_cache[index] = FeatureFilter(
                src=opt_int("f_src"),
                dst=opt_int("f_dst"),
                sport=opt_int("f_sport"),
                dport=opt_int("f_dport"),
                proto=opt_int("f_proto"),
                t0=opt_float("f_t0"),
                t1=opt_float("f_t1"),
            )
        return cached

    def flow_key_at(self, index: int) -> FlowKey:
        """Materialize one pooled flow-key row (cached)."""
        cached = self._flow_key_cache[index]
        if cached is None:
            cached = self._flow_key_cache[index] = FlowKey(
                src=int(self.w_src[index]),
                sport=int(self.w_sport[index]),
                dst=int(self.w_dst[index]),
                dport=int(self.w_dport[index]),
                proto=int(self.w_proto[index]),
            )
        return cached

    def filters_of(self, index: int) -> tuple[FeatureFilter, ...]:
        lo, hi = self.filter_bounds[index], self.filter_bounds[index + 1]
        return tuple(self.filter_at(i) for i in range(int(lo), int(hi)))

    def flow_keys_of(self, index: int) -> frozenset:
        lo, hi = self.flow_bounds[index], self.flow_bounds[index + 1]
        return frozenset(
            self.flow_key_at(i) for i in range(int(lo), int(hi))
        )

    def alarm(self, index: int) -> Alarm:
        """Materialize row ``index`` as an :class:`Alarm` (cached)."""
        cached = self._alarm_cache[index]
        if cached is None:
            cached = self._alarm_cache[index] = Alarm(
                detector=self.detectors[int(self.det_code[index])],
                config=self.configs[int(self.config_code[index])],
                t0=float(self.t0[index]),
                t1=float(self.t1[index]),
                filters=self.filters_of(index),
                flow_keys=self.flow_keys_of(index),
                score=float(self.score[index]),
            )
        return cached

    def to_alarms(self) -> list[Alarm]:
        """Materialize every row (cached; order = row order)."""
        return [self.alarm(i) for i in range(len(self))]

    # -- slicing --------------------------------------------------------

    def take(self, rows) -> "AlarmTable":
        """Row subset (index array or boolean mask), order preserved.

        Name pools are carried over unchanged — codes stay valid — so
        window eviction in the streaming engine is a pure column slice.
        """
        rows = np.asarray(rows)
        if rows.dtype == bool:
            rows = np.nonzero(rows)[0]
        rows = rows.astype(np.int64)
        filter_bounds, filter_idx = _ragged_take(self.filter_bounds, rows)
        flow_bounds, flow_idx = _ragged_take(self.flow_bounds, rows)
        return AlarmTable(
            **{name: getattr(self, name)[rows] for name in ALARM_COLUMNS},
            filter_bounds=filter_bounds,
            flow_bounds=flow_bounds,
            **{name: getattr(self, name)[filter_idx] for name in FILTER_COLUMNS},
            **{name: getattr(self, name)[flow_idx] for name in FLOW_COLUMNS},
            detectors=self.detectors,
            configs=self.configs,
        )

    def config_names_at(self, rows) -> set[str]:
        """Distinct configuration names of a row subset (no views)."""
        codes = np.unique(self.config_code[np.asarray(rows)])
        return {self.configs[int(c)] for c in codes}

    def detector_names_at(self, rows) -> set[str]:
        """Distinct detector names of a row subset (no views)."""
        codes = np.unique(self.det_code[np.asarray(rows)])
        return {self.detectors[int(c)] for c in codes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlarmTable(n={len(self)}, configs={len(self.configs)}, "
            f"filters={len(self.f_src)}, flow_keys={len(self.w_src)})"
        )
