"""Traffic extractor (the "oracle" of the predecessor paper).

Retrieves the traffic described by each alarm at a chosen granularity
(paper Section 2.1.1).  The extracted traffic of an alarm is a set:

* packet granularity — a set of packet indices into the trace;
* uniflow / biflow granularity — a set of flow keys.

The granularity choice is the estimator's central trade-off (Fig. 1 and
Fig. 3): packets give precise but fragmented associations, flows relate
alarms that touch different packets of the same conversation.

Two interchangeable strategies implement the retrieval, registered as
the per-engine ``"traffic_extractor"`` kernels:

* :class:`ColumnarTrafficExtraction` — alarm filters become boolean
  masks over the trace's :class:`~repro.net.table.PacketTable` (via
  the ``"filter_mask"`` kernel), flows are dense integer codes
  (``"flow_codes"``), and :meth:`TrafficExtractor.extract_all_codes`
  hands the per-alarm code arrays straight to the vectorized
  similarity-graph kernel without ever constructing Python sets.  The
  per-alarm mask accumulator comes from the engine's scratch allocator
  instead of a fresh allocation per alarm.
* :class:`ReferenceTrafficExtraction` — the original per-packet
  predicate loop, kept as the readable reference; the engine parity
  suite asserts both strategies extract identical traffic sets.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

import numpy as np

from repro.detectors.base import Alarm
from repro.engine import (
    Engine,
    EngineSpec,
    resolve_engine,
    resolve_legacy_backend,
)
from repro.errors import EngineError, TraceError
from repro.net.flow import FlowKey, Granularity, biflow_key, uniflow_key
from repro.net.trace import Trace


class ReferenceTrafficExtraction:
    """Pure-Python extraction strategy (the correctness oracle)."""

    def __init__(
        self, trace: Trace, granularity: Granularity, engine: Engine
    ) -> None:
        self.trace = trace
        self.granularity = granularity
        self.engine = engine
        # Per-packet flow keys (lazy by granularity need).
        self._uniflow_of: list[FlowKey] = [uniflow_key(p) for p in trace]
        if granularity is Granularity.BIFLOW:
            self._biflow_of: list[FlowKey] = [biflow_key(p) for p in trace]
        else:
            self._biflow_of = []
        # Uniflow key -> packet indices, for flow-key alarms.
        self._uniflow_index: dict[FlowKey, list[int]] = {}
        for i, key in enumerate(self._uniflow_of):
            self._uniflow_index.setdefault(key, []).append(i)

    def _packet_indices(self, alarm: Alarm) -> set[int]:
        """Packet indices designated by the alarm (filters + flow keys)."""
        trace = self.trace
        indices: set[int] = set()
        for feature_filter in alarm.filters:
            t0 = feature_filter.t0 if feature_filter.t0 is not None else alarm.t0
            t1 = feature_filter.t1 if feature_filter.t1 is not None else alarm.t1
            for i in trace.time_slice(t0, t1):
                if feature_filter.matches(trace[i]):
                    indices.add(i)
        if alarm.flow_keys:
            for key in alarm.flow_keys:
                for i in self._uniflow_index.get(key, ()):
                    if alarm.t0 <= trace[i].time < alarm.t1 or (
                        trace[i].time == alarm.t1 == trace.end_time
                    ):
                        indices.add(i)
        return indices

    def extract(self, alarm: Alarm) -> FrozenSet:
        indices = self._packet_indices(alarm)
        if self.granularity is Granularity.PACKET:
            return frozenset(indices)
        if self.granularity is Granularity.UNIFLOW:
            return frozenset(self._uniflow_of[i] for i in indices)
        return frozenset(self._biflow_of[i] for i in indices)

    def extract_all(self, alarms: Sequence[Alarm]) -> list[FrozenSet]:
        return [self.extract(alarm) for alarm in alarms]

    def packets_of(self, traffic: FrozenSet) -> list[int]:
        if self.granularity is Granularity.PACKET:
            return sorted(int(i) for i in traffic)
        if self.granularity is Granularity.UNIFLOW:
            result: list[int] = []
            for key in traffic:
                result.extend(self._uniflow_index.get(key, ()))
            return sorted(result)
        # Biflow: collect both directions via the biflow key map.
        wanted = set(traffic)
        return sorted(
            i for i, key in enumerate(self._biflow_of) if key in wanted
        )


class ColumnarTrafficExtraction:
    """Vectorized extraction strategy over the trace's packet table."""

    def __init__(
        self, trace: Trace, granularity: Granularity, engine: Engine
    ) -> None:
        self.trace = trace
        self.granularity = granularity
        self.engine = engine
        self._filter_mask = engine.kernel("filter_mask")
        self._scratch = engine.scratch()
        self._codes, self._keys = trace.flow_code_table(Granularity.UNIFLOW)
        self._key_to_code = {key: c for c, key in enumerate(self._keys)}
        if granularity is Granularity.BIFLOW:
            self._bicodes, self._bikeys = trace.flow_code_table(
                Granularity.BIFLOW
            )
            self._bikey_to_code = {
                key: c for c, key in enumerate(self._bikeys)
            }
        else:
            self._bicodes = np.empty(0, dtype=np.int64)
            self._bikeys = []
            self._bikey_to_code = {}

    def _alarm_mask(self, alarm: Alarm) -> np.ndarray:
        """Boolean packet mask designated by the alarm.

        The accumulator is a scratch buffer — valid only until the next
        mask-building call, which every caller respects by consuming
        the mask (into codes or indices) before extracting again.
        """
        return self._mask_for(
            alarm.filters, alarm.flow_keys, alarm.t0, alarm.t1
        )

    def _mask_for(
        self, filters, flow_keys, alarm_t0: float, alarm_t1: float
    ) -> np.ndarray:
        """Mask from an alarm's designation fields (object or table row)."""
        table = self.trace.table
        mask = self._scratch.zeros(len(table), dtype=bool)
        for feature_filter in filters:
            t0 = feature_filter.t0 if feature_filter.t0 is not None else alarm_t0
            t1 = feature_filter.t1 if feature_filter.t1 is not None else alarm_t1
            if t1 < t0:
                # Mirror Trace.time_slice on the reference path.
                raise TraceError(f"empty interval [{t0}, {t1})")
            mask |= self._filter_mask(table, feature_filter, t0=t0, t1=t1)
        if flow_keys:
            wanted = [
                self._key_to_code[key]
                for key in flow_keys
                if key in self._key_to_code
            ]
            if wanted:
                in_flows = np.isin(self._codes, np.array(wanted, dtype=np.int64))
                time = table.time
                in_window = (time >= alarm_t0) & (time < alarm_t1)
                if alarm_t1 == self.trace.end_time:
                    in_window |= time == alarm_t1
                mask |= in_flows & in_window
        return mask

    def _codes_for_mask(self, mask: np.ndarray) -> np.ndarray:
        """Sorted unique traffic codes (or packet indices) of a mask."""
        if self.granularity is Granularity.PACKET:
            return np.nonzero(mask)[0]
        if self.granularity is Granularity.UNIFLOW:
            return np.unique(self._codes[mask])
        return np.unique(self._bicodes[mask])

    def codes_to_traffic(self, codes: np.ndarray) -> FrozenSet:
        """Materialize a code array as the public traffic set."""
        if self.granularity is Granularity.PACKET:
            return frozenset(int(i) for i in codes)
        keys = (
            self._keys
            if self.granularity is Granularity.UNIFLOW
            else self._bikeys
        )
        return frozenset(keys[int(c)] for c in codes)

    def extract(self, alarm: Alarm) -> FrozenSet:
        return self.codes_to_traffic(
            self._codes_for_mask(self._alarm_mask(alarm))
        )

    def extract_all(self, alarms: Sequence[Alarm]) -> list[FrozenSet]:
        return [
            self.codes_to_traffic(codes)
            for codes in self.extract_all_codes(alarms)
        ]

    def extract_all_codes(self, alarms: Sequence[Alarm]) -> list[np.ndarray]:
        return [
            self._codes_for_mask(self._alarm_mask(alarm)) for alarm in alarms
        ]

    def extract_table_codes(self, table) -> list[np.ndarray]:
        """Batched extraction straight off an alarm table's columns.

        Designations are read from the table's pooled filter objects
        and flow-key rows — no :class:`Alarm` views are materialized —
        producing exactly the per-alarm code arrays of
        :meth:`extract_all_codes` on the same rows.
        """
        filter_bounds = table.filter_bounds
        flow_bounds = table.flow_bounds
        t0s, t1s = table.t0, table.t1
        results = []
        for i in range(len(table)):
            filters = [
                table.filter_at(j)
                for j in range(
                    int(filter_bounds[i]), int(filter_bounds[i + 1])
                )
            ]
            flow_keys = [
                table.flow_key_at(j)
                for j in range(int(flow_bounds[i]), int(flow_bounds[i + 1]))
            ]
            mask = self._mask_for(
                filters, flow_keys, float(t0s[i]), float(t1s[i])
            )
            results.append(self._codes_for_mask(mask))
        return results

    def packets_of(self, traffic: FrozenSet) -> list[int]:
        return [int(i) for i in self.packet_index_array(traffic)]

    def packet_index_array(self, traffic: FrozenSet) -> np.ndarray:
        if self.granularity is Granularity.PACKET:
            return np.array(sorted(int(i) for i in traffic), dtype=np.int64)
        if self.granularity is Granularity.UNIFLOW:
            key_to_code: dict = self._key_to_code
            codes = self._codes
        else:
            key_to_code = self._bikey_to_code
            codes = self._bicodes
        wanted = [key_to_code[key] for key in traffic if key in key_to_code]
        if not wanted:
            return np.empty(0, dtype=np.int64)
        mask = np.isin(codes, np.array(wanted, dtype=np.int64))
        return np.nonzero(mask)[0].astype(np.int64)


class TrafficExtractor:
    """Extracts, per alarm, the associated traffic set.

    The extractor precomputes per-packet flow keys (or dense flow
    codes, on a vectorized engine) once per trace so that each alarm
    extraction costs only its own time window.

    Parameters
    ----------
    trace:
        The trace alarms refer to.
    granularity:
        Traffic granularity of the extracted sets.
    engine:
        Engine spec (see :func:`repro.engine.resolve_engine`); the
        engine's ``"traffic_extractor"`` kernel picks the strategy.
        All strategies produce identical traffic sets.
    """

    def __init__(
        self,
        trace: Trace,
        granularity: Granularity = Granularity.UNIFLOW,
        engine: EngineSpec = "auto",
        backend: EngineSpec = None,
    ) -> None:
        engine = resolve_legacy_backend(engine, backend, what="extractor")
        self.trace = trace
        self.granularity = granularity
        self.engine = resolve_engine(engine, what="extractor")
        self._impl = self.engine.kernel("traffic_extractor")(
            trace, granularity, self.engine
        )

    # -- public API ----------------------------------------------------

    def extract(self, alarm: Alarm) -> FrozenSet:
        """Traffic set of one alarm at this extractor's granularity."""
        return self._impl.extract(alarm)

    def extract_all(self, alarms: Sequence[Alarm]) -> list[FrozenSet]:
        """Traffic sets for a list of alarms (index-aligned)."""
        return self._impl.extract_all(alarms)

    def extract_all_codes(self, alarms: Sequence[Alarm]) -> list[np.ndarray]:
        """Batched extraction as dense int arrays (vectorized engines).

        Element ``i`` holds the sorted unique traffic codes (flow ids,
        or packet indices at packet granularity) of alarm ``i`` — the
        exact integer alphabet the ``"similarity_graph"`` kernel
        consumes directly, skipping Python set construction entirely.
        """
        return self._vectorized("extract_all_codes")(alarms)

    def extract_table_codes(self, table) -> list[np.ndarray]:
        """Batched :meth:`extract_all_codes` over an alarm table.

        Reads designations straight from the table's encoded columns —
        the columnar estimator's fast path, no alarm views involved.
        """
        return self._vectorized("extract_table_codes")(table)

    def codes_to_traffic(self, codes: np.ndarray) -> FrozenSet:
        """Materialize a code array as the public traffic set."""
        return self._vectorized("codes_to_traffic")(codes)

    def packets_of(self, traffic: FrozenSet) -> list[int]:
        """Expand a traffic set back to packet indices.

        For packet granularity this is the identity; for flow
        granularities it returns every packet of every listed flow.
        Used by the heuristics and the rule miner, which need packets.
        """
        return self._impl.packets_of(traffic)

    def packet_index_array(self, traffic: FrozenSet) -> np.ndarray:
        """Vectorized :meth:`packets_of` (sorted int64 array).

        Only available on vectorized engines; the heuristics use it to
        label community traffic without materializing packet objects.
        """
        return self._vectorized("packet_index_array")(traffic)

    def _vectorized(self, method: str):
        fn = getattr(self._impl, method, None)
        if fn is None:
            raise EngineError(
                f"{method} requires a vectorized extraction engine "
                f"(got {self.engine.name!r})"
            )
        return fn
