"""Majority vote and the Condorcet Jury Theorem (Section 2.2.1).

The majority vote is the oldest output-fusion strategy: accept a
community when more than half of the detectors vote for it.  Its
theoretical behaviour — the Condorcet Jury Theorem — is what motivates
combining detectors at all:

    P_maj(L) = sum_{m=floor(L/2)+1}^{L} C(L, m) p^m (1-p)^(L-m)

is monotonically increasing in L and -> 1 when each detector's accuracy
p > 0.5 (and -> 0 when p < 0.5).  The benchmark
``benchmarks/test_condorcet.py`` regenerates this curve both
analytically and by Monte-Carlo simulation.
"""

from __future__ import annotations

from math import comb

from repro.core.strategies import CombinationStrategy
from repro.errors import CombinerError


def condorcet_probability(n_detectors: int, accuracy: float) -> float:
    """P_maj(L): probability a majority of L detectors is correct.

    Parameters
    ----------
    n_detectors:
        L, the number of (independent) detectors.
    accuracy:
        p, each detector's probability of a correct output.

    >>> condorcet_probability(1, 0.7)
    0.7
    >>> round(condorcet_probability(3, 0.7), 3)
    0.784
    """
    if n_detectors <= 0:
        raise CombinerError("need at least one detector")
    if not 0.0 <= accuracy <= 1.0:
        raise CombinerError("accuracy must be in [0, 1]")
    start = n_detectors // 2 + 1
    return sum(
        comb(n_detectors, m)
        * accuracy**m
        * (1 - accuracy) ** (n_detectors - m)
        for m in range(start, n_detectors + 1)
    )


class MajorityVoteStrategy(CombinationStrategy):
    """Accept when more than half the detectors vote for the community.

    A detector *votes* for a community when at least one of its alarms
    is in it (Section 2.2.2) — i.e. its confidence score is > 0.
    ``mu`` is the fraction of voting detectors, so the standard
    ``mu > 0.5`` acceptance implements the simple majority.
    """

    name = "majority"

    def _aggregate(self, scores: dict[str, float]) -> float:
        if not scores:
            return 0.0
        voting = sum(1 for phi in scores.values() if phi > 0.0)
        return voting / len(scores)
