"""Evaluation against the synthetic archive's ground truth.

The real MAWILab has no ground truth (the whole point of the paper's
heuristic-based evaluation); the synthetic archive, however, knows
exactly what it injected.  This module measures a pipeline run — or a
single detector — against the injected
:class:`~repro.mawi.anomalies.GroundTruthEvent` records, yielding the
event-recall / precision numbers the paper could only approximate with
Table-1 heuristics.

Matching uses the same machinery as everything else: a ground-truth
event is expressed as a pseudo-alarm, its traffic extracted at the
evaluation granularity, and an overlap above ``min_overlap`` (Simpson
coefficient) counts as a match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.extractor import TrafficExtractor
from repro.detectors.base import Alarm
from repro.mawi.anomalies import GroundTruthEvent
from repro.net.flow import Granularity
from repro.net.trace import Trace


@dataclass
class EventMatch:
    """Match outcome for one injected event."""

    event: GroundTruthEvent
    detected: bool
    matched_by: tuple[str, ...] = ()  # community ids or detector configs
    best_overlap: float = 0.0


@dataclass
class GroundTruthScore:
    """Aggregate event-level evaluation."""

    matches: list[EventMatch] = field(default_factory=list)
    n_positives: int = 0  # objects (communities/alarms) matching any event
    n_objects: int = 0

    @property
    def recall(self) -> float:
        if not self.matches:
            return 0.0
        return sum(1 for m in self.matches if m.detected) / len(self.matches)

    @property
    def precision(self) -> float:
        """Fraction of evaluated objects overlapping some event."""
        if self.n_objects == 0:
            return 0.0
        return self.n_positives / self.n_objects

    def recall_by_kind(self) -> dict[str, float]:
        """Per-anomaly-kind recall (e.g. 'sasser' -> 1.0)."""
        by_kind: dict[str, list[bool]] = {}
        for match in self.matches:
            by_kind.setdefault(match.event.kind, []).append(match.detected)
        return {
            kind: sum(hits) / len(hits) for kind, hits in by_kind.items()
        }


def _event_traffic(event: GroundTruthEvent, extractor: TrafficExtractor):
    pseudo = Alarm(
        detector="groundtruth",
        config="groundtruth/injected",
        t0=event.t0,
        t1=event.t1,
        filters=tuple(event.filters),
    )
    return extractor.extract(pseudo)


def _simpson(a, b) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def score_traffic_sets(
    trace: Trace,
    events: Sequence[GroundTruthEvent],
    traffic_sets: Sequence,
    names: Sequence[str],
    granularity: Granularity = Granularity.UNIFLOW,
    min_overlap: float = 0.2,
    extractor: TrafficExtractor | None = None,
) -> GroundTruthScore:
    """Score arbitrary traffic sets (communities or alarms) vs events."""
    if extractor is None:
        extractor = TrafficExtractor(trace, granularity)
    event_traffic = [_event_traffic(e, extractor) for e in events]
    matched_objects = [False] * len(traffic_sets)
    matches: list[EventMatch] = []
    for event, traffic in zip(events, event_traffic):
        matched_by = []
        best = 0.0
        for i, candidate in enumerate(traffic_sets):
            overlap = _simpson(traffic, candidate)
            if overlap >= min_overlap:
                matched_by.append(names[i])
                matched_objects[i] = True
            best = max(best, overlap)
        matches.append(
            EventMatch(
                event=event,
                detected=bool(matched_by),
                matched_by=tuple(matched_by),
                best_overlap=best,
            )
        )
    return GroundTruthScore(
        matches=matches,
        n_positives=sum(matched_objects),
        n_objects=len(traffic_sets),
    )


def score_pipeline_result(
    result,
    events: Sequence[GroundTruthEvent],
    accepted_only: bool = True,
    min_overlap: float = 0.2,
) -> GroundTruthScore:
    """Score a :class:`PipelineResult` against injected events.

    With ``accepted_only`` (default) only SCANN-accepted communities
    count — i.e. the score answers "would the published *anomalous*
    labels cover the injected anomalies?".
    """
    community_set = result.community_set
    selected = [
        (community, decision)
        for community, decision in zip(
            community_set.communities, result.decisions
        )
        if decision.accepted or not accepted_only
    ]
    traffic_sets = [community.traffic for community, _ in selected]
    names = [f"community#{community.id}" for community, _ in selected]
    return score_traffic_sets(
        result.trace,
        events,
        traffic_sets,
        names,
        extractor=community_set.extractor,
        min_overlap=min_overlap,
    )


def score_detector(
    detector,
    trace: Trace,
    events: Sequence[GroundTruthEvent],
    granularity: Granularity = Granularity.UNIFLOW,
    min_overlap: float = 0.2,
) -> GroundTruthScore:
    """Score a standalone detector's alarms against injected events."""
    alarms = detector.analyze(trace)
    extractor = TrafficExtractor(trace, granularity)
    traffic_sets = [extractor.extract(alarm) for alarm in alarms]
    names = [alarm.config for alarm in alarms]
    return score_traffic_sets(
        trace,
        events,
        traffic_sets,
        names,
        extractor=extractor,
        min_overlap=min_overlap,
    )
