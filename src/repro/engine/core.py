"""The execution-engine layer: kernel registries behind named engines.

Before this layer, the choice between the columnar NumPy fast paths and
the pure-Python reference implementations was a loose ``backend: str``
parameter hand-threaded through every module.  An :class:`Engine`
replaces that convention with one first-class object:

* a **kernel registry** — each operation with paired implementations
  (filter-mask, flow-coding, feature binning, sketch hashing,
  similarity graph, heuristics, traffic extraction) registers one
  kernel per engine, and callers ask ``engine.kernel("flow_codes")``
  instead of branching on a string;
* **capability flags** — ``engine.vectorized`` tells a caller whether
  columnar array paths are available without naming any engine;
* **per-engine scratch allocators** — :meth:`Engine.scratch` hands out
  a :class:`ScratchAllocator` whose buffers are reused across calls of
  a hot kernel instead of reallocated.

Engines are process-wide singletons addressed by name (``"numpy"``,
``"python"``); :func:`resolve_engine` accepts a name, the ``"auto"``
alias, an :class:`Engine` instance, or ``None`` and always returns the
singleton, so identity comparison (``engine is other``) is valid
everywhere.  Instances pickle by name, which keeps every object holding
an engine (detectors, extractors, pipelines) cheaply picklable into
pool workers.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

import numpy as np

from repro.errors import EngineError

#: Spellings accepted wherever an engine is chosen (CLI flags,
#: :class:`~repro.runner.config.PipelineConfig`, constructor params).
ENGINE_ALIASES = ("auto", "numpy", "python")

#: The canonical operation names kernels register under.  Registration
#: is open (plugins may add operations), but these are the paired
#: families the parity suite asserts over.
KERNEL_OPS = (
    "filter_mask",
    "flow_codes",
    "binned_histogram",
    "sketch_buckets",
    "dominant_keys",
    "similarity_graph",
    "community_label",
    "column_values",
    "traffic_extractor",
    "alarm_codes",
    "label_assign",
    "feature_plane",
    "warehouse_select",
)


class ScratchAllocator:
    """Reusable array buffers for one component's hot loop.

    ``zeros(n, dtype)`` returns a zeroed length-``n`` array, reusing
    (and re-zeroing) the previously returned buffer of the same dtype
    when it is large enough.  The returned array is only valid until
    the next ``zeros`` call with the same dtype — callers must consume
    it before asking again, which is exactly the per-alarm mask pattern
    of the columnar traffic extractor.

    Allocators are deliberately *not* shared between components: each
    owner calls :meth:`Engine.scratch` once and keeps its own instance,
    so there is no cross-thread or cross-component aliasing.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def zeros(self, n: int, dtype=bool) -> np.ndarray:
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(dtype.str)
        if buffer is None or len(buffer) < n:
            buffer = np.zeros(max(n, 1), dtype=dtype)
            self._buffers[dtype.str] = buffer
        else:
            buffer[:n] = 0
        return buffer[:n]


class Engine:
    """One named execution engine: kernels + capabilities + scratch.

    Parameters
    ----------
    name:
        Registry key ("numpy" / "python").
    description:
        One-line summary shown by ``repro engines``.
    vectorized:
        Capability flag: kernels read columnar
        :class:`~repro.net.table.PacketTable` arrays rather than packet
        objects.  Callers branch on this flag (or better, on a
        registered kernel) — never on the engine's name.
    """

    __slots__ = ("name", "description", "vectorized", "_kernels")

    def __init__(
        self, name: str, description: str, *, vectorized: bool
    ) -> None:
        self.name = name
        self.description = description
        self.vectorized = vectorized
        self._kernels: dict[str, Callable] = {}

    # -- kernel registry ----------------------------------------------

    def register(self, op: str, fn: Optional[Callable] = None):
        """Register ``fn`` as this engine's kernel for ``op``.

        Usable directly or as a decorator::

            @numpy_engine.register("flow_codes")
            def _flow_codes_numpy(table, granularity): ...
        """
        if fn is None:
            return lambda f: self.register(op, f)
        if op in self._kernels:
            raise EngineError(
                f"engine {self.name!r} already has a kernel for {op!r}"
            )
        self._kernels[op] = fn
        return fn

    def kernel(self, op: str) -> Callable:
        """The kernel registered for ``op`` (:class:`EngineError` if none)."""
        _ensure_kernels()
        try:
            return self._kernels[op]
        except KeyError:
            raise EngineError(
                f"engine {self.name!r} has no kernel {op!r}; "
                f"registered: {sorted(self._kernels)}"
            ) from None

    def has_kernel(self, op: str) -> bool:
        _ensure_kernels()
        return op in self._kernels

    def kernels(self) -> tuple[str, ...]:
        """Registered operation names, sorted."""
        _ensure_kernels()
        return tuple(sorted(self._kernels))

    # -- scratch -------------------------------------------------------

    def scratch(self) -> ScratchAllocator:
        """A fresh scratch allocator for one component's hot loop."""
        return ScratchAllocator()

    # -- identity ------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Engine({self.name!r})"

    def __reduce__(self):
        # Engines are per-process singletons holding unpicklable
        # kernel tables; pickle round-trips resolve back to the
        # registry entry of the same name.
        return (get_engine, (self.name,))


_REGISTRY: dict[str, Engine] = {}
_KERNELS_LOADED = False


def register_engine(engine: Engine) -> Engine:
    """Add ``engine`` to the process-wide registry (name must be new)."""
    if engine.name in _REGISTRY:
        raise EngineError(f"engine {engine.name!r} already registered")
    _REGISTRY[engine.name] = engine
    return engine


def _ensure_kernels() -> None:
    """Load the built-in kernel table once, on first kernel access.

    Kernel implementations live next to the code they vectorize
    (graph, extractor, sketch, ...), which import this module for
    :func:`resolve_engine` — so the registration module is imported
    lazily to keep the import graph acyclic.

    The loaded flag is only set on *success*: a failed import surfaces
    its real traceback on this call and every retry, instead of being
    swallowed into misleading "engine has no kernel" errors forever
    after.  Partial registrations from the failed attempt are rolled
    back so a retry re-registers from a clean slate.
    """
    global _KERNELS_LOADED
    if _KERNELS_LOADED:
        return
    try:
        from repro.engine import kernels  # noqa: F401  (import = register)
    except BaseException:
        for engine in _REGISTRY.values():
            engine._kernels.clear()
        raise
    _KERNELS_LOADED = True


def get_engine(name: str) -> Engine:
    """The registered engine called ``name`` (no alias resolution)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_engines() -> tuple[Engine, ...]:
    """All registered engines, in registration order."""
    return tuple(_REGISTRY.values())


def auto_engine() -> Engine:
    """The engine ``"auto"`` resolves to on this host.

    The columnar engine whenever NumPy is importable — which it always
    is in this package (NumPy is a hard dependency) — so today this is
    a fixed policy point rather than a probe.  Keeping it a function
    gives hosts without a vectorized stack one place to change.
    """
    return _REGISTRY["numpy"]


EngineSpec = Union[str, Engine, None]


def resolve_engine(spec: EngineSpec = "auto", *, what: str = "engine") -> Engine:
    """Resolve an engine spec to the :class:`Engine` singleton.

    Accepts an :class:`Engine` (returned as-is), a registered name,
    the ``"auto"`` alias, or ``None`` (= auto).  Anything else raises
    :class:`~repro.errors.EngineError` naming the requesting layer.
    """
    if isinstance(spec, Engine):
        return spec
    if spec is None or spec == "auto":
        return auto_engine()
    if isinstance(spec, str) and spec in _REGISTRY:
        return _REGISTRY[spec]
    raise EngineError(
        f"unknown {what} engine {spec!r}; known: {list(ENGINE_ALIASES)}"
    )


def resolve_legacy_backend(
    engine: EngineSpec, backend: EngineSpec, *, what: str = "engine"
) -> EngineSpec:
    """Fold a deprecated ``backend=`` keyword into an engine spec.

    PR-era callers configured the columnar/reference choice through
    ``backend=``; the engine layer renamed it ``engine=``.  The old
    spelling still works — with a :class:`DeprecationWarning` — unless
    the caller also passed an explicit ``engine``, which wins.
    """
    if backend is None:
        return engine
    import warnings

    warnings.warn(
        f"{what}: the backend= keyword is deprecated; pass engine= "
        "(same accepted values)",
        DeprecationWarning,
        stacklevel=3,
    )
    if engine is None or engine == "auto":
        return backend
    return engine


def engine_pairs(op: str) -> Iterator[tuple[Engine, Engine]]:
    """(vectorized, reference) engine pairs both implementing ``op``.

    The parity suite iterates this to compare paired kernels without
    hard-coding engine names.
    """
    _ensure_kernels()
    vectorized = [e for e in _REGISTRY.values() if e.vectorized and e.has_kernel(op)]
    reference = [e for e in _REGISTRY.values() if not e.vectorized and e.has_kernel(op)]
    for fast in vectorized:
        for slow in reference:
            yield fast, slow


#: The two built-in engines.  ``numpy`` is what ``"auto"`` selects.
NUMPY_ENGINE = register_engine(
    Engine(
        "numpy",
        "columnar NumPy fast paths over PacketTable arrays",
        vectorized=True,
    )
)
PYTHON_ENGINE = register_engine(
    Engine(
        "python",
        "pure-Python reference implementations (the correctness oracle)",
        vectorized=False,
    )
)
