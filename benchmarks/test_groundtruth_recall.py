"""Ground-truth validation of the synergy claim.

The paper can only evaluate with heuristics; the synthetic archive
knows what it injected, so this benchmark measures true event recall:
the combined pipeline's communities must cover at least as many
injected events as the best single detector's alarms, and by kind the
coverage must span anomaly types no single detector dominates.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from benchmarks.conftest import run_once
from repro.detectors.registry import default_ensemble
from repro.eval.groundtruth import score_detector, score_pipeline_result
from repro.eval.report import format_table

DETECTORS = ("pca", "gamma", "hough", "kl")


def test_groundtruth_recall(corpus, benchmark):
    def compute():
        pipeline_recalls = []
        detector_recalls = {d: [] for d in DETECTORS}
        kind_hits = defaultdict(list)
        single_detectors = {
            name: default_ensemble(detectors=[name], tunings=["sensitive"])[0]
            for name in DETECTORS
        }
        for day in corpus:
            if not day.day.events:
                continue
            score = score_pipeline_result(
                day.result, day.day.events, accepted_only=False
            )
            pipeline_recalls.append(score.recall)
            for kind, recall in score.recall_by_kind().items():
                kind_hits[kind].append(recall)
            for name, detector in single_detectors.items():
                detector_score = score_detector(
                    detector, day.day.trace, day.day.events
                )
                detector_recalls[name].append(detector_score.recall)
        return pipeline_recalls, detector_recalls, dict(kind_hits)

    pipeline_recalls, detector_recalls, kind_hits = run_once(benchmark, compute)

    rows = [["pipeline (communities)", float(np.mean(pipeline_recalls))]]
    for name, recalls in detector_recalls.items():
        rows.append([f"{name} (sensitive, alone)", float(np.mean(recalls))])
    print()
    print(
        format_table(
            ["system", "mean event recall"],
            rows,
            title="Ground-truth event recall (injected anomalies)",
        )
    )
    kind_rows = [
        [kind, float(np.mean(hits)), len(hits)]
        for kind, hits in sorted(kind_hits.items())
    ]
    print(
        format_table(
            ["anomaly kind", "recall", "#events"],
            kind_rows,
            title="Recall by anomaly kind",
        )
    )

    pipeline_mean = np.mean(pipeline_recalls)
    # The combined communities cover at least as much as any single
    # sensitive detector (the synergy claim, validated on real ground
    # truth rather than heuristics).
    for name, recalls in detector_recalls.items():
        assert pipeline_mean >= np.mean(recalls) - 0.05, name
    # And overall coverage is substantial.
    assert pipeline_mean >= 0.5
