"""Tests for the on-disk label database."""

import os

import pytest

from repro.errors import LabelingError
from repro.eval.benchmark import benchmark_detector
from repro.labeling.database import LabelDatabase


@pytest.fixture
def database(tmp_path, pipeline_result):
    db = LabelDatabase(str(tmp_path / "mawilab"))
    db.store_day("2004-06-01", pipeline_result)
    return db


class TestStore:
    def test_layout(self, database):
        path = os.path.join(database.root, "2004", "06")
        assert os.path.isdir(path)
        assert os.path.exists(
            os.path.join(path, "01_anomalous_suspicious.csv")
        )
        assert os.path.exists(os.path.join(database.root, "index.csv"))

    def test_index_counts(self, database, pipeline_result):
        summary = database.summary("2004-06-01")
        assert summary["n_communities"] == len(pipeline_result.labels)
        assert summary["n_anomalous"] == len(pipeline_result.anomalous())
        assert summary["n_alarms"] == len(pipeline_result.alarms)

    def test_dates(self, database, pipeline_result):
        assert database.dates() == ["2004-06-01"]
        database.store_day("2004-06-02", pipeline_result)
        assert database.dates() == ["2004-06-01", "2004-06-02"]

    def test_restore_overwrites(self, database, pipeline_result):
        database.store_day("2004-06-01", pipeline_result)
        assert database.dates() == ["2004-06-01"]

    def test_bad_date_rejected(self, database, pipeline_result):
        with pytest.raises(LabelingError):
            database.store_day("June 1st", pipeline_result)


class TestLoad:
    def test_missing_day(self, database):
        with pytest.raises(LabelingError):
            database.load_day("1999-01-01")
        with pytest.raises(LabelingError):
            database.summary("1999-01-01")

    def test_rows_round_trip(self, database, pipeline_result):
        rows = database.load_day("2004-06-01")
        assert rows
        stored_ids = {row.community_id for row in rows}
        original_ids = {r.community_id for r in pipeline_result.labels}
        assert stored_ids == original_ids
        taxonomies = {row.taxonomy for row in rows}
        assert taxonomies <= {"anomalous", "suspicious", "notice"}

    def test_records_round_trip(self, database, pipeline_result):
        records = database.load_day_records("2004-06-01")
        assert len(records) == len(pipeline_result.labels)
        by_id = {r.community_id: r for r in records}
        for original in pipeline_result.labels:
            restored = by_id[original.community_id]
            assert restored.taxonomy == original.taxonomy
            assert restored.heuristic == original.heuristic
            assert restored.n_alarms == original.n_alarms
            assert restored.detectors == original.detectors
            assert restored.t0 == pytest.approx(original.t0, abs=1e-3)
            assert len(restored.summary.rules) == len(original.summary.rules)

    def test_restored_records_usable_for_benchmarking(
        self, database, archive_day
    ):
        from repro.detectors.kl import KLDetector

        records = database.load_day_records("2004-06-01")
        score = benchmark_detector(
            KLDetector(tuning="sensitive", threshold=1.8),
            archive_day.trace,
            records,
        )
        assert 0.0 <= score.recall <= 1.0
        assert score.true_positive + score.false_negative == sum(
            1 for r in records if r.taxonomy == "anomalous"
        )
