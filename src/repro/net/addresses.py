"""IPv4 address helpers and prefix-preserving anonymization.

Addresses are stored as unsigned 32-bit integers throughout the package:
comparisons, hashing and sketching are all cheaper on integers than on
dotted-quad strings, and the MAWI archive itself ships anonymized
integers.  The helpers here convert between representations and provide
the anonymizer used when exporting traces.

The anonymizer implements the classic Crypto-PAn-style *prefix
preserving* property: if two real addresses share a k-bit prefix, their
anonymized images share exactly a k-bit prefix too.  This matters for
the pipeline because detectors (and the Table-1 heuristics) aggregate on
prefixes; anonymization must not destroy that structure.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

from repro.errors import TraceError

_MAX_IPV4 = 0xFFFFFFFF


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 string to an unsigned 32-bit integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise TraceError(f"not a dotted-quad IPv4 address: {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise TraceError(f"bad octet in {address!r}") from exc
        if not 0 <= octet <= 255:
            raise TraceError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Convert an unsigned 32-bit integer to dotted-quad form.

    >>> ip_to_str(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _MAX_IPV4:
        raise TraceError(f"not a 32-bit address: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_private(value: int) -> bool:
    """Return True for RFC1918 private addresses.

    The MAWI trans-Pacific link carries (almost) exclusively public
    traffic; the synthetic generator uses this predicate as a sanity
    check on generated hosts.
    """
    if (value >> 24) == 10:
        return True
    if (value >> 20) == (172 << 4) | 1:  # 172.16.0.0/12
        return True
    if (value >> 16) == (192 << 8) | 168:
        return True
    return False


def random_host_in(prefix: int, prefix_len: int, rng) -> int:
    """Draw a uniformly random host address inside ``prefix/prefix_len``.

    Parameters
    ----------
    prefix:
        Network prefix as a 32-bit integer (host bits ignored).
    prefix_len:
        Prefix length in bits, 0..32.
    rng:
        A ``numpy.random.Generator`` (anything with ``integers``).
    """
    if not 0 <= prefix_len <= 32:
        raise TraceError(f"bad prefix length {prefix_len}")
    host_bits = 32 - prefix_len
    mask = (_MAX_IPV4 << host_bits) & _MAX_IPV4
    base = prefix & mask
    if host_bits == 0:
        return base
    offset = int(rng.integers(0, 1 << host_bits))
    return base | offset


class PrefixPreservingAnonymizer:
    """Deterministic prefix-preserving IPv4 anonymizer.

    The construction follows Crypto-PAn: the i-th output bit is the i-th
    input bit XOR a pseudo-random function of the (i-1)-bit input prefix.
    Two inputs sharing a k-bit prefix therefore produce outputs sharing
    exactly a k-bit prefix (longer shared prefixes are flipped
    independently).

    The pseudo-random function here is HMAC-free keyed SHA-256 — this is
    a research artifact, not a security product; the property tests only
    require determinism, bijectivity on sampled sets and prefix
    preservation.

    Examples
    --------
    >>> anon = PrefixPreservingAnonymizer(key=b"secret")
    >>> a = anon.anonymize(ip_to_int("192.0.2.1"))
    >>> b = anon.anonymize(ip_to_int("192.0.2.200"))
    >>> (a >> 8) == (b >> 8)   # /24 prefix preserved
    True
    """

    def __init__(self, key: bytes = b"mawilab-repro") -> None:
        if not key:
            raise TraceError("anonymizer key must be non-empty")
        self._key = bytes(key)
        self._cache: dict[tuple[int, int], int] = {}

    def _prf_bit(self, prefix: int, length: int) -> int:
        """Pseudo-random bit derived from a ``length``-bit prefix."""
        cached = self._cache.get((prefix, length))
        if cached is not None:
            return cached
        digest = hashlib.sha256(
            self._key + struct.pack(">IB", prefix, length)
        ).digest()
        bit = digest[0] & 1
        self._cache[(prefix, length)] = bit
        return bit

    def anonymize(self, address: int) -> int:
        """Anonymize one address, preserving prefix relations."""
        if not 0 <= address <= _MAX_IPV4:
            raise TraceError(f"not a 32-bit address: {address!r}")
        result = 0
        for i in range(32):
            shift = 31 - i
            input_bit = (address >> shift) & 1
            prefix = address >> (shift + 1) if shift < 31 else 0
            flip = self._prf_bit(prefix, i)
            result = (result << 1) | (input_bit ^ flip)
        return result

    def anonymize_many(self, addresses: Iterable[int]) -> list[int]:
        """Anonymize an iterable of addresses (order preserved)."""
        return [self.anonymize(a) for a in addresses]
