"""Incremental similarity graph for the streaming engine.

The offline :func:`~repro.core.graph.build_similarity_graph` rebuilds
the whole graph from every alarm's traffic set.  A sliding-window
workload instead sees *deltas*: each window contributes a few new
alarms and retires the ones that slid out.  This module maintains the
similarity structure under those deltas:

* an inverted index (traffic element -> live alarm ids) updated per
  alarm insertion/removal;
* pairwise intersection counts maintained incrementally, so adding an
  alarm costs only its own posting-list walks and expiring one costs
  only the pairs it participated in;
* :meth:`DynamicSimilarityGraph.build` compacts the live alarms into a
  :class:`~repro.core.graph.SimilarityGraph` with edges inserted in
  sorted ``(u, v)`` order — the exact ordered adjacency the offline
  builders produce, so Louvain tie-breaking (and therefore community
  numbering) matches the offline pipeline when the window covers the
  whole trace.

Weights are computed with the scalar similarity measures, which are
bit-identical to the offline batch variants (see
``repro.core.similarity``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.core.graph import SimilarityGraph
from repro.core.similarity import SIMILARITY_MEASURES, SimilarityMeasure
from repro.errors import GraphError


class DynamicSimilarityGraph:
    """Similarity graph over a *mutating* population of alarms.

    Alarm ids are monotonically increasing ints assigned at insertion;
    they are stable for the alarm's whole residency, across any number
    of expirations of other alarms.

    Parameters
    ----------
    measure:
        Similarity measure name ("simpson" / "jaccard" / "constant")
        or a callable ``(intersection, |A|, |B|) -> weight``.
    edge_threshold:
        Edges with weight <= this value are dropped, exactly like the
        offline builder.
    """

    def __init__(
        self,
        measure: SimilarityMeasure | str = "simpson",
        edge_threshold: float = 0.0,
    ) -> None:
        if isinstance(measure, str):
            try:
                self._measure_fn = SIMILARITY_MEASURES[measure]
            except KeyError as exc:
                raise GraphError(
                    f"unknown similarity measure {measure!r}; "
                    f"known: {sorted(SIMILARITY_MEASURES)}"
                ) from exc
        else:
            self._measure_fn = measure
        self.edge_threshold = edge_threshold
        self._next_id = 0
        #: live alarm id -> its (frozen) traffic set.
        self._traffic: Dict[int, FrozenSet] = {}
        #: traffic element -> sorted-insertion list of live alarm ids.
        self._postings: Dict[object, list[int]] = {}
        #: (u, v) with u < v -> |traffic[u] & traffic[v]|.
        self._intersections: Dict[Tuple[int, int], int] = {}

    # -- delta API -----------------------------------------------------

    def add_alarm(self, traffic: Iterable) -> int:
        """Insert one alarm's traffic set; return its stable id."""
        alarm_id = self._next_id
        self._next_id += 1
        traffic_set = frozenset(traffic)
        self._traffic[alarm_id] = traffic_set
        for element in traffic_set:
            posting = self._postings.setdefault(element, [])
            for other in posting:
                pair = (other, alarm_id)
                self._intersections[pair] = self._intersections.get(pair, 0) + 1
            posting.append(alarm_id)
        return alarm_id

    def add_alarms(self, traffic_sets: Sequence[Iterable]) -> list[int]:
        """Insert several alarms; return their ids in order."""
        return [self.add_alarm(traffic) for traffic in traffic_sets]

    def expire_alarms(self, alarm_ids: Iterable[int]) -> None:
        """Remove alarms (and every pair they participated in)."""
        for alarm_id in alarm_ids:
            traffic = self._traffic.pop(alarm_id, None)
            if traffic is None:
                raise GraphError(f"alarm {alarm_id} is not live")
            for element in traffic:
                posting = self._postings[element]
                posting.remove(alarm_id)
                if not posting:
                    del self._postings[element]
                for other in posting:
                    pair = (
                        (other, alarm_id)
                        if other < alarm_id
                        else (alarm_id, other)
                    )
                    count = self._intersections[pair] - 1
                    if count:
                        self._intersections[pair] = count
                    else:
                        del self._intersections[pair]

    # -- inspection ----------------------------------------------------

    @property
    def n_live(self) -> int:
        return len(self._traffic)

    def live_ids(self) -> list[int]:
        """Live alarm ids in insertion (= ascending) order."""
        return sorted(self._traffic)

    def traffic_of(self, alarm_id: int) -> FrozenSet:
        return self._traffic[alarm_id]

    def intersection(self, a: int, b: int) -> int:
        """Current |traffic[a] & traffic[b]| (0 when disjoint)."""
        pair = (a, b) if a < b else (b, a)
        return self._intersections.get(pair, 0)

    # -- compaction ----------------------------------------------------

    def build(self) -> tuple[SimilarityGraph, dict[int, int]]:
        """Compact the live alarms into a :class:`SimilarityGraph`.

        Returns ``(graph, node_of)`` where ``node_of`` maps live alarm
        id -> node index ``0..n-1`` (ascending id order).  Edges are
        inserted in sorted ``(u, v)`` node order so the adjacency
        dicts iterate identically to the offline builders'.
        """
        ids = self.live_ids()
        node_of = {alarm_id: node for node, alarm_id in enumerate(ids)}
        graph = SimilarityGraph(n_nodes=len(ids))
        adjacency = graph.adjacency
        edges = []
        for (a, b), count in self._intersections.items():
            weight = self._measure_fn(
                count, len(self._traffic[a]), len(self._traffic[b])
            )
            if weight > self.edge_threshold and weight > 0:
                edges.append((node_of[a], node_of[b], weight))
        for u, v, weight in sorted(edges):
            adjacency[u][v] = weight
            adjacency[v][u] = weight
        return graph, node_of
