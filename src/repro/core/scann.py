"""SCANN: combining detectors via correspondence analysis (Merz'99).

Section 2.2.3: SCANN stores the binary votes of every configuration
for every community in a table, reduces it with correspondence
analysis so only the discriminating votes remain, projects two
*reference points* — a hypothetical community unanimously accepted and
one unanimously rejected — into the reduced space, and classifies each
community by which reference is nearer.

Vote encoding
-------------
Each configuration contributes an indicator *pair* of columns:
``(votes-anomalous, votes-normal)``.  This is Merz's construction for
categorical votes; with it, a configuration that never alarms
contributes a constant column pair that CA weighs down naturally —
exactly the mechanism that lets SCANN "disregard the unnecessary"
detectors (the paper observes it discarding the PCA detector's noise).

Relative distance
-----------------
For each community the *relative distance* is

    (d_opposite / d_assigned) - 1   in [0, inf)

where ``d_assigned`` is the distance to the reference point of the
assigned class.  0 means the community sits on the decision boundary;
the MAWILab taxonomy (Section 5) labels rejected communities with
relative distance <= 0.5 "suspicious" and the rest "notice".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.community import CommunitySet
from repro.core.confidence import configs_by_detector, confidence_scores, vote_vector
from repro.core.correspondence import CorrespondenceAnalysis
from repro.core.strategies import CombinationStrategy, Decision
from repro.errors import CombinerError


class SCANNStrategy(CombinationStrategy):
    """SCANN combination strategy (dimensionality-reduction based)."""

    name = "scann"

    def __init__(self, n_components: int | None = 2) -> None:
        """``n_components`` is the dimensionality of the reduced space.

        Keeping only the top axes is the point of SCANN: the retained
        axes capture the correlated (hence trustworthy) vote structure
        while idiosyncratic detectors project near the origin.  Passing
        ``None`` keeps every non-degenerate axis, which degrades SCANN
        to plain chi-square profile distances (the ablation benchmark
        ``test_ablation_scann.py`` quantifies the difference).
        """
        self.n_components = n_components

    def _aggregate(self, scores: dict[str, float]) -> float:  # pragma: no cover
        raise CombinerError("SCANN does not aggregate confidence scores")

    def classify(
        self,
        community_set: CommunitySet,
        config_names: Sequence[str],
    ) -> list[Decision]:
        """Classify communities by nearest reference in CA space."""
        if not config_names:
            raise CombinerError("no configurations supplied")
        communities = community_set.communities
        detector_configs = configs_by_detector(config_names)
        if not communities:
            return []

        votes = np.array(
            [vote_vector(c, config_names) for c in communities], dtype=float
        )
        decisions: list[Decision] = []
        indicator = _indicator_matrix(votes)
        accept_ref = _indicator_matrix(np.ones((1, votes.shape[1])))
        reject_ref = _indicator_matrix(np.zeros((1, votes.shape[1])))

        try:
            ca = CorrespondenceAnalysis(indicator, n_components=self.n_components)
            degenerate = ca.n_components == 0
        except CombinerError:
            degenerate = True

        if degenerate:
            # All communities share one vote profile: CA has no axis to
            # discriminate on.  Fall back to the vote fraction itself.
            for community, row in zip(communities, votes):
                mu = float(row.mean())
                decisions.append(
                    Decision(
                        community_id=community.id,
                        accepted=mu > 0.5,
                        mu=mu,
                        relative_distance=0.0,
                        scores=confidence_scores(community, detector_configs),
                    )
                )
            return decisions

        coords = ca.row_coordinates
        ref_acc = ca.project_rows(accept_ref)[0]
        ref_rej = ca.project_rows(reject_ref)[0]
        for community, row, point in zip(communities, votes, coords):
            d_acc = float(np.linalg.norm(point - ref_acc))
            d_rej = float(np.linalg.norm(point - ref_rej))
            accepted = d_acc < d_rej
            d_assigned = d_acc if accepted else d_rej
            d_opposite = d_rej if accepted else d_acc
            if d_assigned <= 1e-12:
                relative = float("inf") if d_opposite > 1e-12 else 0.0
            else:
                relative = d_opposite / d_assigned - 1.0
            # mu reported for reference: distance-based score in [0, 1].
            denominator = d_acc + d_rej
            mu = d_rej / denominator if denominator > 0 else 0.5
            decisions.append(
                Decision(
                    community_id=community.id,
                    accepted=accepted,
                    mu=mu,
                    relative_distance=max(relative, 0.0),
                    scores=confidence_scores(community, detector_configs),
                )
            )
        return decisions


def _indicator_matrix(votes: np.ndarray) -> np.ndarray:
    """Expand binary votes into (anomalous, normal) indicator pairs.

    Input (n, C) with entries in {0, 1}; output (n, 2C) where columns
    2j / 2j+1 indicate configuration j voting anomalous / normal.
    """
    n, n_configs = votes.shape
    indicator = np.zeros((n, 2 * n_configs))
    indicator[:, 0::2] = votes
    indicator[:, 1::2] = 1.0 - votes
    return indicator
