#!/usr/bin/env python
"""Fail CI when bench throughput regresses against the committed baseline.

Usage::

    python scripts/check_bench_regression.py bench.json BENCH_baseline.json \
        [--tolerance 0.2]

Compares the throughput metrics of a fresh ``repro bench`` artifact
against ``BENCH_baseline.json`` (committed at the repository root) and
exits non-zero if any tracked metric fell more than ``tolerance``
(default 20 %) below baseline:

* **batch** — offline pipeline packets/sec (``n_packets / total``);
* **streaming** — ``streaming.packets_per_sec``;
* **alarm path** — ``alarm_path.columnar.alarms_per_sec`` (Steps 2-4
  throughput over the columnar ``AlarmTable`` data path);
* **serve** — ``serve.queries_per_sec`` (live ``/labels`` query
  throughput against the running daemon);
* **warehouse** — ``warehouse.warehouse_queries_per_sec`` (cross-day
  predicate queries over memory-mapped label columns).

Higher-is-better only: faster-than-baseline runs always pass, and CI
hardware faster than the baseline host can only add headroom.
Host-relative ratios are additionally enforced so the fast paths
cannot silently rot:

* the fan-out transport microbench keeps the shared-memory path at
  least as fast as pickle (``shm_speedup >= 1`` within tolerance);
* the alarm-path comparison keeps the columnar data path at least 2x
  the object path (``columnar_speedup >= 2`` within tolerance);
* the end-to-end fan-out labeling legs keep the shm pool at least 2x
  a single process (``shm_vs_single >= 2`` within tolerance) and at
  least as fast as the pickle pool (``shm_vs_pickle >= 1`` within
  tolerance).  These two need real parallelism, so they are enforced
  only when the candidate ran with ``workers > 1`` on a host with
  more than one CPU (``fanout.cpu_count``) — a single-core runner
  records a skip instead of a false failure;
* the detect leg keeps the shared feature-plane cache at least 1.5x
  the uncached ensemble (``detect_leg.detect_speedup >= 1.5`` within
  tolerance), following the same single-core self-skip convention
  (wall-clock ratios on oversubscribed single-core runners are too
  noisy to gate on);
* the warehouse leg keeps mmap cross-day queries at least 2x the CSV
  re-parse path (``warehouse.query_speedup >= 2`` within tolerance —
  the 10x month-scale claim is enforced by
  ``benchmarks/test_warehouse_perf.py``; the bench leg's handful of
  days measures a smaller corpus) and the delta recompute at least as
  fast as full relabeling (``recompute_speedup >= 1`` within
  tolerance).

Two absolute bounds ride along (no tolerance):

* when the candidate bench ran with ``--profile``, the serve leg
  records per-feed queue-depth high-water marks, and any peak above
  its configured ``max_packets`` bound fails the gate outright —
  backpressure must keep daemon memory bounded;
* the warehouse leg's heuristics-only recompute must rerun **zero**
  Step 1 detections (``warehouse.recompute.step1_reruns == 0``) — a
  nonzero count means delta recompute silently degraded to full
  relabeling.

Gate accounting is machine-readable: every gate evaluated lands in a
``gates`` object written back into the *candidate* JSON artifact —
``{"ran": [names...], "skipped": [{"gate", "reason"}...]}`` — so CI
artifacts record exactly which gates a run enforced and which
self-skipped (each skip also prints a loud one-line ``NOTICE:`` for
the human reading the log).
"""

from __future__ import annotations

import argparse
import json
import sys


def batch_packets_per_sec(payload: dict) -> float:
    return payload["n_packets"] / max(payload["total"], 1e-9)


def collect_metrics(payload: dict) -> dict[str, float]:
    metrics = {
        "batch_packets_per_sec": batch_packets_per_sec(payload),
        "streaming_packets_per_sec": payload["streaming"][
            "packets_per_sec"
        ],
    }
    alarm_path = payload.get("alarm_path")
    if alarm_path is not None:
        metrics["alarm_path_columnar_alarms_per_sec"] = alarm_path[
            "columnar"
        ]["alarms_per_sec"]
    serve = payload.get("serve")
    if serve is not None:
        metrics["serve_queries_per_sec"] = serve["queries_per_sec"]
    warehouse = payload.get("warehouse")
    if warehouse is not None:
        metrics["warehouse_queries_per_sec"] = warehouse[
            "warehouse_queries_per_sec"
        ]
    return metrics


class GateLedger:
    """Every gate's outcome, for the artifact's ``gates`` object."""

    def __init__(self) -> None:
        self.ran: list[str] = []
        self.skipped: list[dict] = []
        self.failures: list[str] = []

    def ok(self, gate: str) -> None:
        self.ran.append(gate)

    def fail(self, gate: str) -> None:
        self.ran.append(gate)
        self.failures.append(gate)

    def skip(self, gate: str, reason: str) -> None:
        self.skipped.append({"gate": gate, "reason": reason})
        print(f"NOTICE: {gate} gate SKIPPED ({reason})")

    def to_payload(self) -> dict:
        return {"ran": self.ran, "skipped": self.skipped}


def check_ratio(
    ledger: GateLedger,
    gate: str,
    ratio: float,
    target: float,
    tolerance: float,
    label: str,
) -> None:
    """One higher-is-better ratio gate with fractional tolerance."""
    floor = target * (1.0 - tolerance)
    status = "ok" if ratio >= floor else "REGRESSED"
    print(f"{label}: {ratio:.2f}x (floor {floor:.2f}x) {status}")
    if ratio >= floor:
        ledger.ok(gate)
    else:
        ledger.fail(gate)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="fresh repro bench JSON")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression (0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    with open(args.candidate) as handle:
        candidate = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    ledger = GateLedger()
    candidate_metrics = collect_metrics(candidate)
    baseline_metrics = collect_metrics(baseline)
    for name, base_value in baseline_metrics.items():
        got = candidate_metrics.get(name)
        if got is None:
            ledger.skip(name, "candidate bench did not run that leg")
            continue
        floor = base_value * (1.0 - args.tolerance)
        status = "ok" if got >= floor else "REGRESSED"
        print(
            f"{name}: {got:,.0f} vs baseline {base_value:,.0f} "
            f"(floor {floor:,.0f}) {status}"
        )
        if got >= floor:
            ledger.ok(name)
        else:
            ledger.fail(name)

    fanout = candidate.get("fanout", {})
    speedup = fanout.get("shm_speedup")
    if speedup is not None:
        check_ratio(
            ledger,
            "fanout_shm_speedup",
            speedup,
            1.0,
            args.tolerance,
            "fanout shm_speedup",
        )

    # End-to-end fan-out wins: only meaningful when the candidate run
    # actually had parallel hardware and used it.
    if fanout.get("workers", 0) > 1 and fanout.get("cpu_count", 1) > 1:
        for name, target in (("shm_vs_single", 2.0), ("shm_vs_pickle", 1.0)):
            ratio = fanout.get(name)
            if ratio is None:
                continue
            check_ratio(
                ledger,
                f"fanout_{name}",
                ratio,
                target,
                args.tolerance,
                f"fanout {name}",
            )
    elif fanout:
        reason = (
            f"workers={fanout.get('workers')}, "
            f"cpu_count={fanout.get('cpu_count', 1)}; needs a "
            "multi-core parallel run"
        )
        ledger.skip("fanout_shm_vs_single", reason)
        ledger.skip("fanout_shm_vs_pickle", reason)

    # Plane-cache win: cached ensemble Step 1 vs uncached, same
    # single-core self-skip convention as the fan-out ratios.
    detect_leg = candidate.get("detect_leg", {})
    detect_speedup = detect_leg.get("detect_speedup")
    if detect_speedup is not None:
        if detect_leg.get("cpu_count", 1) > 1:
            check_ratio(
                ledger,
                "detect_leg_detect_speedup",
                detect_speedup,
                1.5,
                args.tolerance,
                "detect_leg detect_speedup",
            )
        else:
            ledger.skip(
                "detect_leg_detect_speedup",
                f"cpu_count={detect_leg.get('cpu_count', 1)}; ratio "
                f"measured {detect_speedup:.2f}x, gated only on "
                "multi-core hosts",
            )

    # Bounded-memory gate: the serve leg's queue high-water marks
    # (recorded under ``repro bench --profile``) must stay within their
    # configured bounds — a peak above its bound means backpressure
    # stopped blocking producers and daemon memory is growing.  This is
    # a correctness bound, not a throughput ratio: no tolerance.
    serve_queues = candidate.get("serve", {}).get("queues")
    if serve_queues is not None:
        for feed_name, queue in serve_queues.items():
            peak = queue["peak_packets"]
            bound = queue["max_packets"]
            status = "ok" if peak <= bound else "UNBOUNDED"
            print(
                f"serve queue {feed_name}: peak {peak:,} packets "
                f"(bound {bound:,}) {status}"
            )
            gate = f"serve_queue_{feed_name}_bounded"
            if peak <= bound:
                ledger.ok(gate)
            else:
                ledger.fail(gate)
    elif candidate.get("serve") is not None:
        ledger.skip(
            "serve_queue_bounded",
            "candidate bench ran without --profile; no queue "
            "high-water marks recorded",
        )

    alarm_speedup = candidate.get("alarm_path", {}).get("columnar_speedup")
    if alarm_speedup is not None:
        check_ratio(
            ledger,
            "alarm_path_columnar_speedup",
            alarm_speedup,
            2.0,
            args.tolerance,
            "alarm_path columnar_speedup",
        )

    # Warehouse gates: mmap queries must beat CSV re-parsing, and the
    # delta recompute must (a) never rerun Step 1 after a heuristics-
    # only change — an absolute correctness bound — and (b) beat full
    # relabeling wall-clock.
    warehouse = candidate.get("warehouse")
    if warehouse is not None:
        check_ratio(
            ledger,
            "warehouse_query_speedup",
            warehouse["query_speedup"],
            2.0,
            args.tolerance,
            "warehouse query_speedup",
        )
        recompute = warehouse["recompute"]
        reruns = recompute["step1_reruns"]
        status = "ok" if reruns == 0 else "DELTA BROKEN"
        print(
            f"warehouse recompute step1_reruns: {reruns} "
            f"(bound 0) {status}"
        )
        gate = "warehouse_recompute_zero_step1"
        if reruns == 0:
            ledger.ok(gate)
        else:
            ledger.fail(gate)
        check_ratio(
            ledger,
            "warehouse_recompute_speedup",
            recompute["recompute_speedup"],
            1.0,
            args.tolerance,
            "warehouse recompute_speedup",
        )
    else:
        ledger.skip(
            "warehouse_query_speedup",
            "candidate bench did not run the warehouse leg",
        )

    # Machine-readable gate accounting, written back into the artifact
    # CI archives: which gates this run enforced, which self-skipped.
    candidate["gates"] = ledger.to_payload()
    with open(args.candidate, "w") as handle:
        json.dump(candidate, handle, indent=2)
        handle.write("\n")
    print(
        f"gates: {len(ledger.ran)} ran, {len(ledger.skipped)} skipped "
        f"(recorded in {args.candidate})"
    )

    if ledger.failures:
        print(
            f"bench regression >{args.tolerance:.0%} in: "
            + ", ".join(ledger.failures),
            file=sys.stderr,
        )
        return 1
    print("bench within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
