"""Tests for traffic annotations (paper Section 6) and the classifier."""

import pytest

from repro.core.annotations import (
    ANNOTATION_DETECTOR,
    Annotation,
    community_tags,
    merge_annotations,
    split_annotation_alarms,
    strip_annotation_configs,
)
from repro.errors import CombinerError
from repro.labeling.mawilab import MAWILabPipeline
from repro.mawi.classifier import annotate_trace, classify_port
from repro.net.filters import FeatureFilter
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP


def make_annotation(tag="web", src=1, t0=0.0, t1=10.0, source="clf"):
    return Annotation(
        tag=tag,
        t0=t0,
        t1=t1,
        filters=(FeatureFilter(src=src, t0=t0, t1=t1),),
        source=source,
    )


class TestAnnotation:
    def test_to_alarm(self):
        alarm = make_annotation(source="portclassifier:web").to_alarm()
        assert alarm.detector == ANNOTATION_DETECTOR
        assert alarm.config == "annotation/portclassifier:web"

    def test_requires_window(self):
        with pytest.raises(CombinerError):
            Annotation(tag="x", t0=5.0, t1=1.0, filters=(FeatureFilter(src=1),))

    def test_requires_feature(self):
        with pytest.raises(CombinerError):
            Annotation(tag="x", t0=0.0, t1=1.0, filters=())
        with pytest.raises(CombinerError):
            Annotation(
                tag="x", t0=0.0, t1=1.0, filters=(FeatureFilter(t0=0.0),)
            )

    def test_merge_and_split(self):
        annotation = make_annotation()
        merged = merge_annotations([], [annotation])
        detector_alarms, annotation_alarms = split_annotation_alarms(merged)
        assert detector_alarms == []
        assert len(annotation_alarms) == 1

    def test_strip_configs(self):
        configs = ["pca/optimal", "annotation/clf:web", "kl/optimal"]
        assert strip_annotation_configs(configs) == ["pca/optimal", "kl/optimal"]


class TestClassifier:
    def test_classify_port(self):
        assert classify_port(PROTO_TCP, 1234, 80) == "web"
        assert classify_port(PROTO_UDP, 53, 5353) == "dns"
        assert classify_port(PROTO_ICMP, 0, 0) == "icmp"
        assert classify_port(PROTO_TCP, 40000, 50000) == "p2p"
        assert classify_port(PROTO_TCP, 999, 1000) == "other"

    def test_annotate_trace(self, archive_day):
        annotations = annotate_trace(archive_day.trace, min_packets=20)
        assert annotations
        tags = {a.tag for a in annotations}
        assert tags <= {"web", "dns", "p2p", "icmp"}
        for annotation in annotations:
            assert annotation.t1 > annotation.t0
            assert annotation.filters[0].degree == 4

    def test_min_packets_filters(self, archive_day):
        few = annotate_trace(archive_day.trace, min_packets=100)
        many = annotate_trace(archive_day.trace, min_packets=10)
        assert len(few) <= len(many)


class TestPipelineWithAnnotations:
    def test_annotations_do_not_change_decisions(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline()
        plain = pipeline.run_with_alarms(archive_day.trace, day_alarms)
        annotations = annotate_trace(archive_day.trace, min_packets=30)
        annotated = pipeline.run_with_alarms(
            archive_day.trace, day_alarms, annotations=annotations
        )
        # The combiner ignores annotations: the accepted count must be
        # driven by detector votes only.  (Community structure can
        # shift when annotations bridge alarms, so compare acceptance
        # of detector-only communities conservatively: counts stay in
        # the same ballpark.)
        plain_accepted = sum(1 for d in plain.decisions if d.accepted)
        annotated_accepted = sum(1 for d in annotated.decisions if d.accepted)
        assert abs(plain_accepted - annotated_accepted) <= max(
            3, plain_accepted
        )

    def test_tags_reported(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline()
        annotations = annotate_trace(archive_day.trace, min_packets=30)
        result = pipeline.run_with_alarms(
            archive_day.trace, day_alarms, annotations=annotations
        )
        tagged = [r for r in result.labels if r.annotations]
        assert tagged, "some community should carry annotation tags"
        for record in tagged:
            # Detector list never contains the annotation family.
            assert ANNOTATION_DETECTOR not in record.detectors

    def test_community_tags_helper(self, archive_day, day_alarms):
        pipeline = MAWILabPipeline()
        annotations = annotate_trace(archive_day.trace, min_packets=30)
        result = pipeline.run_with_alarms(
            archive_day.trace, day_alarms, annotations=annotations
        )
        for community, record in zip(
            result.community_set.communities, result.labels
        ):
            assert tuple(community_tags(community)) == record.annotations
