"""Louvain community detection (Blondel et al., 2008), from scratch.

The similarity estimator needs a community-mining algorithm that works
well on sparse graphs with isolated nodes and is able to find *small*
groups of a few alarms (paper Section 2.1.3).  Louvain fits: it greedily
maximizes modularity by local node moves, then aggregates communities
into super-nodes and repeats.

The implementation is deterministic for a given ``seed`` (node visit
order is shuffled once per pass with a seeded RNG, as in the reference
implementation).
"""

from __future__ import annotations

import random

from repro.core.graph import SimilarityGraph
from repro.errors import GraphError


def modularity(
    graph: SimilarityGraph,
    partition: dict[int, int],
    resolution: float = 1.0,
) -> float:
    """Newman modularity Q of a partition of ``graph``.

    ``partition`` maps node -> community label.  Isolated nodes
    contribute nothing.  For an empty graph Q is defined as 0.
    """
    two_m = sum(graph.degree(node) for node in range(graph.n_nodes))
    if two_m == 0:
        return 0.0
    internal: dict[int, float] = {}
    degree_sum: dict[int, float] = {}
    for node in range(graph.n_nodes):
        community = partition[node]
        degree_sum[community] = degree_sum.get(community, 0.0) + graph.degree(node)
        for neighbor, weight in graph.neighbors(node).items():
            if partition[neighbor] == community:
                internal[community] = internal.get(community, 0.0) + weight
    q = 0.0
    for community, k_sum in degree_sum.items():
        inner = internal.get(community, 0.0)  # counted twice (both directions)
        q += inner / two_m - resolution * (k_sum / two_m) ** 2
    return q


class _WorkGraph:
    """Mutable weighted graph used during aggregation passes."""

    def __init__(self, adjacency: dict[int, dict[int, float]], self_loops: dict[int, float]):
        self.adjacency = adjacency
        self.self_loops = self_loops  # node -> self-loop weight (counted once)
        self.nodes = list(adjacency)

    @classmethod
    def from_similarity_graph(cls, graph: SimilarityGraph) -> "_WorkGraph":
        adjacency = {
            node: dict(graph.neighbors(node)) for node in range(graph.n_nodes)
        }
        return cls(adjacency, {node: 0.0 for node in range(graph.n_nodes)})

    def degree(self, node: int) -> float:
        return sum(self.adjacency[node].values()) + 2.0 * self.self_loops[node]

    def total_weight(self) -> float:
        """Sum of edge weights, each edge counted once."""
        edge_sum = sum(
            weight
            for node, nbrs in self.adjacency.items()
            for neighbor, weight in nbrs.items()
        ) / 2.0
        return edge_sum + sum(self.self_loops.values())


def _one_pass(
    work: _WorkGraph, resolution: float, rng: random.Random
) -> tuple[dict[int, int], bool]:
    """One local-move phase; returns (partition, improved)."""
    m = work.total_weight()
    if m <= 0:
        return {node: node for node in work.nodes}, False
    community: dict[int, int] = {node: node for node in work.nodes}
    community_degree: dict[int, float] = {
        node: work.degree(node) for node in work.nodes
    }
    improved = False
    order = list(work.nodes)
    rng.shuffle(order)
    moved = True
    while moved:
        moved = False
        for node in order:
            node_degree = work.degree(node)
            current = community[node]
            # Weights from node to each neighbouring community.
            links: dict[int, float] = {}
            for neighbor, weight in work.adjacency[node].items():
                links[community[neighbor]] = (
                    links.get(community[neighbor], 0.0) + weight
                )
            # Detach node.
            community_degree[current] -= node_degree
            best_community = current
            best_gain = links.get(current, 0.0) - (
                resolution * community_degree[current] * node_degree / (2.0 * m)
            )
            for candidate, link_weight in links.items():
                if candidate == current:
                    continue
                gain = link_weight - (
                    resolution
                    * community_degree[candidate]
                    * node_degree
                    / (2.0 * m)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + node_degree
            )
            if best_community != current:
                community[node] = best_community
                moved = True
                improved = True
    return community, improved


def _aggregate(work: _WorkGraph, partition: dict[int, int]) -> tuple[_WorkGraph, dict[int, int]]:
    """Build the aggregated graph; returns it plus node -> super-node map."""
    labels = sorted(set(partition.values()))
    relabel = {label: i for i, label in enumerate(labels)}
    mapping = {node: relabel[partition[node]] for node in work.nodes}
    adjacency: dict[int, dict[int, float]] = {i: {} for i in range(len(labels))}
    self_loops: dict[int, float] = {i: 0.0 for i in range(len(labels))}
    for node in work.nodes:
        cu = mapping[node]
        self_loops[cu] += work.self_loops[node]
        for neighbor, weight in work.adjacency[node].items():
            cv = mapping[neighbor]
            if cu == cv:
                # Each internal edge visited from both ends: half each.
                self_loops[cu] += weight / 2.0
            else:
                adjacency[cu][cv] = adjacency[cu].get(cv, 0.0) + weight
    # Internal self-loop contributions were double-counted per direction;
    # the loop above already adds weight/2 from each endpoint visit.
    return _WorkGraph(adjacency, self_loops), mapping


def louvain(
    graph: SimilarityGraph,
    resolution: float = 1.0,
    seed: int = 0,
    max_passes: int = 20,
) -> dict[int, int]:
    """Louvain partition of a similarity graph.

    Parameters
    ----------
    graph:
        The similarity graph (isolated nodes allowed).
    resolution:
        Modularity resolution; 1.0 is standard modularity.
    seed:
        Seed for the node-visit shuffles; fixes the output.
    max_passes:
        Safety bound on aggregation rounds.

    Returns
    -------
    dict
        node -> community label (labels are arbitrary but contiguous).
    """
    if resolution <= 0:
        raise GraphError("resolution must be positive")
    rng = random.Random(seed)
    work = _WorkGraph.from_similarity_graph(graph)
    # node (original) -> current super-node.
    assignment = {node: node for node in range(graph.n_nodes)}
    for _ in range(max_passes):
        partition, improved = _one_pass(work, resolution, rng)
        if not improved:
            break
        work, mapping = _aggregate(work, partition)
        assignment = {
            node: mapping[partition[assignment[node]]] for node in assignment
        }
    # Relabel contiguously.
    labels = sorted(set(assignment.values()))
    relabel = {label: i for i, label in enumerate(labels)}
    return {node: relabel[label] for node, label in assignment.items()}
