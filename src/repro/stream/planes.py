"""Incrementally maintained feature-plane bases for streaming windows.

The batch pipeline computes each window's base feature planes — per
field, the sorted distinct values with per-packet codes
(:class:`~repro.detectors.features.BinnedHistogram`) and the sketch
bucket assignment — from scratch with ``np.unique`` and a full
vectorized hash per window.  Under a sliding window most of that work
repeats: the set of distinct values a stream has *ever* carried only
grows, and a value's sketch bucket never changes.

:class:`StreamingPlanes` exploits both facts.  :meth:`append` folds
each ingested chunk into one growing sorted **value dictionary** per
tracked field, hashing only the values never seen before into a
bucket map aligned with the dictionary.  :meth:`seed_window` then
derives a window's planes by ``searchsorted`` against the dictionary —
an exact reproduction of the from-scratch planes, because every packet
in a window was previously ingested:

* ``stable = searchsorted(dict_values, column)`` maps each packet to
  its dictionary slot (always a hit);
* the window's distinct values are ``dict_values[present]`` where
  ``present`` marks occupied slots — sorted and unique by
  construction, exactly ``np.unique(column)``;
* compacting occupied slots (``cumsum(present) - 1``) renumbers
  ``stable`` into the dense codes ``np.unique(..., return_inverse=True)``
  would emit;
* bucket assignments are one gather from the precomputed map, exactly
  ``shared_hasher(n, seed).buckets(column)``.

Eviction is deliberately a no-op: dropping packets from the window
never invalidates a value's hash or its position in the dictionary, so
the dictionary only grows.  Memory is therefore bounded by the number
of *distinct* values the stream has carried (at most ``2**32`` per
address field, in practice the stream's address diversity), not by its
length — the same bound the offline trace pays for one ``np.unique``.

Only vectorized-engine planes are maintained; the reference engine's
Counter-based planes depend on packet order inside the window and are
recomputed per window (they are the correctness oracle, not the fast
path).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.planes import PlaneCache, merge_plane_specs
from repro.detectors.sketch import shared_hasher
from repro.net.table import PacketTable
from repro.net.trace import Trace


class StreamingPlanes:
    """Grow-only value dictionaries + bucket maps for one stream.

    Parameters
    ----------
    detectors:
        The ensemble whose ``plane_specs()`` decide which fields are
        tracked and which ``binned_histogram`` / ``sketch_buckets``
        planes :meth:`seed_window` pre-populates.
    """

    def __init__(self, detectors) -> None:
        specs = merge_plane_specs(detectors)
        #: ("binned_histogram", field, n_bins) specs to seed per window.
        self._hist_specs = [s for s in specs if s[0] == "binned_histogram"]
        #: ("sketch_buckets", field, n_sketches, seed) specs to seed.
        self._bucket_specs = [s for s in specs if s[0] == "sketch_buckets"]
        self._fields = sorted(
            {s[1] for s in self._hist_specs}
            | {s[1] for s in self._bucket_specs}
        )
        #: field -> sorted distinct values ever ingested (native dtype).
        self._values: dict[str, np.ndarray] = {}
        #: (field, n_sketches, seed) -> bucket per dictionary slot.
        self._bucket_maps: dict[tuple, np.ndarray] = {}
        self.appends = 0
        self.novel_values = 0
        self.windows_seeded = 0

    @property
    def tracked_fields(self) -> tuple[str, ...]:
        return tuple(self._fields)

    def nbytes(self) -> int:
        """Current dictionary + bucket-map footprint in bytes."""
        return sum(v.nbytes for v in self._values.values()) + sum(
            m.nbytes for m in self._bucket_maps.values()
        )

    # -- ingest --------------------------------------------------------

    def append(self, chunk: PacketTable) -> None:
        """Fold one ingested chunk into the dictionaries.

        Novel values merge into each tracked field's sorted dictionary
        and are hashed — once, ever — into the aligned bucket maps.
        Must be called for every chunk entering the window ring;
        :meth:`seed_window` is only exact for packets ingested here.
        """
        if len(chunk) == 0:
            return
        self.appends += 1
        for field in self._fields:
            chunk_values = np.unique(chunk.column(field))
            values = self._values.get(field)
            if values is None:
                values = chunk_values[:0]
            if values.size:
                pos = np.searchsorted(values, chunk_values)
                in_range = pos < values.size
                fresh_mask = ~in_range
                fresh_mask[in_range] = (
                    values[pos[in_range]] != chunk_values[in_range]
                )
                fresh = chunk_values[fresh_mask]
            else:
                fresh = chunk_values
            if fresh.size == 0:
                continue
            merged = np.concatenate([values, fresh])
            merged.sort(kind="stable")
            self.novel_values += int(fresh.size)
            old_slots = np.searchsorted(merged, values)
            fresh_slots = np.searchsorted(merged, fresh)
            for spec in self._bucket_specs:
                if spec[1] != field:
                    continue
                _kind, _field, n_sketches, seed = spec
                fresh_buckets = shared_hasher(n_sketches, seed).buckets(
                    fresh.astype(np.uint64)
                )
                key = (field, n_sketches, seed)
                old_map = self._bucket_maps.get(key)
                new_map = np.empty(merged.size, dtype=fresh_buckets.dtype)
                if old_map is not None:
                    new_map[old_slots] = old_map
                new_map[fresh_slots] = fresh_buckets
                self._bucket_maps[key] = new_map
            self._values[field] = merged

    def evict_before(self, t: float) -> None:  # noqa: ARG002
        """Window eviction hook — deliberately a no-op.

        Evicting packets never invalidates a value's hash or its
        dictionary position; see the module docstring for the memory
        bound this trades for.
        """

    # -- per-window seeding --------------------------------------------

    def seed_window(self, trace: Trace, cache: PlaneCache) -> None:
        """Pre-populate ``cache`` with the window's base planes.

        Every seeded plane is element-identical (values, codes, counts,
        dtypes) to what the vectorized ``feature_plane`` kernel would
        compute from scratch for this window — the property the
        streaming parity tests pin.
        """
        table = trace.table
        if len(table) == 0:
            return
        self.windows_seeded += 1
        for field in self._fields:
            values = self._values.get(field)
            if values is None or values.size == 0:
                continue
            stable = np.searchsorted(values, table.column(field))
            for spec in self._bucket_specs:
                if spec[1] != field:
                    continue
                bucket_map = self._bucket_maps.get(
                    (field, spec[2], spec[3])
                )
                if bucket_map is not None:
                    cache.seed(spec, bucket_map[stable])
            hist_specs = [s for s in self._hist_specs if s[1] == field]
            if not hist_specs:
                continue
            present = np.zeros(values.size, dtype=bool)
            present[stable] = True
            window_values = values[present]
            renumber = np.cumsum(present) - 1
            codes = renumber[stable].astype(np.int64, copy=False)
            n_values = int(window_values.size)
            for spec in hist_specs:
                n_bins = spec[2]
                bin_idx = cache.get(trace, ("time_bins", n_bins))
                counts = np.bincount(
                    bin_idx * n_values + codes,
                    minlength=n_bins * n_values,
                ).reshape(n_bins, n_values)
                from repro.detectors.features import BinnedHistogram

                cache.seed(
                    spec,
                    BinnedHistogram(
                        feature=field,
                        values=window_values,
                        codes=codes,
                        counts=counts,
                    ),
                )

    def counters(self) -> dict:
        """Observability counters for stats/bench artifacts."""
        return {
            "appends": self.appends,
            "novel_values": self.novel_values,
            "windows_seeded": self.windows_seeded,
            "nbytes": self.nbytes(),
        }


__all__ = ["StreamingPlanes"]
