"""Unit tests for repro.rules.itemsets and repro.rules.summarize."""

import pytest

from repro.net.flow import FlowKey
from repro.rules.apriori import apriori
from repro.rules.itemsets import (
    Rule,
    itemset_to_rule,
    rules_from_result,
    transactions_from_flows,
    transactions_from_packets,
)
from repro.rules.summarize import summarize_transactions
from tests.conftest import make_packet


class TestTransactions:
    def test_packet_encoding(self):
        p = make_packet(src=1, dst=2, sport=10, dport=20)
        (t,) = transactions_from_packets([p])
        assert ("src", 1) in t
        assert ("dport", 20) in t
        assert len(t) == 4

    def test_flow_encoding(self):
        key = FlowKey(1, 10, 2, 20, 6)
        (t,) = transactions_from_flows([key])
        assert ("sport", 10) in t
        assert ("dst", 2) in t


class TestRule:
    def test_degree(self):
        assert Rule().degree == 0
        assert Rule(src=1, dport=80).degree == 2
        assert Rule(src=1, sport=2, dst=3, dport=4).degree == 4

    def test_describe(self):
        rule = Rule(src=0x01020304, dport=80)
        assert rule.describe() == "<1.2.3.4, *, *, 80>"

    def test_to_filter(self):
        rule = Rule(src=1, dport=80)
        f = rule.to_filter(t0=1.0, t1=2.0)
        assert f.src == 1 and f.dport == 80
        assert f.t0 == 1.0 and f.t1 == 2.0

    def test_itemset_to_rule(self):
        rule = itemset_to_rule(
            frozenset([("src", 5), ("dport", 53)]), count=3, support=0.5
        )
        assert rule.src == 5 and rule.dport == 53
        assert rule.sport is None and rule.dst is None
        assert rule.count == 3 and rule.support == 0.5

    def test_itemset_to_rule_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            itemset_to_rule(frozenset([("nope", 5)]))


class TestRulesFromResult:
    def test_sorted_by_degree_then_support(self):
        packets = [make_packet(src=1, dst=2, sport=10, dport=20)] * 10
        result = apriori(transactions_from_packets(packets), min_support_pct=50)
        rules = rules_from_result(result)
        assert rules[0].degree == 4

    def test_limit(self):
        packets = [
            make_packet(src=i, dst=i + 100, sport=i, dport=i) for i in range(1, 6)
        ] * 2
        result = apriori(transactions_from_packets(packets), min_support_pct=10)
        rules = rules_from_result(result, limit=2)
        assert len(rules) == 2


class TestSummarize:
    def test_homogeneous_traffic_degree_4(self):
        packets = [make_packet(src=1, dst=2, sport=10, dport=20)] * 20
        summary = summarize_transactions(transactions_from_packets(packets))
        assert summary.rule_degree == pytest.approx(4.0)
        assert summary.rule_support == pytest.approx(100.0)

    def test_paper_example_http_server(self):
        # Server IPA:80 -> IPB and IPC: two rules of degree 3 (src,
        # sport, dst), each covering half the traffic.
        packets = [make_packet(src=1, sport=80, dst=2, dport=1000 + i) for i in range(10)]
        packets += [make_packet(src=1, sport=80, dst=3, dport=2000 + i) for i in range(10)]
        summary = summarize_transactions(
            transactions_from_packets(packets), min_support_pct=20
        )
        assert summary.rule_degree == pytest.approx(3.0)
        assert summary.rule_support == pytest.approx(100.0)
        described = {r.describe() for r in summary.rules}
        assert "<0.0.0.1, 80, 0.0.0.2, *>" in described
        assert "<0.0.0.1, 80, 0.0.0.3, *>" in described

    def test_incoherent_traffic_low_degree(self):
        packets = [
            make_packet(src=i, dst=i + 500, sport=i + 1, dport=80)
            for i in range(1, 30)
        ]
        summary = summarize_transactions(transactions_from_packets(packets))
        # Only dport=80 is frequent.
        assert summary.rule_degree == pytest.approx(1.0)

    def test_empty(self):
        summary = summarize_transactions([])
        assert summary.rules == []
        assert summary.rule_support == 0.0

    def test_describe_renders(self):
        packets = [make_packet()] * 5
        summary = summarize_transactions(transactions_from_packets(packets))
        assert "[100%]" in summary.describe()
