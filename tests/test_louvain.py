"""Unit tests for the Louvain implementation."""

import pytest

from repro.core.graph import SimilarityGraph
from repro.core.louvain import louvain, modularity
from repro.errors import GraphError


def two_cliques(n=4, bridge_weight=0.01) -> SimilarityGraph:
    """Two n-cliques joined by one weak edge."""
    graph = SimilarityGraph(n_nodes=2 * n)
    for offset in (0, n):
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge(offset + i, offset + j, 1.0)
    graph.add_edge(0, n, bridge_weight)
    return graph


class TestLouvain:
    def test_two_cliques_split(self):
        graph = two_cliques()
        partition = louvain(graph, seed=0)
        left = {partition[i] for i in range(4)}
        right = {partition[i] for i in range(4, 8)}
        assert len(left) == 1
        assert len(right) == 1
        assert left != right

    def test_isolated_nodes_own_communities(self):
        graph = SimilarityGraph(n_nodes=3)
        partition = louvain(graph)
        assert len(set(partition.values())) == 3

    def test_partition_covers_all_nodes(self):
        graph = two_cliques()
        partition = louvain(graph)
        assert set(partition) == set(range(8))

    def test_labels_contiguous(self):
        graph = two_cliques()
        partition = louvain(graph)
        labels = set(partition.values())
        assert labels == set(range(len(labels)))

    def test_deterministic_given_seed(self):
        graph = two_cliques(n=6)
        assert louvain(graph, seed=3) == louvain(graph, seed=3)

    def test_single_edge(self):
        graph = SimilarityGraph(n_nodes=2)
        graph.add_edge(0, 1, 1.0)
        partition = louvain(graph)
        assert partition[0] == partition[1]

    def test_improves_modularity_over_singletons(self):
        graph = two_cliques(n=5)
        singles = {i: i for i in range(10)}
        partition = louvain(graph)
        assert modularity(graph, partition) >= modularity(graph, singles)

    def test_resolution_must_be_positive(self):
        with pytest.raises(GraphError):
            louvain(SimilarityGraph(n_nodes=1), resolution=0.0)

    def test_star_with_weak_satellite(self):
        # A strong triangle plus a weakly attached node: the triangle
        # must stay together.
        graph = SimilarityGraph(n_nodes=4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(2, 3, 0.05)
        partition = louvain(graph)
        assert partition[0] == partition[1] == partition[2]


class TestModularity:
    def test_empty_graph(self):
        graph = SimilarityGraph(n_nodes=3)
        assert modularity(graph, {0: 0, 1: 1, 2: 2}) == 0.0

    def test_perfect_split_positive(self):
        graph = two_cliques(bridge_weight=0.001)
        partition = {i: 0 if i < 4 else 1 for i in range(8)}
        assert modularity(graph, partition) > 0.4

    def test_everything_one_community_zero_ish(self):
        graph = two_cliques()
        partition = {i: 0 for i in range(8)}
        # Single community: Q = sum_in/2m - 1 = 0 exactly.
        assert modularity(graph, partition) == pytest.approx(0.0, abs=1e-9)

    def test_bad_split_negative(self):
        graph = two_cliques(bridge_weight=0.001)
        # Alternating split cuts every clique edge.
        partition = {i: i % 2 for i in range(8)}
        assert modularity(graph, partition) < 0.0
