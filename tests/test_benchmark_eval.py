"""Tests for benchmarking an external detector against MAWILab labels."""

import pytest

from repro.detectors.base import Alarm, Detector
from repro.detectors.kl import KLDetector
from repro.eval.benchmark import DetectorScore, benchmark_detector, label_to_alarm


class NullDetector(Detector):
    """Never raises an alarm."""

    name = "null"

    @classmethod
    def default_params(cls):
        return {}

    def analyze(self, trace):
        return []


class OracleDetector(Detector):
    """Replays the pseudo-alarms of given label records (perfect recall)."""

    name = "oracle"

    def __init__(self, labels, **kw):
        super().__init__(**kw)
        self._labels = labels

    @classmethod
    def default_params(cls):
        return {}

    def analyze(self, trace):
        alarms = []
        for record in self._labels:
            pseudo = label_to_alarm(record)
            alarms.append(
                Alarm(
                    detector=self.name,
                    config=f"{self.name}/optimal",
                    t0=pseudo.t0,
                    t1=pseudo.t1,
                    filters=pseudo.filters,
                )
            )
        return alarms


class TestLabelToAlarm:
    def test_rules_become_filters(self, pipeline_result):
        record = pipeline_result.labels[0]
        alarm = label_to_alarm(record)
        assert alarm.detector == "mawilab"
        assert alarm.t0 == record.t0
        if record.summary.rules:
            assert len(alarm.filters) == len(record.summary.rules)

    def test_ruleless_label_still_covers_window(self, pipeline_result):
        record = pipeline_result.labels[0]
        stripped = type(record)(
            community_id=record.community_id,
            taxonomy=record.taxonomy,
            heuristic=record.heuristic,
            summary=type(record.summary)(),
            t0=record.t0,
            t1=record.t1,
            n_alarms=record.n_alarms,
            detectors=record.detectors,
        )
        alarm = label_to_alarm(stripped)
        assert len(alarm.filters) == 1
        assert alarm.filters[0].t0 == record.t0


class TestBenchmarkDetector:
    def test_null_detector_misses_everything(self, archive_day, pipeline_result):
        score = benchmark_detector(
            NullDetector(), archive_day.trace, pipeline_result.labels
        )
        anomalous = len(pipeline_result.anomalous())
        assert score.true_positive == 0
        assert score.false_negative == anomalous
        assert score.recall == 0.0
        assert score.n_alarms == 0

    def test_oracle_has_high_recall(self, archive_day, pipeline_result):
        anomalous = pipeline_result.anomalous()
        if not anomalous:
            pytest.skip("no anomalous labels on this day")
        oracle = OracleDetector(anomalous)
        score = benchmark_detector(
            oracle, archive_day.trace, pipeline_result.labels
        )
        assert score.recall >= 0.5
        assert score.alarm_precision > 0.5

    def test_real_detector_scores_in_range(self, archive_day, pipeline_result):
        score = benchmark_detector(
            KLDetector(tuning="sensitive", threshold=1.8),
            archive_day.trace,
            pipeline_result.labels,
        )
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.alarm_precision <= 1.0
        assert score.true_positive + score.false_negative == len(
            pipeline_result.anomalous()
        )

    def test_score_properties_empty(self):
        score = DetectorScore()
        assert score.recall == 0.0
        assert score.alarm_precision == 0.0
