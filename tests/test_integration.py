"""System-level integration tests across module boundaries."""

import io


from repro.labeling.mawilab import MAWILabPipeline
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.archive import SyntheticArchive
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.pcap import read_pcap, write_pcap


class TestDeterminism:
    def test_pipeline_is_deterministic(self, archive_day):
        a = MAWILabPipeline().run(archive_day.trace)
        b = MAWILabPipeline().run(archive_day.trace)
        assert len(a.alarms) == len(b.alarms)
        assert [d.accepted for d in a.decisions] == [
            d.accepted for d in b.decisions
        ]
        assert [r.taxonomy for r in a.labels] == [r.taxonomy for r in b.labels]

    def test_louvain_seed_changes_only_partition_details(self, archive_day):
        base = MAWILabPipeline(seed=0).run(archive_day.trace)
        other = MAWILabPipeline(seed=1).run(archive_day.trace)
        # Alarm counts are seed-independent (detectors are deterministic).
        assert len(base.alarms) == len(other.alarms)


class TestPcapRoundTripPipeline:
    def test_labels_survive_pcap_round_trip(self):
        spec = WorkloadSpec(
            seed=5,
            duration=20.0,
            anomalies=[AnomalySpec("syn_flood", intensity=2.0)],
        )
        trace, _ = generate_trace(spec)
        buffer = io.BytesIO()
        write_pcap(trace, buffer)
        buffer.seek(0)
        restored = read_pcap(buffer)
        assert len(restored) == len(trace)

        pipeline = MAWILabPipeline()
        original = pipeline.run(trace)
        round_tripped = pipeline.run(restored)
        # Timestamps lose sub-microsecond precision in pcap; alarm and
        # community counts must nevertheless agree.
        assert len(original.alarms) == len(round_tripped.alarms)
        assert len(original.community_set.communities) == len(
            round_tripped.community_set.communities
        )
        assert len(original.anomalous()) == len(round_tripped.anomalous())


class TestCrossGranularityConsistency:
    def test_all_granularities_label_same_alarms(self, archive_day, day_alarms):
        from repro.net.flow import Granularity

        counts = {}
        for granularity in Granularity:
            pipeline = MAWILabPipeline(granularity=granularity)
            result = pipeline.run_with_alarms(archive_day.trace, day_alarms)
            counts[granularity] = len(result.community_set.communities)
            # Conservation: every alarm lands in exactly one community.
            total_members = sum(
                c.size for c in result.community_set.communities
            )
            assert total_members == len(day_alarms)
        # Coarser granularity cannot create more communities than
        # there are alarms.
        assert all(1 <= n <= len(day_alarms) for n in counts.values())


class TestArchiveSweep:
    def test_three_consecutive_days(self):
        archive = SyntheticArchive(seed=7, trace_duration=20.0)
        pipeline = MAWILabPipeline()
        for date in ("2004-05-01", "2004-05-02", "2004-05-03"):
            day = archive.day(date)
            result = pipeline.run(day.trace)
            # Every run produces a coherent label set.
            assert len(result.labels) == len(result.community_set.communities)
            for record in result.labels:
                assert record.taxonomy in ("anomalous", "suspicious", "notice")
                assert record.t1 >= record.t0
                assert record.n_alarms >= 1

    def test_era_anomaly_mix_reaches_labels(self):
        # A Sasser-era day should eventually yield sasser-ish traffic
        # in the alarm stream (port 1023/5554/9898 filters or flows).
        archive = SyntheticArchive(seed=11, trace_duration=30.0)
        sasser_ports = {1023, 5554, 9898}
        found = False
        for date in ("2004-06-01", "2004-06-02", "2004-07-01"):
            day = archive.day(date)
            if not any(e.kind == "sasser" for e in day.events):
                continue
            result = MAWILabPipeline().run(day.trace)
            for alarm in result.alarms:
                ports = {f.dport for f in alarm.filters if f.dport}
                ports |= {k.dport for k in alarm.flow_keys}
                if ports & sasser_ports:
                    found = True
                    break
            if found:
                break
        assert found, "no detector ever reported sasser-port traffic"


class TestEmptyAndDegenerate:
    def test_trace_with_no_alarms(self):
        # A minuscule quiet trace: detectors stay silent, pipeline
        # returns an empty but well-formed result.
        from tests.conftest import make_packet
        from repro.net.trace import Trace

        trace = Trace([make_packet(time=float(i) * 0.1) for i in range(20)])
        result = MAWILabPipeline().run(trace)
        assert len(result.labels) == len(result.community_set.communities)
        assert result.anomalous() == [] or result.labels

    def test_single_detector_pipeline(self, archive_day):
        from repro.detectors.registry import default_ensemble

        pipeline = MAWILabPipeline(
            ensemble=default_ensemble(detectors=["gamma"])
        )
        result = pipeline.run(archive_day.trace)
        assert len(result.config_names) == 3
        for record in result.labels:
            assert record.detectors == ("gamma",)
