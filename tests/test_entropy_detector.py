"""Tests for the entropy detector and its ensemble integration (§6)."""

from collections import Counter

import pytest

from repro.detectors.entropy import (
    ENTROPY_TUNINGS,
    EntropyDetector,
    extended_ensemble,
    shannon_entropy,
)
from repro.labeling.mawilab import MAWILabPipeline
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace
from repro.net.trace import Trace


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(Counter()) == 0.0

    def test_single_value_zero(self):
        assert shannon_entropy(Counter({1: 100})) == 0.0

    def test_uniform_is_log2_n(self):
        counts = Counter({i: 10 for i in range(8)})
        assert shannon_entropy(counts) == pytest.approx(3.0)

    def test_bounded_by_log2_support(self):
        counts = Counter({1: 5, 2: 90, 3: 5})
        import math

        assert 0 < shannon_entropy(counts) < math.log2(3)


class TestEntropyDetector:
    def test_empty_trace(self):
        assert EntropyDetector().analyze(Trace([])) == []

    def test_detects_scan_dispersion(self):
        spec = WorkloadSpec(
            seed=10,
            duration=30.0,
            anomalies=[
                AnomalySpec("port_scan", intensity=2.0, start=10.0, duration=5.0)
            ],
        )
        trace, events = generate_trace(spec)
        alarms = EntropyDetector(tuning="sensitive", threshold=2.0).analyze(trace)
        assert alarms
        scanner = events[0].filters[0].src
        reported = set()
        for alarm in alarms:
            for f in alarm.filters:
                reported.add(f.src)
                reported.add(f.dst)
        assert scanner in reported or events[0].filters[0].dst in reported

    def test_alarm_windows_are_bins(self):
        spec = WorkloadSpec(
            seed=10,
            duration=30.0,
            anomalies=[AnomalySpec("ddos", intensity=2.0)],
        )
        trace, _ = generate_trace(spec)
        detector = EntropyDetector(threshold=2.0)
        for alarm in detector.analyze(trace):
            width = alarm.t1 - alarm.t0
            expected = trace.duration / detector.params["n_bins"]
            assert width == pytest.approx(expected, rel=0.01)

    def test_threshold_monotone(self):
        spec = WorkloadSpec(
            seed=10,
            duration=30.0,
            anomalies=[AnomalySpec("ddos", intensity=2.0)],
        )
        trace, _ = generate_trace(spec)
        low = len(EntropyDetector(threshold=2.0).analyze(trace))
        high = len(EntropyDetector(threshold=5.0).analyze(trace))
        assert high <= low


class TestExtendedEnsemble:
    def test_fifteen_configurations(self):
        ensemble = extended_ensemble()
        assert len(ensemble) == 15
        names = {d.config_name for d in ensemble}
        assert {"entropy/optimal", "entropy/sensitive", "entropy/conservative"} <= names

    def test_pipeline_integration(self, archive_day):
        pipeline = MAWILabPipeline(ensemble=extended_ensemble())
        result = pipeline.run(archive_day.trace)
        assert len(result.config_names) == 15
        assert result.labels
        # Entropy votes flow through the confidence machinery.
        families = {
            d for record in result.labels for d in record.detectors
        }
        assert families <= {"pca", "gamma", "hough", "kl", "entropy"}

    def test_tunings_table_complete(self):
        assert set(ENTROPY_TUNINGS) == {"optimal", "sensitive", "conservative"}
