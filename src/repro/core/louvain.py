"""Louvain community detection (Blondel et al., 2008), from scratch.

The similarity estimator needs a community-mining algorithm that works
well on sparse graphs with isolated nodes and is able to find *small*
groups of a few alarms (paper Section 2.1.3).  Louvain fits: it greedily
maximizes modularity by local node moves, then aggregates communities
into super-nodes and repeats.

The implementation is deterministic for a given ``seed`` (node visit
order is shuffled once per pass with a seeded RNG, as in the reference
implementation).
"""

from __future__ import annotations

import random

from repro.core.graph import SimilarityGraph
from repro.errors import GraphError


def modularity(
    graph: SimilarityGraph,
    partition: dict[int, int],
    resolution: float = 1.0,
) -> float:
    """Newman modularity Q of a partition of ``graph``.

    ``partition`` maps node -> community label.  Isolated nodes
    contribute nothing.  For an empty graph Q is defined as 0.
    """
    two_m = sum(graph.degree(node) for node in range(graph.n_nodes))
    if two_m == 0:
        return 0.0
    internal: dict[int, float] = {}
    degree_sum: dict[int, float] = {}
    for node in range(graph.n_nodes):
        community = partition[node]
        degree_sum[community] = degree_sum.get(community, 0.0) + graph.degree(node)
        for neighbor, weight in graph.neighbors(node).items():
            if partition[neighbor] == community:
                internal[community] = internal.get(community, 0.0) + weight
    q = 0.0
    for community, k_sum in degree_sum.items():
        inner = internal.get(community, 0.0)  # counted twice (both directions)
        q += inner / two_m - resolution * (k_sum / two_m) ** 2
    return q


class _WorkGraph:
    """Mutable weighted graph used during aggregation passes."""

    def __init__(self, adjacency: dict[int, dict[int, float]], self_loops: dict[int, float]):
        self.adjacency = adjacency
        self.self_loops = self_loops  # node -> self-loop weight (counted once)
        self.nodes = list(adjacency)

    @classmethod
    def from_similarity_graph(cls, graph: SimilarityGraph) -> "_WorkGraph":
        adjacency = {
            node: dict(graph.neighbors(node)) for node in range(graph.n_nodes)
        }
        return cls(adjacency, {node: 0.0 for node in range(graph.n_nodes)})

    def degree(self, node: int) -> float:
        return sum(self.adjacency[node].values()) + 2.0 * self.self_loops[node]

    def total_weight(self) -> float:
        """Sum of edge weights, each edge counted once."""
        edge_sum = sum(
            weight
            for node, nbrs in self.adjacency.items()
            for neighbor, weight in nbrs.items()
        ) / 2.0
        return edge_sum + sum(self.self_loops.values())


def _one_pass(
    work: _WorkGraph,
    resolution: float,
    rng: random.Random,
    initial: dict[int, int] | None = None,
) -> tuple[dict[int, int], bool]:
    """One local-move phase; returns (partition, improved).

    ``initial`` seeds the starting communities (warm start); by default
    every node starts in its own singleton.
    """
    m = work.total_weight()
    if m <= 0:
        return dict(initial) if initial else {
            node: node for node in work.nodes
        }, False
    if initial is None:
        community: dict[int, int] = {node: node for node in work.nodes}
    else:
        community = dict(initial)
    community_degree: dict[int, float] = {}
    for node in work.nodes:
        label = community[node]
        community_degree[label] = (
            community_degree.get(label, 0.0) + work.degree(node)
        )
    improved = False
    order = list(work.nodes)
    rng.shuffle(order)
    moved = True
    while moved:
        moved = False
        for node in order:
            node_degree = work.degree(node)
            current = community[node]
            # Weights from node to each neighbouring community.
            links: dict[int, float] = {}
            for neighbor, weight in work.adjacency[node].items():
                links[community[neighbor]] = (
                    links.get(community[neighbor], 0.0) + weight
                )
            # Detach node.
            community_degree[current] -= node_degree
            best_community = current
            best_gain = links.get(current, 0.0) - (
                resolution * community_degree[current] * node_degree / (2.0 * m)
            )
            for candidate, link_weight in links.items():
                if candidate == current:
                    continue
                gain = link_weight - (
                    resolution
                    * community_degree[candidate]
                    * node_degree
                    / (2.0 * m)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + node_degree
            )
            if best_community != current:
                community[node] = best_community
                moved = True
                improved = True
    return community, improved


def _aggregate(work: _WorkGraph, partition: dict[int, int]) -> tuple[_WorkGraph, dict[int, int]]:
    """Build the aggregated graph; returns it plus node -> super-node map."""
    labels = sorted(set(partition.values()))
    relabel = {label: i for i, label in enumerate(labels)}
    mapping = {node: relabel[partition[node]] for node in work.nodes}
    adjacency: dict[int, dict[int, float]] = {i: {} for i in range(len(labels))}
    self_loops: dict[int, float] = {i: 0.0 for i in range(len(labels))}
    for node in work.nodes:
        cu = mapping[node]
        self_loops[cu] += work.self_loops[node]
        for neighbor, weight in work.adjacency[node].items():
            cv = mapping[neighbor]
            if cu == cv:
                # Each internal edge visited from both ends: half each.
                self_loops[cu] += weight / 2.0
            else:
                adjacency[cu][cv] = adjacency[cu].get(cv, 0.0) + weight
    # Internal self-loop contributions were double-counted per direction;
    # the loop above already adds weight/2 from each endpoint visit.
    return _WorkGraph(adjacency, self_loops), mapping


def _refine(
    work: _WorkGraph,
    partition: dict[int, int],
    resolution: float,
    rng: random.Random,
) -> dict[int, int]:
    """Split each community into the sub-communities of its subgraph.

    Leiden-style refinement for warm starts: a seeded community can
    accumulate stale merges that single-node moves cannot undo (moving
    one node out of a dense community is never locally profitable even
    when splitting it in half would be).  Re-clustering each
    community's *induced subgraph* from singletons finds those splits;
    the aggregation passes that follow can re-merge any split that was
    actually worth keeping, so refinement only adds expressiveness.

    Labels follow the pass-phase convention — each community is
    labelled by one of its own member nodes (its minimum) — which is
    what the aggregation bookkeeping in :func:`louvain` relies on.
    """
    groups: dict[int, list[int]] = {}
    for node, label in partition.items():
        groups.setdefault(label, []).append(node)
    refined: dict[int, int] = {}
    for label in sorted(groups):
        nodes = groups[label]
        if len(nodes) == 1:
            refined[nodes[0]] = nodes[0]
            continue
        node_set = set(nodes)
        sub_adjacency = {
            node: {
                neighbor: weight
                for neighbor, weight in work.adjacency[node].items()
                if neighbor in node_set
            }
            for node in nodes
        }
        sub = _WorkGraph(
            sub_adjacency, {node: work.self_loops[node] for node in nodes}
        )
        sub_partition, _ = _one_pass(sub, resolution, rng)
        subgroups: dict[int, list[int]] = {}
        for node in nodes:
            subgroups.setdefault(sub_partition[node], []).append(node)
        for sub_nodes in subgroups.values():
            anchor = min(sub_nodes)
            for node in sub_nodes:
                refined[node] = anchor
    return refined


def _normalize_seed(
    seed_partition: dict[int, int], n_nodes: int
) -> dict[int, int]:
    """Seed labels in anchor-node form, fresh singletons for new nodes.

    Each seeded community is relabelled by its minimum member node (the
    pass-phase convention :func:`louvain`'s aggregation bookkeeping
    relies on).  Nodes absent from ``seed_partition`` (alarms that
    joined after the partition was computed) start as their own
    singletons, so a warm start never glues unseen nodes together.
    """
    groups: dict[int, list[int]] = {}
    for node in range(n_nodes):
        if node in seed_partition:
            groups.setdefault(seed_partition[node], []).append(node)
    initial: dict[int, int] = {
        node: node for node in range(n_nodes) if node not in seed_partition
    }
    for nodes in groups.values():
        anchor = min(nodes)
        for node in nodes:
            initial[node] = anchor
    return initial


def louvain(
    graph: SimilarityGraph,
    resolution: float = 1.0,
    seed: int = 0,
    max_passes: int = 20,
    seed_partition: dict[int, int] | None = None,
) -> dict[int, int]:
    """Louvain partition of a similarity graph.

    Parameters
    ----------
    graph:
        The similarity graph (isolated nodes allowed).
    resolution:
        Modularity resolution; 1.0 is standard modularity.
    seed:
        Seed for the node-visit shuffles; fixes the output.
    max_passes:
        Safety bound on aggregation rounds.
    seed_partition:
        Optional warm start: node -> community label to *begin* the
        first local-move phase from, instead of singletons.  Nodes
        missing from the mapping start as fresh singletons.  The
        streaming engine passes the previous window's partition here so
        each window refines it rather than re-clustering from scratch;
        local moves can still split or merge seeded communities.
        ``None`` (the default) is the classic cold start and is
        byte-for-byte the historical behaviour.

    Returns
    -------
    dict
        node -> community label (labels are arbitrary but contiguous).
    """
    if resolution <= 0:
        raise GraphError("resolution must be positive")
    rng = random.Random(seed)
    work = _WorkGraph.from_similarity_graph(graph)
    # node (original) -> current super-node.
    assignment = {node: node for node in range(graph.n_nodes)}
    initial = (
        _normalize_seed(seed_partition, graph.n_nodes)
        if seed_partition is not None
        else None
    )
    for _ in range(max_passes):
        partition, improved = _one_pass(work, resolution, rng, initial=initial)
        # A warm start must be folded into the assignment even when the
        # local moves found nothing to change — the seed communities
        # themselves are the result; aggregate once and keep going.
        seeded = initial is not None
        initial = None
        if not improved and not seeded:
            break
        if seeded:
            partition = _refine(work, partition, resolution, rng)
        work, mapping = _aggregate(work, partition)
        assignment = {
            node: mapping[partition[assignment[node]]] for node in assignment
        }
        if not improved and not seeded:
            break
    # Relabel contiguously.
    labels = sorted(set(assignment.values()))
    relabel = {label: i for i, label in enumerate(labels)}
    return {node: relabel[label] for node, label in assignment.items()}
