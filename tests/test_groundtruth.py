"""Tests for ground-truth evaluation (repro.eval.groundtruth)."""

import pytest

from repro.detectors.gamma import GammaDetector
from repro.eval.groundtruth import (
    GroundTruthScore,
    score_detector,
    score_pipeline_result,
    score_traffic_sets,
)
from repro.labeling.mawilab import MAWILabPipeline
from repro.mawi.anomalies import AnomalySpec
from repro.mawi.generator import WorkloadSpec, generate_trace


@pytest.fixture(scope="module")
def flood_run():
    spec = WorkloadSpec(
        seed=88,
        duration=30.0,
        anomalies=[
            AnomalySpec("ping_flood", intensity=2.0),
            AnomalySpec("syn_flood", intensity=2.0),
        ],
    )
    trace, events = generate_trace(spec)
    result = MAWILabPipeline().run(trace)
    return trace, events, result


class TestScoreProperties:
    def test_empty(self):
        score = GroundTruthScore()
        assert score.recall == 0.0
        assert score.precision == 0.0
        assert score.recall_by_kind() == {}

    def test_score_traffic_sets_empty_objects(self, flood_run):
        trace, events, _ = flood_run
        score = score_traffic_sets(trace, events, [], [])
        assert score.recall == 0.0
        assert all(not m.detected for m in score.matches)
        assert len(score.matches) == len(events)


class TestPipelineScoring:
    def test_accepted_communities_cover_floods(self, flood_run):
        trace, events, result = flood_run
        score = score_pipeline_result(result, events)
        assert 0.0 <= score.recall <= 1.0
        # All communities (accepted or not) must cover at least as
        # much as the accepted subset.
        all_score = score_pipeline_result(result, events, accepted_only=False)
        assert all_score.recall >= score.recall
        # The intense floods should be somewhere in the communities.
        assert all_score.recall >= 0.5

    def test_matches_carry_community_names(self, flood_run):
        trace, events, result = flood_run
        score = score_pipeline_result(result, events, accepted_only=False)
        for match in score.matches:
            if match.detected:
                assert all(
                    name.startswith("community#") for name in match.matched_by
                )
                assert match.best_overlap >= 0.2

    def test_recall_by_kind_keys(self, flood_run):
        trace, events, result = flood_run
        score = score_pipeline_result(result, events, accepted_only=False)
        assert set(score.recall_by_kind()) == {e.kind for e in events}


class TestDetectorScoring:
    def test_gamma_scores_floods(self, flood_run):
        trace, events, _ = flood_run
        score = score_detector(
            GammaDetector(tuning="sensitive", threshold=1.8), trace, events
        )
        assert score.n_objects > 0
        assert 0.0 <= score.precision <= 1.0
        assert score.recall >= 0.5  # intense floods are gamma's home turf

    def test_overlap_threshold_monotone(self, flood_run):
        trace, events, _ = flood_run
        detector = GammaDetector(tuning="sensitive", threshold=1.8)
        loose = score_detector(detector, trace, events, min_overlap=0.05)
        strict = score_detector(detector, trace, events, min_overlap=0.9)
        assert strict.recall <= loose.recall
