"""The end-to-end MAWILab pipeline and the label database format.

:class:`MAWILabPipeline` chains the paper's four steps on one trace:

1. run every detector configuration (Step 1);
2. group similar alarms into communities with the similarity
   estimator (Step 2);
3. classify communities with a combination strategy — SCANN by
   default (Step 3);
4. summarize each community with association rules and assign the
   MAWILab taxonomy (Step 4).

The output is a list of :class:`LabelRecord` — one per community, with
its taxonomy label, concise 4-tuple rules, heuristic category (for
evaluation) and provenance — exactly the content of the public
MAWILab database, exportable as CSV or an admd-flavoured XML.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional, Sequence, Union
from xml.sax.saxutils import escape, quoteattr

from repro.core.alarm_table import AlarmTable
from repro.core.community import CommunitySet
from repro.core.estimator import SimilarityEstimator
from repro.core.scann import SCANNStrategy
from repro.core.strategies import CombinationStrategy, Decision
from repro.detectors.base import Alarm, Detector
from repro.detectors.registry import default_ensemble
from repro.engine import EngineSpec, resolve_engine, resolve_legacy_backend
from repro.labeling.heuristics import HeuristicLabel, label_community
from repro.labeling.taxonomy import assign_taxonomy, assign_taxonomy_batch
from repro.net.flow import Granularity
from repro.net.trace import Trace
from repro.rules.itemsets import transactions_from_flows, transactions_from_packets
from repro.rules.summarize import CommunitySummary, summarize_transactions


@dataclass
class LabelRecord:
    """One labeled community in the MAWILab database."""

    community_id: int
    taxonomy: str  # anomalous / suspicious / notice
    heuristic: HeuristicLabel
    summary: CommunitySummary
    t0: float
    t1: float
    n_alarms: int
    detectors: tuple[str, ...]
    relative_distance: Optional[float] = None
    mu: float = 0.0
    #: Traffic-classifier / manual annotation tags attached to the
    #: community (paper Section 6); empty when no annotations were fed.
    annotations: tuple[str, ...] = ()

    def describe(self) -> str:
        rules = "; ".join(rule.describe() for rule in self.summary.rules[:3])
        return (
            f"[{self.taxonomy:10s}] {self.heuristic.category}:{self.heuristic.detail:8s} "
            f"{self.t0:7.1f}-{self.t1:7.1f}s alarms={self.n_alarms:3d} "
            f"detectors={','.join(self.detectors)} rules: {rules}"
        )


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    ``alarms`` is the Step 1 population — an
    :class:`~repro.core.alarm_table.AlarmTable` on the columnar path,
    a plain list on the reference path; both support ``len`` /
    iteration / indexing yielding :class:`Alarm` objects.
    """

    trace: Trace
    alarms: Union[list[Alarm], AlarmTable]
    community_set: CommunitySet
    decisions: list[Decision]
    labels: list[LabelRecord]
    config_names: list[str]

    def anomalous(self) -> list[LabelRecord]:
        return [r for r in self.labels if r.taxonomy == "anomalous"]

    def suspicious(self) -> list[LabelRecord]:
        return [r for r in self.labels if r.taxonomy == "suspicious"]

    def notice(self) -> list[LabelRecord]:
        return [r for r in self.labels if r.taxonomy == "notice"]

    def label_store(self):
        """The labels as a columnar :class:`~repro.labeling.store.LabelStore`."""
        from repro.labeling.store import LabelStore

        return LabelStore.from_records(self.labels)


class MAWILabPipeline:
    """The complete 4-step labeling method.

    Parameters
    ----------
    ensemble:
        Detector configurations; defaults to the paper's 12
        (4 detectors x 3 tunings).
    granularity:
        Traffic granularity of the similarity estimator; the paper's
        final system uses unidirectional flows.
    strategy:
        Combination strategy; defaults to SCANN.
    measure:
        Similarity measure; defaults to the Simpson index.
    rule_support_pct:
        Apriori support for community summarization (the paper uses
        20 %).
    seed:
        Louvain seed.
    engine:
        Execution engine (any spec
        :func:`repro.engine.resolve_engine` accepts) applied to every
        stage that has paired kernels: detector feature binning,
        traffic extraction, similarity-graph construction and the
        community heuristics.  ``"python"`` selects the pure-Python
        reference implementations end-to-end; all engines produce
        byte-identical label output.  A caller-supplied ``ensemble``
        keeps its own per-detector engines.
    """

    def __init__(
        self,
        ensemble: Optional[Sequence[Detector]] = None,
        granularity: Granularity = Granularity.UNIFLOW,
        strategy: Optional[CombinationStrategy] = None,
        measure: str = "simpson",
        edge_threshold: float = 0.1,
        rule_support_pct: float = 20.0,
        seed: int = 0,
        engine: EngineSpec = "auto",
        backend: EngineSpec = None,
    ) -> None:
        engine = resolve_legacy_backend(engine, backend, what="pipeline")
        self.engine = resolve_engine(engine, what="pipeline")
        self.ensemble = (
            list(ensemble)
            if ensemble is not None
            else default_ensemble(engine=self.engine)
        )
        self.strategy = strategy or SCANNStrategy()
        self.estimator = SimilarityEstimator(
            granularity=granularity,
            measure=measure,
            edge_threshold=edge_threshold,
            seed=seed,
            engine=self.engine,
        )
        self.rule_support_pct = rule_support_pct

    @property
    def config_names(self) -> list[str]:
        return [d.config_name for d in self.ensemble]

    def ensemble_fingerprint(self) -> str:
        """Stable digest of the detector ensemble (names + parameters).

        Two pipelines with the same fingerprint emit identical Step 1
        alarms for a given trace, which is what lets the batch runner
        cache alarm sets on disk and reuse them across combiner or
        granularity changes.
        """
        import hashlib

        parts = [
            (d.name, d.tuning, tuple(sorted(d.params.items())))
            for d in self.ensemble
        ]
        return hashlib.sha256(repr(sorted(parts)).encode()).hexdigest()[:16]

    def detect(self, trace: Trace, planes=None) -> list[Alarm]:
        """Step 1 only: run every detector configuration on the trace.

        ``planes`` optionally supplies a shared
        :class:`~repro.detectors.planes.PlaneCache`; by default every
        configuration resolves the trace-attached cache, so sibling
        configurations compute each feature plane once either way.
        """
        alarms: list[Alarm] = []
        for detector in self.ensemble:
            alarms.extend(
                detector.analyze(trace)
                if planes is None
                else detector.analyze(trace, planes=planes)
            )
        return alarms

    def detect_table(self, trace: Trace, planes=None) -> AlarmTable:
        """Step 1, batch-emitting: one alarm table for the ensemble.

        Row order equals :meth:`detect`'s list order (per-detector
        tables concatenated in ensemble order), so both spellings feed
        Steps 2-4 identically.
        """
        return AlarmTable.concatenate(
            detector.analyze_table(trace, planes=planes)
            for detector in self.ensemble
        )

    def run(self, trace: Trace, annotations: Sequence = ()) -> PipelineResult:
        """Label one trace.

        ``annotations`` are optional
        :class:`~repro.core.annotations.Annotation` records (e.g. from
        a traffic classifier); they join the similarity graph but do
        not vote in the combiner, and accepted communities report
        their tags (paper Section 6).
        """
        alarms: Union[list[Alarm], AlarmTable]
        if self.engine.vectorized:
            alarms = self.detect_table(trace)
        else:
            alarms = self.detect(trace)
        return self.run_with_alarms(trace, alarms, annotations=annotations)

    def run_with_alarms(
        self,
        trace: Trace,
        alarms: Union[Sequence[Alarm], AlarmTable],
        annotations: Sequence = (),
        timings: Optional[dict] = None,
    ) -> PipelineResult:
        """Label one trace from precomputed alarms (Steps 2-4 only).

        ``alarms`` may be a list of :class:`Alarm` objects or an
        :class:`~repro.core.alarm_table.AlarmTable`; a vectorized
        engine normalizes to the table (keeping Steps 2-4 columnar),
        the reference engine to the list — both label byte-identically.
        ``timings``, when given, accumulates per-stage wall seconds
        (``extract`` / ``graph`` / ``combine`` / ``label``) — the
        ``repro bench`` instrumentation.
        """
        import time as _time

        from repro.core.annotations import (
            ANNOTATION_DETECTOR,
            merge_annotations,
            strip_annotation_configs,
        )

        if any(
            name.split("/", 1)[0] == ANNOTATION_DETECTOR
            for name in self.config_names
        ):
            raise ValueError(
                f"{ANNOTATION_DETECTOR!r} is a reserved detector family"
            )
        if self.engine.vectorized:
            if not isinstance(alarms, AlarmTable):
                alarms = AlarmTable.from_alarms(list(alarms), engine=self.engine)
            if annotations:
                alarms = AlarmTable.concatenate(
                    [
                        alarms,
                        AlarmTable.from_alarms(
                            merge_annotations([], list(annotations)),
                            engine=self.engine,
                        ),
                    ]
                )
        else:
            if isinstance(alarms, AlarmTable):
                alarms = alarms.to_alarms()
            alarms = merge_annotations(list(alarms), list(annotations))
        # Step 2: similarity estimator (annotations participate).
        community_set = self.estimator.build(trace, alarms, timings=timings)
        # Step 3: combiner (annotations excluded from the vote table).
        started = _time.perf_counter()
        decisions = self.strategy.classify(
            community_set, strip_annotation_configs(self.config_names)
        )
        if timings is not None:
            timings["combine"] = (
                timings.get("combine", 0.0) + _time.perf_counter() - started
            )
        # Step 4: rules + taxonomy.  Taxonomies are assigned columnarly
        # — one ``"label_assign"`` kernel call over the decision
        # columns — before the per-community record assembly.
        started = _time.perf_counter()
        taxonomies = assign_taxonomy_batch(decisions, engine=self.engine)
        labels = [
            self._label_one(community_set, community, decision, taxonomy)
            for community, decision, taxonomy in zip(
                community_set.communities, decisions, taxonomies
            )
        ]
        if timings is not None:
            timings["label"] = (
                timings.get("label", 0.0) + _time.perf_counter() - started
            )
        return PipelineResult(
            trace=trace,
            alarms=alarms,
            community_set=community_set,
            decisions=decisions,
            labels=labels,
            config_names=self.config_names,
        )

    def _label_one(
        self,
        community_set: CommunitySet,
        community,
        decision: Decision,
        taxonomy: Optional[str] = None,
    ) -> LabelRecord:
        from repro.core.annotations import ANNOTATION_DETECTOR, community_tags

        extractor = community_set.extractor
        heuristic = label_community(community, extractor)
        summary = self._summarize(community_set, community)
        detectors = tuple(
            sorted(community.detectors() - {ANNOTATION_DETECTOR})
        )
        return LabelRecord(
            community_id=community.id,
            taxonomy=taxonomy if taxonomy is not None else assign_taxonomy(decision),
            heuristic=heuristic,
            summary=summary,
            t0=community.t0,
            t1=community.t1,
            n_alarms=community.size,
            detectors=detectors,
            relative_distance=decision.relative_distance,
            mu=decision.mu,
            annotations=tuple(community_tags(community)),
        )

    def _summarize(self, community_set: CommunitySet, community) -> CommunitySummary:
        """Association rules over the community's traffic."""
        granularity = community_set.granularity
        if granularity is Granularity.PACKET:
            extractor = community_set.extractor
            packets = [extractor.trace[i] for i in sorted(community.traffic)]
            transactions = transactions_from_packets(packets)
        else:
            transactions = transactions_from_flows(sorted(community.traffic))
        return summarize_transactions(
            transactions, min_support_pct=self.rule_support_pct
        )


def labels_to_csv(labels: Sequence[LabelRecord]) -> str:
    """Render label records as CSV (one row per rule, as MAWILab does)."""
    out = io.StringIO()
    out.write(
        "community,taxonomy,heuristic_category,heuristic_detail,"
        "t0,t1,n_alarms,detectors,src,sport,dst,dport,rule_support\n"
    )
    from repro.net.addresses import ip_to_str

    for record in labels:
        base = (
            f"{record.community_id},{record.taxonomy},"
            f"{record.heuristic.category},{record.heuristic.detail},"
            f"{record.t0:.3f},{record.t1:.3f},{record.n_alarms},"
            f"{'|'.join(record.detectors)}"
        )
        rules = record.summary.rules or [None]
        for rule in rules:
            if rule is None:
                out.write(f"{base},,,,,\n")
                continue
            src = ip_to_str(rule.src) if rule.src is not None else ""
            dst = ip_to_str(rule.dst) if rule.dst is not None else ""
            sport = rule.sport if rule.sport is not None else ""
            dport = rule.dport if rule.dport is not None else ""
            out.write(
                f"{base},{src},{sport},{dst},{dport},{rule.support:.3f}\n"
            )
    return out.getvalue()


def labels_to_xml(labels: Sequence[LabelRecord], trace_name: str = "trace") -> str:
    """Render label records in an admd-flavoured XML document.

    The real MAWILab database uses the ADMD schema; this writer keeps
    the same structure (anomaly elements carrying filter descriptions)
    without claiming byte compatibility.

    Every free-form string — filter/rule renderings (the canonical
    4-tuple form is ``<ip, port, ip, port>``, all angle brackets),
    heuristic details, annotation tags — passes through
    ``xml.sax.saxutils`` escaping, so ``&``, ``<`` and ``>`` in any of
    them cannot produce invalid XML; a round-trip test parses the
    output back and recovers the strings verbatim.
    """
    from repro.net.addresses import ip_to_str

    out = io.StringIO()
    out.write('<?xml version="1.0" encoding="utf-8"?>\n')
    out.write(f"<admd trace={quoteattr(trace_name)}>\n")
    for record in labels:
        out.write(
            f"  <anomaly community={quoteattr(str(record.community_id))} "
            f"type={quoteattr(record.taxonomy)} "
            f"heuristic={quoteattr(str(record.heuristic))} "
            f'from="{record.t0:.3f}" to="{record.t1:.3f}">\n'
        )
        for rule in record.summary.rules:
            parts = []
            if rule.src is not None:
                parts.append(f"src_ip={ip_to_str(rule.src)}")
            if rule.sport is not None:
                parts.append(f"src_port={rule.sport}")
            if rule.dst is not None:
                parts.append(f"dst_ip={ip_to_str(rule.dst)}")
            if rule.dport is not None:
                parts.append(f"dst_port={rule.dport}")
            out.write(
                f'    <filter support="{rule.support:.3f}" '
                f"rule={quoteattr(rule.describe())}>"
                f"{escape(' '.join(parts))}</filter>\n"
            )
        for tag in record.annotations:
            out.write(
                f"    <annotation>{escape(str(tag))}</annotation>\n"
            )
        out.write("  </anomaly>\n")
    out.write("</admd>\n")
    return out.getvalue()
