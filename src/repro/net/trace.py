"""Trace container.

A :class:`Trace` is an ordered, timestamp-sorted collection of packets
with metadata describing its origin — in the MAWI archive, the capture
date and samplepoint.  Traces are immutable after construction, which
lets the pipeline cache flow aggregations per (trace, granularity).

Since the columnar engine, a trace is *backed* by a
:class:`~repro.net.table.PacketTable` (struct-of-arrays): the hot paths
— filter matching, traffic extraction, detector feature binning — read
the NumPy columns directly via :attr:`Trace.table`, while
:class:`~repro.net.packet.Packet` objects are materialized lazily and
cached only where object-level code still needs them (rule mining,
reference kernels, tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.net.flow import Flow, FlowKey, Granularity
from repro.net.packet import Packet
from repro.net.table import PacketTable, aggregate_flows_table, flow_codes


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance of a trace.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"2004-05-03"``.
    samplepoint:
        MAWI samplepoint ("B" or "F" in the paper).
    link_mbps:
        Nominal capacity of the measured link; the archive timeline
        upgrades it (18 -> 100 -> 150 Mbps).
    date:
        ISO date string, used by the archive for ordering.
    """

    name: str = "trace"
    samplepoint: str = "F"
    link_mbps: float = 100.0
    date: str = ""


class Trace:
    """An immutable, time-sorted packet trace over a columnar table.

    Parameters
    ----------
    packets:
        Packets in any order; they are sorted by timestamp on
        construction (stably, so simultaneous packets keep their
        generation order).
    metadata:
        Optional :class:`TraceMetadata`.
    """

    def __init__(
        self,
        packets: Sequence[Packet],
        metadata: Optional[TraceMetadata] = None,
    ) -> None:
        table = PacketTable.from_packets(list(packets)).sorted_by_time()
        self._init_from_table(table, metadata)

    @classmethod
    def from_table(
        cls,
        table: PacketTable,
        metadata: Optional[TraceMetadata] = None,
    ) -> "Trace":
        """Build a trace directly from a columnar table (no objects)."""
        trace = cls.__new__(cls)
        trace._init_from_table(table.sorted_by_time(), metadata)
        return trace

    def _init_from_table(
        self, table: PacketTable, metadata: Optional[TraceMetadata]
    ) -> None:
        self._table = table
        self.metadata = metadata or TraceMetadata()
        self._times = table.time
        self._packet_cache: list[Optional[Packet]] = [None] * len(table)
        self._packets_tuple: Optional[tuple[Packet, ...]] = None
        self._flow_cache: dict[Granularity, dict[FlowKey, Flow]] = {}
        self._code_cache: dict[Granularity, tuple[np.ndarray, list[FlowKey]]] = {}

    # -- columnar access ----------------------------------------------

    @property
    def table(self) -> PacketTable:
        """The struct-of-arrays backing store (time-sorted)."""
        return self._table

    def flow_code_table(
        self, granularity: Granularity
    ) -> tuple[np.ndarray, list[FlowKey]]:
        """Per-packet flow codes + code->key table (cached per trace)."""
        cached = self._code_cache.get(granularity)
        if cached is None:
            cached = flow_codes(self._table, granularity)
            self._code_cache[granularity] = cached
        return cached

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.packets[index]
        packet = self._packet_cache[index]
        if packet is None:
            packet = self._table.packet(index)
            self._packet_cache[index] = packet
        return packet

    @property
    def packets(self) -> tuple[Packet, ...]:
        """The packets as objects, sorted by time (materialized lazily)."""
        if self._packets_tuple is None:
            cache = self._packet_cache
            table = self._table
            for i, packet in enumerate(cache):
                if packet is None:
                    cache[i] = table.packet(i)
            self._packets_tuple = tuple(cache)
        return self._packets_tuple

    @property
    def duration(self) -> float:
        """Trace duration in seconds (0 for empty traces)."""
        if len(self._times) == 0:
            return 0.0
        return float(self._times[-1] - self._times[0])

    @property
    def start_time(self) -> float:
        if len(self._times) == 0:
            raise TraceError("empty trace has no start time")
        return float(self._times[0])

    @property
    def end_time(self) -> float:
        if len(self._times) == 0:
            raise TraceError("empty trace has no end time")
        return float(self._times[-1])

    @property
    def total_bytes(self) -> int:
        return int(self._table.size.sum())

    # -- slicing and filtering ----------------------------------------

    def time_slice(self, t0: float, t1: float) -> range:
        """Indices of packets with ``t0 <= time < t1``.

        Returned as a ``range`` so callers can use it either to index
        packets or as a set of packet ids without materializing a list.
        """
        if t1 < t0:
            raise TraceError(f"empty interval [{t0}, {t1})")
        lo, hi = np.searchsorted(self._times, [t0, t1], side="left")
        return range(int(lo), int(hi))

    def select(self, predicate: Callable[[Packet], bool]) -> list[int]:
        """Indices of packets satisfying ``predicate`` (object path)."""
        return [i for i, p in enumerate(self.packets) if predicate(p)]

    # -- flow aggregation ---------------------------------------------

    def flows(self, granularity: Granularity = Granularity.UNIFLOW) -> dict[FlowKey, Flow]:
        """Flow table at ``granularity`` (cached per trace).

        Aggregation runs on the columnar table; it produces the exact
        mapping of :func:`repro.net.flow.aggregate_flows`.
        """
        cached = self._flow_cache.get(granularity)
        if cached is None:
            codes, keys = self.flow_code_table(granularity)
            cached = aggregate_flows_table(
                self._table, granularity, codes=codes, keys=keys
            )
            self._flow_cache[granularity] = cached
        return cached

    def flow_of(self, index: int, granularity: Granularity) -> FlowKey:
        """Flow key of packet ``index`` at ``granularity``."""
        from repro.net.flow import key_for

        return key_for(self[index], granularity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.metadata.name!r}, packets={len(self)}, "
            f"duration={self.duration:.1f}s)"
        )


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Merge several traces into one time-sorted trace.

    Metadata other than the name is taken from the first trace; callers
    merging across link upgrades should set metadata themselves.
    Tables are concatenated column-wise — no packet objects are built.
    """
    if not traces:
        raise TraceError("cannot merge zero traces")
    table = PacketTable.concatenate([trace.table for trace in traces])
    base = traces[0].metadata
    metadata = TraceMetadata(
        name=name,
        samplepoint=base.samplepoint,
        link_mbps=base.link_mbps,
        date=base.date,
    )
    return Trace.from_table(table, metadata)
