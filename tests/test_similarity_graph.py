"""Unit tests for similarity measures and graph construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import SimilarityGraph, build_similarity_graph
from repro.core.similarity import constant_measure, jaccard, simpson
from repro.errors import EngineError, GraphError


class TestMeasures:
    def test_simpson_inclusion_is_one(self):
        assert simpson(3, 3, 10) == 1.0

    def test_simpson_disjoint_zero(self):
        assert simpson(0, 5, 5) == 0.0

    def test_simpson_partial(self):
        assert simpson(1, 2, 4) == 0.5

    def test_jaccard_identical(self):
        assert jaccard(5, 5, 5) == 1.0

    def test_jaccard_partial(self):
        assert jaccard(1, 2, 2) == pytest.approx(1 / 3)

    def test_constant(self):
        assert constant_measure(1, 5, 9) == 1.0
        assert constant_measure(0, 5, 9) == 0.0

    def test_simpson_dominates_jaccard(self):
        for intersection, a, b in [(1, 2, 3), (2, 4, 5), (3, 3, 9)]:
            assert simpson(intersection, a, b) >= jaccard(intersection, a, b)

    def test_empty_sets(self):
        assert simpson(0, 0, 0) == 0.0
        assert jaccard(0, 0, 0) == 0.0
        assert constant_measure(1, 0, 3) == 0.0


class TestSimilarityGraph:
    def test_all_nodes_present(self):
        graph = SimilarityGraph(n_nodes=3)
        assert graph.isolated_nodes() == [0, 1, 2]

    def test_add_edge_symmetric(self):
        graph = SimilarityGraph(n_nodes=2)
        graph.add_edge(0, 1, 0.5)
        assert graph.neighbors(0) == {1: 0.5}
        assert graph.neighbors(1) == {0: 0.5}
        assert graph.n_edges == 1

    def test_self_loop_rejected(self):
        graph = SimilarityGraph(n_nodes=2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 0, 1.0)

    def test_out_of_range_rejected(self):
        graph = SimilarityGraph(n_nodes=2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 5, 1.0)

    def test_zero_weight_ignored(self):
        graph = SimilarityGraph(n_nodes=2)
        graph.add_edge(0, 1, 0.0)
        assert graph.n_edges == 0

    def test_degree(self):
        graph = SimilarityGraph(n_nodes=3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(0, 2, 0.25)
        assert graph.degree(0) == pytest.approx(0.75)

    def test_to_networkx(self):
        graph = SimilarityGraph(n_nodes=3)
        graph.add_edge(0, 1, 0.7)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph[0][1]["weight"] == 0.7


class TestBuildGraph:
    def test_intersecting_sets_connected(self):
        sets = [frozenset({1, 2}), frozenset({2, 3}), frozenset({9})]
        graph = build_similarity_graph(sets)
        assert 1 in graph.neighbors(0)
        assert graph.isolated_nodes() == [2]

    def test_simpson_weights(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3, 4})]
        graph = build_similarity_graph(sets, measure="simpson")
        assert graph.neighbors(0)[1] == 1.0  # inclusion

    def test_jaccard_weights(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3, 4})]
        graph = build_similarity_graph(sets, measure="jaccard")
        assert graph.neighbors(0)[1] == pytest.approx(0.5)

    def test_edge_threshold(self):
        sets = [frozenset({1, 2, 3, 4}), frozenset({4, 5, 6, 7})]
        graph = build_similarity_graph(sets, edge_threshold=0.5)
        assert graph.n_edges == 0  # simpson = 0.25 <= 0.5

    def test_unknown_measure_rejected(self):
        with pytest.raises(GraphError):
            build_similarity_graph([frozenset({1})], measure="nope")

    def test_callable_measure(self):
        sets = [frozenset({1}), frozenset({1})]
        graph = build_similarity_graph(
            sets, measure=lambda i, a, b: 0.42
        )
        assert graph.neighbors(0)[1] == 0.42

    def test_empty_traffic_sets_are_isolated(self):
        sets = [frozenset(), frozenset({1}), frozenset({1})]
        graph = build_similarity_graph(sets)
        assert 0 in graph.isolated_nodes()

    def test_no_quadratic_blowup_on_disjoint_sets(self):
        sets = [frozenset({i}) for i in range(500)]
        graph = build_similarity_graph(sets)
        assert graph.n_edges == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError):
            build_similarity_graph([frozenset({1})], engine="cuda")


#: Randomized per-alarm traffic sets over a small element universe, so
#: co-occurrence (and hence edges) is common rather than degenerate.
traffic_sets_st = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=25), max_size=12),
    max_size=24,
)


class TestEngineEquivalence:
    """The vectorized kernel must reproduce the reference graphs exactly."""

    @settings(max_examples=150, deadline=None)
    @given(
        sets=traffic_sets_st,
        measure=st.sampled_from(["simpson", "jaccard", "constant"]),
        threshold=st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9]),
    )
    def test_numpy_matches_python(self, sets, measure, threshold):
        vectorized = build_similarity_graph(
            sets, measure=measure, edge_threshold=threshold, engine="numpy"
        )
        reference = build_similarity_graph(
            sets, measure=measure, edge_threshold=threshold, engine="python"
        )
        assert vectorized.n_nodes == reference.n_nodes
        # Same edges AND bit-identical weights.
        assert vectorized.adjacency == reference.adjacency

    @settings(max_examples=50, deadline=None)
    @given(sets=traffic_sets_st)
    def test_numpy_matches_python_callable_measure(self, sets):
        def halved_overlap(intersection, size_a, size_b):
            return intersection / (2 * max(size_a, size_b, 1))

        vectorized = build_similarity_graph(
            sets, measure=halved_overlap, engine="numpy"
        )
        reference = build_similarity_graph(
            sets, measure=halved_overlap, engine="python"
        )
        assert vectorized.adjacency == reference.adjacency
