"""Unit tests for the Table-1 heuristics."""


from repro.labeling.heuristics import (
    CATEGORY_ATTACK,
    CATEGORY_SPECIAL,
    CATEGORY_UNKNOWN,
    label_packets,
)
from repro.net.packet import ACK, FIN, PROTO_ICMP, PROTO_UDP, PSH, RST, SYN
from tests.conftest import make_packet


def syn_packets(dport, count=20):
    return [
        make_packet(time=float(i), dst=1000 + i, dport=dport, tcp_flags=SYN)
        for i in range(count)
    ]


def data_packets(dport, count=20):
    return [
        make_packet(time=float(i), dport=dport, tcp_flags=ACK | PSH)
        for i in range(count)
    ]


class TestAttackRules:
    def test_sasser(self):
        for port in (1023, 5554, 9898):
            label = label_packets(syn_packets(port))
            assert (label.category, label.detail) == (CATEGORY_ATTACK, "Sasser")

    def test_rpc(self):
        label = label_packets(syn_packets(135))
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "RPC")

    def test_smb(self):
        label = label_packets(syn_packets(445))
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "SMB")

    def test_ping(self):
        packets = [
            make_packet(
                time=float(i), proto=PROTO_ICMP, sport=0, dport=0, icmp_type=8
            )
            for i in range(30)
        ]
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "Ping")

    def test_few_icmp_not_ping(self):
        packets = [
            make_packet(time=float(i), proto=PROTO_ICMP, sport=0, dport=0)
            for i in range(3)
        ]
        label = label_packets(packets)
        assert label.detail != "Ping"

    def test_other_attacks_flag_heavy(self):
        # >7 packets with SYN/RST/FIN >= 50% on a random port.
        packets = [
            make_packet(time=float(i), dport=7777, tcp_flags=SYN if i % 2 else RST)
            for i in range(12)
        ]
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "Other")

    def test_other_attacks_http_syn(self):
        # Service traffic with SYN >= 30%.
        packets = data_packets(80, count=12) + syn_packets(80, count=8)
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "Other")

    def test_netbios_udp(self):
        packets = [
            make_packet(
                time=float(i), proto=PROTO_UDP, sport=137, dport=137
            )
            for i in range(6)
        ]
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "NetBIOS")

    def test_netbios_tcp_139(self):
        # Below the "other attacks" packet threshold so NetBIOS fires.
        packets = [
            make_packet(time=float(i), dport=139, tcp_flags=SYN) for i in range(5)
        ]
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_ATTACK, "NetBIOS")


class TestSpecialRules:
    def test_http(self):
        label = label_packets(data_packets(80))
        assert (label.category, label.detail) == (CATEGORY_SPECIAL, "Http")

    def test_http_alt_port(self):
        label = label_packets(data_packets(8080))
        assert (label.category, label.detail) == (CATEGORY_SPECIAL, "Http")

    def test_services(self):
        for port in (20, 21, 22, 53):
            label = label_packets(data_packets(port))
            assert (label.category, label.detail) == (
                CATEGORY_SPECIAL,
                "Service",
            ), f"port {port}"

    def test_dns_udp(self):
        packets = [
            make_packet(time=float(i), proto=PROTO_UDP, dport=53)
            for i in range(20)
        ]
        label = label_packets(packets)
        assert (label.category, label.detail) == (CATEGORY_SPECIAL, "Service")


class TestUnknown:
    def test_random_ports(self):
        label = label_packets(data_packets(45678))
        assert label.category == CATEGORY_UNKNOWN

    def test_empty(self):
        label = label_packets([])
        assert label.category == CATEGORY_UNKNOWN

    def test_elephant_flow_is_unknown(self):
        # The post-2007 mislabeling the paper discusses: random-port
        # bulk transfer matches no heuristic.
        packets = [
            make_packet(time=float(i), sport=40000, dport=50000, tcp_flags=ACK | PSH)
            for i in range(100)
        ]
        assert label_packets(packets).category == CATEGORY_UNKNOWN


class TestPriorities:
    def test_sasser_beats_other(self):
        # Sasser SYN scans also satisfy "other attacks"; Sasser wins by
        # table order.
        label = label_packets(syn_packets(5554, count=50))
        assert label.detail == "Sasser"

    def test_mixed_traffic_below_threshold_unknown(self):
        packets = syn_packets(5554, count=3) + data_packets(45678, count=17)
        label = label_packets(packets)
        assert label.detail != "Sasser"

    def test_str(self):
        label = label_packets(syn_packets(445))
        assert str(label) == "attack:SMB"
