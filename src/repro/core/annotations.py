"""Traffic annotations (paper Section 6).

The similarity estimator "is able to deal with any traffic annotations
containing at least two timestamps and one traffic feature".  An
annotation is metadata about traffic — e.g. the application class
assigned by a traffic classifier, or a manual note — that is *not* an
anomaly detector vote:

* the estimator clusters annotations into communities exactly like
  alarms (shared traffic -> same community);
* the combiner **ignores** annotations when classifying communities
  (they are not votes);
* accepted communities are reported *with* the extra information the
  annotations carry.

Implementation: an :class:`Annotation` converts to a pseudo-alarm
whose detector family is :data:`ANNOTATION_DETECTOR`.  The pipeline
appends these pseudo-alarms before the estimator and strips the
annotation family from the configuration list handed to the combiner,
so confidence scores and SCANN votes never see them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.detectors.base import Alarm
from repro.errors import CombinerError
from repro.net.filters import FeatureFilter

#: Reserved detector-family name for annotations.  Configuration lists
#: containing this family are rejected by the pipeline.
ANNOTATION_DETECTOR = "annotation"


@dataclass(frozen=True)
class Annotation:
    """One piece of traffic metadata.

    Attributes
    ----------
    tag:
        Free-form label, e.g. ``"p2p"``, ``"streaming"``, ``"manual:
        known-misbehaving-host"``.
    t0, t1:
        The two timestamps the paper requires.
    filters:
        At least one traffic feature (a
        :class:`~repro.net.filters.FeatureFilter` carrying it).
    source:
        Who produced the annotation (classifier name, analyst, ...).
    """

    tag: str
    t0: float
    t1: float
    filters: tuple[FeatureFilter, ...]
    source: str = "classifier"

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise CombinerError("annotation with negative time window")
        if not self.filters:
            raise CombinerError("annotation carries no traffic feature")
        if not any(f.degree > 0 or f.proto is not None for f in self.filters):
            raise CombinerError(
                "annotation filters must constrain at least one feature"
            )

    def to_alarm(self) -> Alarm:
        """The pseudo-alarm form consumed by the similarity estimator."""
        return Alarm(
            detector=ANNOTATION_DETECTOR,
            config=f"{ANNOTATION_DETECTOR}/{self.source}",
            t0=self.t0,
            t1=self.t1,
            filters=self.filters,
        )


def merge_annotations(
    alarms: Sequence[Alarm], annotations: Sequence[Annotation]
) -> list[Alarm]:
    """Alarms plus annotation pseudo-alarms, estimator-ready."""
    merged = list(alarms)
    merged.extend(a.to_alarm() for a in annotations)
    return merged


def community_tags(community) -> list[str]:
    """Annotation tags present in a community.

    The tag is recovered from the pseudo-alarm's config suffix plus
    the annotation's traffic description; callers wanting the full
    :class:`Annotation` should key communities by alarm id instead.
    """
    if ANNOTATION_DETECTOR not in community.detectors():
        # Columnar communities answer detectors() from the table's code
        # column; skipping here keeps annotation-free runs from ever
        # materializing member Alarm objects.
        return []
    tags = []
    for alarm in community.alarms:
        if alarm.detector == ANNOTATION_DETECTOR:
            tags.append(alarm.config.split("/", 1)[1])
    return tags


def strip_annotation_configs(config_names: Sequence[str]) -> list[str]:
    """Configuration list without annotation pseudo-configs.

    The combiner must classify communities from detector votes only
    (paper: "the combiner classifies the communities by ignoring the
    annotations").
    """
    return [
        name
        for name in config_names
        if name.split("/", 1)[0] != ANNOTATION_DETECTOR
    ]


def split_annotation_alarms(alarms: Sequence[Alarm]) -> tuple[list[Alarm], list[Alarm]]:
    """Partition into (detector alarms, annotation pseudo-alarms)."""
    detector_alarms = []
    annotation_alarms = []
    for alarm in alarms:
        if alarm.detector == ANNOTATION_DETECTOR:
            annotation_alarms.append(alarm)
        else:
            detector_alarms.append(alarm)
    return detector_alarms, annotation_alarms
