"""Section 6 — runtime of the full pipeline on one trace.

The paper reports that combining alarms for one 15-minute MAWI trace
takes a few minutes, compatible with real-time analysis.  This
benchmark times the whole 4-step pipeline (12 detector configurations,
similarity estimator, SCANN, rule mining) on one synthetic archive day
and asserts it stays well inside real time (trace duration).
"""

from __future__ import annotations

from repro.labeling.mawilab import MAWILabPipeline


def test_pipeline_runtime(archive, benchmark):
    day = archive.day("2005-06-01")
    pipeline = MAWILabPipeline()

    result = benchmark(pipeline.run, day.trace)

    assert result.labels
    # Real-time capable: mean runtime below the trace duration.
    assert benchmark.stats["mean"] < day.trace.duration


def test_combiner_runtime_excluding_detectors(archive, benchmark):
    """Steps 2-4 only (the paper's 'few minutes to combine alarms')."""
    day = archive.day("2005-06-01")
    pipeline = MAWILabPipeline()
    alarms = []
    for detector in pipeline.ensemble:
        alarms.extend(detector.analyze(day.trace))

    result = benchmark(pipeline.run_with_alarms, day.trace, alarms)

    assert result.labels
    assert benchmark.stats["mean"] < day.trace.duration
