"""Unit tests for majority vote and the Condorcet Jury Theorem."""

import numpy as np
import pytest

from repro.core.majority import MajorityVoteStrategy, condorcet_probability
from repro.errors import CombinerError
from tests.test_confidence_strategies import (
    FIG2_COMMUNITY,
    FIG2_CONFIGS,
    community_set_of,
    make_community,
)


class TestCondorcet:
    def test_single_detector_identity(self):
        assert condorcet_probability(1, 0.7) == pytest.approx(0.7)

    def test_known_value_three_detectors(self):
        # 3 detectors at p=0.7: C(3,2) 0.49*0.3 + 0.343 = 0.784.
        assert condorcet_probability(3, 0.7) == pytest.approx(0.784)

    def test_monotone_increasing_when_competent(self):
        values = [condorcet_probability(n, 0.6) for n in (1, 3, 5, 9, 21)]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] > 0.8

    def test_monotone_decreasing_when_incompetent(self):
        values = [condorcet_probability(n, 0.4) for n in (1, 3, 5, 9, 21)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_coin_flip_invariant(self):
        for n in (1, 3, 5, 11):
            assert condorcet_probability(n, 0.5) == pytest.approx(0.5)

    def test_limits(self):
        assert condorcet_probability(101, 0.6) > 0.97
        assert condorcet_probability(101, 0.4) < 0.03

    def test_validation(self):
        with pytest.raises(CombinerError):
            condorcet_probability(0, 0.5)
        with pytest.raises(CombinerError):
            condorcet_probability(3, 1.5)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        n, p, trials = 5, 0.7, 20000
        votes = rng.random((trials, n)) < p
        empirical = (votes.sum(axis=1) > n // 2).mean()
        assert condorcet_probability(n, p) == pytest.approx(empirical, abs=0.01)


class TestMajorityStrategy:
    def test_fig2_community_accepted(self):
        # Detectors voting: A yes, B yes, C no -> 2/3 > 0.5.
        decisions = MajorityVoteStrategy().classify(
            community_set_of([FIG2_COMMUNITY]), FIG2_CONFIGS
        )
        assert decisions[0].accepted
        assert decisions[0].mu == pytest.approx(2 / 3)

    def test_half_is_rejected(self):
        configs = [f"{d}/{i}" for d in "ABCD" for i in range(3)]
        community = make_community(["A/0", "B/0"])
        decisions = MajorityVoteStrategy().classify(
            community_set_of([community]), configs
        )
        # 2 of 4 detectors = exactly half, not a majority.
        assert not decisions[0].accepted

    def test_one_config_counts_as_detector_vote(self):
        configs = [f"{d}/{i}" for d in "ABC" for i in range(3)]
        community = make_community(["A/0", "B/2"])
        decisions = MajorityVoteStrategy().classify(
            community_set_of([community]), configs
        )
        assert decisions[0].accepted  # 2/3 detectors vote
