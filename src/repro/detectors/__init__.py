"""The four anomaly detectors combined in the paper.

Each detector is an unsupervised, from-scratch reimplementation of the
corresponding published method (see DESIGN.md):

* :class:`~repro.detectors.pca.PCADetector` — subspace method on
  sketched traffic (Lakhina'04 via Kanda'10 sketches); reports
  **source IPs**.
* :class:`~repro.detectors.gamma.GammaDetector` — sketches +
  multi-resolution Gamma modeling (Dewaele'07); reports **source or
  destination IPs**.
* :class:`~repro.detectors.hough.HoughDetector` — line detection in a
  2-D traffic picture (Fontugne'11); reports **aggregated flow sets**.
* :class:`~repro.detectors.kl.KLDetector` — Kullback-Leibler divergence
  on feature histograms + association rules (Brauckhoff'09); reports
  **partial 4-tuple rules**.

The heterogeneous granularities are the whole point: they are what the
similarity estimator must reconcile.

:func:`~repro.detectors.registry.default_ensemble` builds the paper's
experimental input — 4 detectors x 3 tunings = 12 configurations.
"""

from repro.detectors.base import Alarm, Configuration, Detector
from repro.detectors.sketch import SketchHasher
from repro.detectors.pca import PCADetector
from repro.detectors.gamma import GammaDetector
from repro.detectors.hough import HoughDetector
from repro.detectors.kl import KLDetector
from repro.detectors.entropy import EntropyDetector, extended_ensemble
from repro.detectors.registry import (
    DETECTOR_NAMES,
    default_ensemble,
    detector_for_config,
    run_ensemble,
)
from repro.detectors.streaming import StreamingDetector, wrap_ensemble

__all__ = [
    "StreamingDetector",
    "wrap_ensemble",
    "Alarm",
    "Configuration",
    "Detector",
    "SketchHasher",
    "PCADetector",
    "GammaDetector",
    "HoughDetector",
    "KLDetector",
    "EntropyDetector",
    "extended_ensemble",
    "DETECTOR_NAMES",
    "default_ensemble",
    "detector_for_config",
    "run_ensemble",
]
