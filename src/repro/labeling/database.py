"""The MAWILab label database on disk.

The paper's deliverable is a *database*: one label file per archive
day, updated daily, that researchers download and compare against
(Section 5).  This module implements that layout:

    <root>/
      index.csv                     # one row per stored day
      2004/05/01_anomalous_suspicious.csv
      2004/05/02_anomalous_suspicious.csv
      ...

Each day file is the CSV produced by
:func:`~repro.labeling.mawilab.labels_to_csv`; the index records the
day's summary counts so sweeps can be inspected without parsing every
file.  :meth:`LabelDatabase.load_day` parses a stored day back into
lightweight :class:`StoredLabel` records usable with
:func:`~repro.eval.benchmark.benchmark_detector` via
:meth:`StoredLabel.to_record`.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import LabelingError
from repro.labeling.mawilab import LabelRecord, PipelineResult, labels_to_csv
from repro.net.addresses import ip_to_int

_INDEX_FIELDS = [
    "date",
    "n_communities",
    "n_anomalous",
    "n_suspicious",
    "n_notice",
    "n_alarms",
]


@dataclass
class StoredLabel:
    """One (community, rule) row parsed back from a stored day file."""

    community_id: int
    taxonomy: str
    heuristic_category: str
    heuristic_detail: str
    t0: float
    t1: float
    n_alarms: int
    detectors: tuple[str, ...]
    src: Optional[int] = None
    sport: Optional[int] = None
    dst: Optional[int] = None
    dport: Optional[int] = None
    rule_support: float = 0.0


def _day_relpath(date: str) -> str:
    try:
        year, month, day = date.split("-")
    except ValueError as exc:
        raise LabelingError(f"bad ISO date {date!r}") from exc
    return os.path.join(year, month, f"{day}_anomalous_suspicious.csv")


class LabelDatabase:
    """File-based MAWILab-style label repository."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- writing -------------------------------------------------------

    def store_day(self, date: str, result: PipelineResult) -> str:
        """Store one day's pipeline result; returns the file path."""
        path = os.path.join(self.root, _day_relpath(date))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(labels_to_csv(result.labels))
        self._update_index(date, result)
        return path

    def _update_index(self, date: str, result: PipelineResult) -> None:
        entries = self._read_index()
        entries[date] = {
            "date": date,
            "n_communities": len(result.labels),
            "n_anomalous": len(result.anomalous()),
            "n_suspicious": len(result.suspicious()),
            "n_notice": len(result.notice()),
            "n_alarms": len(result.alarms),
        }
        index_path = os.path.join(self.root, "index.csv")
        with open(index_path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_INDEX_FIELDS)
            writer.writeheader()
            for key in sorted(entries):
                writer.writerow(entries[key])

    def _read_index(self) -> dict[str, dict]:
        index_path = os.path.join(self.root, "index.csv")
        if not os.path.exists(index_path):
            return {}
        with open(index_path, newline="") as handle:
            return {row["date"]: row for row in csv.DictReader(handle)}

    # -- reading -------------------------------------------------------

    def dates(self) -> list[str]:
        """Stored dates, sorted."""
        return sorted(self._read_index())

    def summary(self, date: str) -> dict:
        """Index row of one stored day."""
        entries = self._read_index()
        if date not in entries:
            raise LabelingError(f"no stored labels for {date}")
        row = entries[date]
        return {
            "date": row["date"],
            **{k: int(row[k]) for k in _INDEX_FIELDS[1:]},
        }

    def load_day(self, date: str) -> list[StoredLabel]:
        """Parse one stored day file back into rows."""
        path = os.path.join(self.root, _day_relpath(date))
        if not os.path.exists(path):
            raise LabelingError(f"no stored labels for {date}")
        rows: list[StoredLabel] = []
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                rows.append(
                    StoredLabel(
                        community_id=int(row["community"]),
                        taxonomy=row["taxonomy"],
                        heuristic_category=row["heuristic_category"],
                        heuristic_detail=row["heuristic_detail"],
                        t0=float(row["t0"]),
                        t1=float(row["t1"]),
                        n_alarms=int(row["n_alarms"]),
                        detectors=tuple(
                            d for d in row["detectors"].split("|") if d
                        ),
                        src=ip_to_int(row["src"]) if row["src"] else None,
                        sport=int(row["sport"]) if row["sport"] else None,
                        dst=ip_to_int(row["dst"]) if row["dst"] else None,
                        dport=int(row["dport"]) if row["dport"] else None,
                        rule_support=float(row["rule_support"])
                        if row["rule_support"]
                        else 0.0,
                    )
                )
        return rows

    def load_day_records(self, date: str) -> list[LabelRecord]:
        """Reassemble :class:`LabelRecord` objects from a stored day.

        Rules of the same community collapse back into one record, so
        the result is directly usable with
        :func:`~repro.eval.benchmark.benchmark_detector`.
        """
        from repro.labeling.heuristics import HeuristicLabel
        from repro.rules.itemsets import Rule
        from repro.rules.summarize import CommunitySummary

        grouped: dict[int, list[StoredLabel]] = {}
        for row in self.load_day(date):
            grouped.setdefault(row.community_id, []).append(row)
        records: list[LabelRecord] = []
        for community_id in sorted(grouped):
            rows = grouped[community_id]
            first = rows[0]
            rules = [
                Rule(
                    src=row.src,
                    sport=row.sport,
                    dst=row.dst,
                    dport=row.dport,
                    support=row.rule_support,
                )
                for row in rows
                if any(
                    v is not None
                    for v in (row.src, row.sport, row.dst, row.dport)
                )
            ]
            degree = (
                sum(rule.degree for rule in rules) / len(rules) if rules else 0.0
            )
            records.append(
                LabelRecord(
                    community_id=community_id,
                    taxonomy=first.taxonomy,
                    heuristic=HeuristicLabel(
                        first.heuristic_category, first.heuristic_detail
                    ),
                    summary=CommunitySummary(
                        rules=rules,
                        rule_degree=degree,
                        rule_support=0.0,
                        n_transactions=0,
                    ),
                    t0=first.t0,
                    t1=first.t1,
                    n_alarms=first.n_alarms,
                    detectors=first.detectors,
                )
            )
        return records
