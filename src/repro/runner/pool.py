"""Process-pool fan-out shared by the batch runner and sweeps.

``parallel_map`` is a thin, order-preserving wrapper over
``ProcessPoolExecutor`` with two properties the callers rely on:

* ``workers <= 1`` runs inline in the calling process — no fork, no
  pickling — which keeps tests debuggable and lets monkeypatched
  worker internals take effect;
* progress callbacks fire as shards *complete* (any order), while the
  returned list always preserves input order, so sharded results are
  deterministic regardless of scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: ``progress(done, total, result)`` called after each item finishes.
ProgressCallback = Callable[[int, int, object], None]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> list[R]:
    """Apply ``fn`` to every item, fanning out across processes.

    ``fn`` must be a module-level callable and items picklable when
    ``workers > 1``.  Results are returned in input order.
    """
    items = list(items)
    total = len(items)
    if total == 0:
        return []
    if workers <= 1:
        results: list[R] = []
        for i, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if progress is not None:
                progress(i + 1, total, result)
        return results

    slots: list[Optional[R]] = [None] * total
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        future_to_index = {
            pool.submit(fn, item): i for i, item in enumerate(items)
        }
        done = 0
        for future in as_completed(future_to_index):
            index = future_to_index[future]
            slots[index] = future.result()
            done += 1
            if progress is not None:
                progress(done, total, slots[index])
    return slots  # type: ignore[return-value]
