"""Unit tests for repro.mawi.events and repro.mawi.archive."""


from repro.mawi.archive import SyntheticArchive, first_week_of_months
from repro.mawi.events import archive_timeline, era_for_date


class TestTimeline:
    def test_eras_contiguous(self):
        eras = archive_timeline()
        for previous, current in zip(eras, eras[1:]):
            assert previous.end == current.start

    def test_known_era_boundaries(self):
        assert era_for_date("2003-07-31").name == "early"
        assert era_for_date("2003-08-01").name == "blaster"
        assert era_for_date("2004-05-01").name == "sasser"
        assert era_for_date("2006-07-01").name == "100mbps"
        assert era_for_date("2007-06-01").name == "150mbps-p2p"

    def test_clamping(self):
        assert era_for_date("1999-01-01").name == "early"
        assert era_for_date("2015-06-01").name == "150mbps-p2p"

    def test_link_upgrades(self):
        assert era_for_date("2005-01-01").link_mbps == 18.0
        assert era_for_date("2006-08-01").link_mbps == 100.0
        assert era_for_date("2008-01-01").link_mbps == 150.0

    def test_worm_eras_boost_worm_weights(self):
        base = era_for_date("2002-01-01").anomaly_weights
        blaster = era_for_date("2003-09-01").anomaly_weights
        sasser = era_for_date("2004-06-01").anomaly_weights
        assert blaster["blaster"] > base["blaster"]
        assert sasser["sasser"] > base["sasser"]

    def test_p2p_growth_after_2007(self):
        early = era_for_date("2002-01-01")
        late = era_for_date("2009-01-01")
        assert late.p2p_weight > early.p2p_weight
        assert late.anomaly_weights["elephant_flow"] > early.anomaly_weights[
            "elephant_flow"
        ]


class TestArchive:
    def test_deterministic_per_date(self):
        a = SyntheticArchive(seed=1, trace_duration=10.0)
        b = SyntheticArchive(seed=1, trace_duration=10.0)
        day_a = a.day("2004-06-01")
        day_b = b.day("2004-06-01")
        assert len(day_a.trace) == len(day_b.trace)
        assert [e.kind for e in day_a.events] == [e.kind for e in day_b.events]

    def test_different_dates_differ(self):
        archive = SyntheticArchive(seed=1, trace_duration=10.0)
        d1 = archive.day("2004-06-01")
        d2 = archive.day("2004-06-02")
        assert len(d1.trace) != len(d2.trace) or [
            e.kind for e in d1.events
        ] != [e.kind for e in d2.events]

    def test_day_metadata(self):
        archive = SyntheticArchive(seed=1, trace_duration=10.0)
        day = archive.day("2008-05-05")
        assert day.trace.metadata.date == "2008-05-05"
        assert day.trace.metadata.link_mbps == 150.0
        assert day.era.name == "150mbps-p2p"

    def test_anomaly_count_in_era_range(self):
        archive = SyntheticArchive(seed=1, trace_duration=10.0)
        day = archive.day("2003-09-15")
        lo, hi = day.era.anomalies_per_trace
        assert lo <= len(day.events) <= hi

    def test_days_iterator(self):
        archive = SyntheticArchive(seed=1, trace_duration=10.0)
        days = list(archive.days(["2002-01-01", "2002-01-02"]))
        assert [d.date for d in days] == ["2002-01-01", "2002-01-02"]


class TestFirstWeek:
    def test_default_span(self):
        dates = first_week_of_months(2001, 2009)
        assert dates[0] == "2001-01-01"
        assert dates[-1] == "2009-12-01"
        assert len(dates) == 9 * 12

    def test_days_per_month(self):
        dates = first_week_of_months(2005, 2005, days_per_month=3)
        assert len(dates) == 36
        assert "2005-01-03" in dates

    def test_month_step(self):
        dates = first_week_of_months(2005, 2005, month_step=3)
        assert len(dates) == 4
