"""Zero-copy packet-table transport over ``multiprocessing.shared_memory``.

The pickle transport serializes every :class:`~repro.net.table.PacketTable`
column into the pool's task pipe and deserializes it in the worker —
two full copies plus pickle framing, per task.  This module replaces
that with named shared-memory segments:

* the parent **exports** the table once (:func:`export_table`, or
  :meth:`TableArena.export` when successive exports can recycle one
  segment): columns are packed back-to-back into one segment, and a
  tiny picklable :class:`SharedTableHandle` (segment name + row count,
  from which the per-column layout is derived) rides the task pipe
  instead of the data;
* the worker **attaches** (:meth:`SharedTableHandle.attach`, or the
  process-local :class:`SegmentRegistry` which *pins* the mapping so
  later shards naming the same segment skip the map entirely): each
  column becomes a NumPy view directly over the mapped segment — no
  copy, no deserialization — wrapped in an immutable
  :class:`~repro.net.table.PacketTable`;
* the parent **unlinks** the segment after its consumers finish
  (:meth:`SharedTableHandle.unlink` / :meth:`TableArena.close`),
  returning the memory to the OS.

Archive labeling therefore scales with cores, not with pickle
bandwidth; ``repro bench`` measures both transports side by side, and
``docs/architecture-fanout.md`` walks the full
export → attach → pin → reuse → teardown lifecycle.
"""

from __future__ import annotations

import atexit
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Union

import numpy as np

from repro.core.alarm_table import (
    ALARM_COLUMNS,
    FILTER_COLUMNS,
    FLOW_COLUMNS,
    AlarmTable,
)
from repro.core.alarm_table import (
    ALARM_COLUMN_DTYPES as _ALARM_DTYPES,
)
from repro.core.alarm_table import (
    FILTER_COLUMN_DTYPES as _FILTER_DTYPES,
)
from repro.core.alarm_table import (
    FLOW_COLUMN_DTYPES as _FLOW_DTYPES,
)
from repro.net.table import COLUMN_DTYPES, COLUMNS, PacketTable


#: Segment names *created* by this process (exports and arenas).  The
#: attach-side resource-tracker workaround below must skip these: when
#: owner and attacher are the same process (inline pools, tests),
#: unregistering on attach would strip the owner's own registration
#: and make the eventual unlink double-unregister.
_owned_names: set[str] = set()


def _unregister_attached(name: str) -> None:
    """Opt an attached (not owned) segment out of resource tracking.

    Before Python 3.13 (``track=False``), merely attaching registers
    the segment with the process's resource tracker, which then
    "cleans up" — unlinks — segments the parent still owns when the
    worker exits, and warns about leaks it never owned.  Attach-side
    unregistration is the documented workaround; it is skipped for
    segments this very process owns.
    """
    if name in _owned_names:
        return
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing.resource_tracker import unregister

        unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def _register_owned(name: str) -> None:
    """Re-assert tracker registration just before an owner-side unlink.

    Fork-started workers share the parent's resource tracker, so a
    worker's attach-side :func:`_unregister_attached` may have removed
    the owner's registration; re-registering (a set add — idempotent)
    keeps the unlink's internal unregister balanced instead of tripping
    a tracker ``KeyError``.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing.resource_tracker import register

        register(f"/{name}", "shared_memory")
    except Exception:
        pass


class AttachedTable:
    """A :class:`PacketTable` view over a mapped shared segment.

    Keeps the segment mapped for as long as the table is in use; call
    :meth:`close` (or use as a context manager) after dropping every
    reference to the table and arrays derived from its columns.
    """

    def __init__(self, shm: shared_memory.SharedMemory, table: PacketTable) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.table: Optional[PacketTable] = table

    def __enter__(self) -> PacketTable:
        assert self.table is not None
        return self.table

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drop the table and unmap the segment (idempotent).

        A still-referenced column view makes the unmap raise
        ``BufferError``; the mapping then simply lives until process
        exit, which is safe — only :meth:`SharedTableHandle.unlink`
        frees the backing memory, and that stays the parent's job.
        """
        self.table = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            self._shm = None


@dataclass(frozen=True)
class SharedTableHandle:
    """Picklable description of one exported table segment."""

    name: str
    n_rows: int

    def attach(self) -> AttachedTable:
        """Map the segment and view it as a :class:`PacketTable`.

        One mapping per call; callers that attach the same segment many
        times (pool workers receiving successive shards against one
        pinned table) should go through :func:`segment_registry`
        instead, which maps once and rebuilds only the cheap views.
        """
        shm = shared_memory.SharedMemory(name=self.name)
        _unregister_attached(self.name)
        return AttachedTable(shm, _table_view(shm, self.n_rows))

    def unlink(self) -> None:
        """Free the backing segment (owner-side, after workers finish).

        Idempotent: a second unlink (or an unlink racing another
        owner's) is a silent no-op.  Attached mappings in workers stay
        valid after the unlink — the memory is returned to the OS only
        once every mapping closes, so a pinned registry entry merely
        delays the release, never corrupts it.
        """
        _owned_names.discard(self.name)
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:  # pragma: no cover - already unlinked
            return
        segment.unlink()
        segment.close()


def _column_bytes(n_rows: int, dtype: np.dtype) -> int:
    """Segment bytes reserved per column, 8-byte aligned."""
    return -(-n_rows * dtype.itemsize // 8) * 8


def _table_view(
    shm: shared_memory.SharedMemory, n_rows: int
) -> PacketTable:
    """View a mapped segment as a :class:`PacketTable`.

    The layout is fully determined by ``n_rows`` (columns packed
    back-to-back in ``COLUMNS`` order, 8-byte aligned), so a segment
    larger than the layout needs — an arena recycled from a bigger
    export — views correctly through the same function.
    """
    columns = {}
    offset = 0
    for column, dtype in COLUMN_DTYPES.items():
        columns[column] = np.ndarray(
            (n_rows,), dtype=dtype, buffer=shm.buf, offset=offset
        )
        offset += _column_bytes(n_rows, dtype)
    return PacketTable(**columns)


def segment_bytes(n_rows: int) -> int:
    """Total segment size for an ``n_rows`` table (≥ 1 byte)."""
    return max(
        sum(_column_bytes(n_rows, dtype) for dtype in COLUMN_DTYPES.values()),
        1,
    )


def transport_probe_shm(handle: SharedTableHandle) -> int:
    """Pool worker for the transport microbench: attach + touch.

    Returns the table's total byte count, forcing a real read of the
    mapped columns; the work is deliberately trivial so the measured
    time is the transport, not the compute.
    """
    attached = handle.attach()
    try:
        return int(attached.table.size.sum())
    finally:
        attached.close()


def transport_probe_pickle(table: PacketTable) -> int:
    """Pickle-transport twin of :func:`transport_probe_shm`."""
    return int(table.size.sum())


# -- alarm tables ------------------------------------------------------
#
# The result-side twin of the packet transport: a worker's Step 1
# alarm table flows back to the parent as one shared segment instead
# of a pickled object list.  Every numeric column (per-alarm, ragged
# bounds, encoded per-filter / per-flow-key blocks) lands in the
# segment; only the two small name pools ride the handle.


def _alarm_layout(
    n_rows: int, n_filters: int, n_flows: int
) -> list[tuple[str, np.dtype, int]]:
    """(column, dtype, length) for every numeric alarm-table array."""
    layout = [(name, _ALARM_DTYPES[name], n_rows) for name in ALARM_COLUMNS]
    layout.append(("filter_bounds", np.dtype(np.int64), n_rows + 1))
    layout.append(("flow_bounds", np.dtype(np.int64), n_rows + 1))
    layout.extend(
        (name, _FILTER_DTYPES[name], n_filters) for name in FILTER_COLUMNS
    )
    layout.extend(
        (name, _FLOW_DTYPES[name], n_flows) for name in FLOW_COLUMNS
    )
    return layout


def alarm_segment_bytes(n_rows: int, n_filters: int, n_flows: int) -> int:
    """Total segment size for an alarm table (≥ 1 byte)."""
    return max(
        sum(
            _column_bytes(length, dtype)
            for _name, dtype, length in _alarm_layout(n_rows, n_filters, n_flows)
        ),
        1,
    )


class AttachedAlarmTable:
    """An :class:`AlarmTable` view over a mapped shared segment.

    Same contract as :class:`AttachedTable`: keep it open while the
    table (or arrays derived from its columns) is in use, then
    :meth:`close`; the exporting side owns the segment's lifetime.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, table: AlarmTable
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.table: Optional[AlarmTable] = table

    def __enter__(self) -> AlarmTable:
        assert self.table is not None
        return self.table

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.table = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            self._shm = None


@dataclass(frozen=True)
class SharedAlarmTableHandle:
    """Picklable description of one exported alarm-table segment.

    The numeric columns live in the named segment; the detector /
    configuration name pools — small by construction — travel with the
    handle itself.
    """

    name: str
    n_rows: int
    n_filters: int
    n_flows: int
    detectors: tuple[str, ...]
    configs: tuple[str, ...]

    def attach(self) -> AttachedAlarmTable:
        """Map the segment and view it as an :class:`AlarmTable`."""
        shm = shared_memory.SharedMemory(name=self.name)
        _unregister_attached(self.name)
        return AttachedAlarmTable(shm, self._view(shm))

    def _view(self, shm: shared_memory.SharedMemory) -> AlarmTable:
        """The zero-copy :class:`AlarmTable` over a mapped segment."""
        columns = {}
        offset = 0
        for column, dtype, length in _alarm_layout(
            self.n_rows, self.n_filters, self.n_flows
        ):
            columns[column] = np.ndarray(
                (length,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            offset += _column_bytes(length, dtype)
        return AlarmTable(
            **columns, detectors=self.detectors, configs=self.configs
        )

    def to_table(self) -> AlarmTable:
        """Attach, copy out a process-local table, and unmap.

        For consumers that outlive the segment (the parent collects a
        worker's results, then unlinks); the copy is one memcpy per
        column.
        """
        attached = self.attach()
        try:
            table = attached.table
            return AlarmTable(
                **{
                    name: np.array(getattr(table, name))
                    for name, _dtype, _length in _alarm_layout(
                        self.n_rows, self.n_filters, self.n_flows
                    )
                },
                detectors=self.detectors,
                configs=self.configs,
            )
        finally:
            attached.close()

    def unlink(self) -> None:
        """Free the backing segment (owner-side, after consumption)."""
        _owned_names.discard(self.name)
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:  # pragma: no cover - already unlinked
            return
        segment.unlink()
        segment.close()


def export_alarm_table(table: AlarmTable) -> SharedAlarmTableHandle:
    """Copy an alarm table's numeric columns into a fresh segment.

    The caller owns the segment and must eventually call
    :meth:`SharedAlarmTableHandle.unlink`.  Pool workers use this to
    hand their Step 1 results back zero-copy: the report carries the
    handle, the parent attaches (or :meth:`~SharedAlarmTableHandle.to_table`\\ s)
    and unlinks.
    """
    n_rows = len(table)
    n_filters = len(table.f_src)
    n_flows = len(table.w_src)
    shm = shared_memory.SharedMemory(
        create=True, size=alarm_segment_bytes(n_rows, n_filters, n_flows)
    )
    _owned_names.add(shm.name)
    try:
        offset = 0
        for column, dtype, length in _alarm_layout(
            n_rows, n_filters, n_flows
        ):
            view = np.ndarray(
                (length,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            view[:] = getattr(table, column)
            offset += _column_bytes(length, dtype)
            del view
        handle = SharedAlarmTableHandle(
            name=shm.name,
            n_rows=n_rows,
            n_filters=n_filters,
            n_flows=n_flows,
            detectors=table.detectors,
            configs=table.configs,
        )
    except BaseException:
        _owned_names.discard(shm.name)
        shm.close()
        shm.unlink()
        raise
    shm.close()
    return handle


def export_table(table: PacketTable) -> SharedTableHandle:
    """Copy ``table`` into a fresh shared segment; return its handle.

    The caller owns the segment and must eventually call
    :meth:`SharedTableHandle.unlink` (normally after every worker
    labeled against it) — segments outlive the creating process
    otherwise.  Callers exporting many tables in sequence should prefer
    a :class:`TableArena`, which recycles one segment instead of paying
    the create/unlink round-trip per export.
    """
    n_rows = len(table)
    shm = shared_memory.SharedMemory(create=True, size=segment_bytes(n_rows))
    _owned_names.add(shm.name)
    try:
        _write_table(shm, table)
        handle = SharedTableHandle(name=shm.name, n_rows=n_rows)
    except BaseException:
        _owned_names.discard(shm.name)
        shm.close()
        shm.unlink()
        raise
    shm.close()
    return handle


def _write_table(
    shm: shared_memory.SharedMemory, table: PacketTable
) -> None:
    """Pack ``table``'s columns into ``shm`` (one memcpy per column)."""
    n_rows = len(table)
    offset = 0
    for column in COLUMNS:
        dtype = COLUMN_DTYPES[column]
        view = np.ndarray(
            (n_rows,), dtype=dtype, buffer=shm.buf, offset=offset
        )
        view[:] = getattr(table, column)
        offset += _column_bytes(n_rows, dtype)
        del view


# -- feature planes ----------------------------------------------------
#
# The third transport family: cached feature planes (sketch buckets,
# binned histograms, PCA residuals, ...) computed once by the parent
# flow to fan-out workers as one shared segment, so sibling tasks of
# the same trace attach the ensemble's planes zero-copy instead of
# recomputing them per worker.  A plane is an ndarray, a flat
# tuple/list of ndarrays and scalars, or a BinnedHistogram; the layout
# (array dtypes/shapes at 8-byte-aligned running offsets, scalars
# riding the handle) travels with the picklable handle, exactly like
# the alarm-table transport.


def _array_bytes(shape: tuple, dtype: np.dtype) -> int:
    """Segment bytes reserved per plane array, 8-byte aligned."""
    n = 1
    for dim in shape:
        n *= int(dim)
    return -(-n * dtype.itemsize // 8) * 8


def _plane_parts(value) -> tuple[str, tuple, list[np.ndarray]]:
    """Flatten one exportable plane into ``(kind, parts, arrays)``.

    ``parts`` is the picklable per-item layout — ``("array", dtype_str,
    shape)`` items consume segment bytes in order, ``("scalar", v)``
    items ride the handle — and ``arrays`` the matching ndarrays to
    write.  Kinds: ``"nd"`` (bare array), ``"tuple"`` / ``"list"``
    (flat containers), ``"hist"`` (BinnedHistogram).
    """
    if isinstance(value, np.ndarray):
        return "nd", (("array", value.dtype.str, value.shape),), [value]
    if isinstance(value, (tuple, list)):
        kind = "tuple" if isinstance(value, tuple) else "list"
        parts: list[tuple] = []
        arrays: list[np.ndarray] = []
        for item in value:
            if isinstance(item, np.ndarray):
                parts.append(("array", item.dtype.str, item.shape))
                arrays.append(item)
            else:
                scalar = item.item() if isinstance(item, np.generic) else item
                parts.append(("scalar", scalar))
        return kind, tuple(parts), arrays
    # BinnedHistogram duck-type (feature name + three numeric arrays).
    return (
        "hist",
        (
            ("scalar", value.feature),
            ("array", value.values.dtype.str, value.values.shape),
            ("array", value.codes.dtype.str, value.codes.shape),
            ("array", value.counts.dtype.str, value.counts.shape),
        ),
        [value.values, value.codes, value.counts],
    )


def planes_segment_bytes(items) -> int:
    """Total segment size for ``(spec, value)`` plane pairs (≥ 1 byte)."""
    total = 0
    for _spec, value in items:
        _kind, parts, _arrays = _plane_parts(value)
        for part in parts:
            if part[0] == "array":
                total += _array_bytes(part[2], np.dtype(part[1]))
    return max(total, 1)


class AttachedPlanes:
    """A ``{spec: plane}`` view over a mapped shared segment.

    Same contract as :class:`AttachedTable`: keep it open while any
    plane view is in use, then :meth:`close`; the exporting side owns
    the segment's lifetime.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, planes: dict
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.planes: Optional[dict] = planes

    def __enter__(self) -> dict:
        assert self.planes is not None
        return self.planes

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.planes = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            self._shm = None


@dataclass(frozen=True)
class SharedPlanesHandle:
    """Picklable description of one exported feature-plane segment.

    ``entries`` holds one ``(spec, kind, parts)`` triple per plane;
    the numeric arrays live in the named segment at running offsets
    derived from ``parts``, scalars (histogram feature names, tuple
    members) travel with the handle.
    """

    name: str
    entries: tuple

    def attach(self) -> AttachedPlanes:
        """Map the segment and view it as a ``{spec: plane}`` dict."""
        shm = shared_memory.SharedMemory(name=self.name)
        _unregister_attached(self.name)
        return AttachedPlanes(shm, self._view(shm))

    def _view(self, shm: shared_memory.SharedMemory) -> dict:
        """Zero-copy plane views over a mapped segment.

        Array views are marked read-only: workers share one physical
        copy, so an accidental in-place mutation must raise rather
        than corrupt a sibling's input (plane consumers that rewrite
        entries — the streaming KL baseline — ``.copy()`` first).
        """
        planes: dict = {}
        offset = 0
        for spec, kind, parts in self.entries:
            items = []
            for part in parts:
                if part[0] == "scalar":
                    items.append(part[1])
                    continue
                _tag, dtype_str, shape = part
                dtype = np.dtype(dtype_str)
                view = np.ndarray(
                    shape, dtype=dtype, buffer=shm.buf, offset=offset
                )
                view.flags.writeable = False
                items.append(view)
                offset += _array_bytes(shape, dtype)
            planes[spec] = _rebuild_plane(kind, items)
        return planes

    def unlink(self) -> None:
        """Free the backing segment (owner-side, after workers finish)."""
        _owned_names.discard(self.name)
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:  # pragma: no cover - already unlinked
            return
        segment.unlink()
        segment.close()


def _rebuild_plane(kind: str, items: list):
    if kind == "nd":
        return items[0]
    if kind == "tuple":
        return tuple(items)
    if kind == "list":
        return items
    # "hist": (feature, values, codes, counts)
    from repro.detectors.features import BinnedHistogram

    return BinnedHistogram(items[0], items[1], items[2], items[3])


def _write_planes(shm: shared_memory.SharedMemory, items) -> tuple:
    """Pack plane arrays into ``shm``; return the handle entries."""
    entries = []
    offset = 0
    for spec, value in items:
        kind, parts, arrays = _plane_parts(value)
        for array in arrays:
            dtype = array.dtype
            view = np.ndarray(
                array.shape, dtype=dtype, buffer=shm.buf, offset=offset
            )
            view[...] = array
            offset += _array_bytes(array.shape, dtype)
            del view
        entries.append((spec, kind, parts))
    return tuple(entries)


def export_planes(items) -> SharedPlanesHandle:
    """Copy ``(spec, value)`` plane pairs into a fresh shared segment.

    The caller owns the segment and must eventually call
    :meth:`SharedPlanesHandle.unlink`.  Callers exporting per shard
    should prefer a :class:`PlaneArena`, which recycles one segment.
    """
    items = list(items)
    shm = shared_memory.SharedMemory(
        create=True, size=planes_segment_bytes(items)
    )
    _owned_names.add(shm.name)
    try:
        entries = _write_planes(shm, items)
        handle = SharedPlanesHandle(name=shm.name, entries=entries)
    except BaseException:
        _owned_names.discard(shm.name)
        shm.close()
        shm.unlink()
        raise
    shm.close()
    return handle


class PlaneArena:
    """A reusable shared segment for successive feature-plane exports.

    The plane twin of :class:`TableArena`: one owned segment recycled
    across exports, grown (with ``slack`` headroom, under a new name)
    only when a bigger plane set arrives.  Same recycle discipline:
    never export over a segment while a task holding its previous
    handle may still read it.
    """

    def __init__(self, slack: float = 1.25) -> None:
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1, got {slack}")
        self.slack = slack
        self._shm: Optional[shared_memory.SharedMemory] = None
        #: Segments allocated over the arena's lifetime (observability:
        #: steady state is 1).
        self.allocations = 0

    def export(self, items) -> SharedPlanesHandle:
        """Pack plane pairs into the (recycled or grown) segment."""
        items = list(items)
        need = planes_segment_bytes(items)
        if self._shm is None or self._shm.size < need:
            self.close()
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(int(need * self.slack), need)
            )
            _owned_names.add(self._shm.name)
            self.allocations += 1
        entries = _write_planes(self._shm, items)
        return SharedPlanesHandle(name=self._shm.name, entries=entries)

    @property
    def name(self) -> Optional[str]:
        """Current segment name (``None`` before first export)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Unlink and unmap the current segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        _owned_names.discard(shm.name)
        _register_owned(shm.name)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _close_quietly(shm)

    def __enter__(self) -> "PlaneArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- persistent attachment and segment reuse ---------------------------
#
# The per-shard export/attach/unlink cycle above is correct but pays a
# fixed cost per segment (shm_open + mmap + resource-tracker traffic +
# unlink) that dwarfs the memcpy for small tables — the reason the
# microbench's 11x shm win historically failed to show up end-to-end.
# Two pieces remove the churn:
#
# * parent side, a TableArena recycles ONE named segment across
#   successive exports (growing only when a bigger table arrives), so
#   steady-state export cost is a pure memcpy;
# * worker side, a SegmentRegistry pins mappings by segment name, so a
#   worker receiving its second shard against the same (or a recycled)
#   segment skips the map entirely and only rebuilds the O(#columns)
#   NumPy views.
#
# Safety: the arena owner must not overwrite a segment while any task
# holding its previous handle is still running — the pooled run modes
# guarantee this by recycling an arena only after the shard's report
# arrived.  Registry eviction and process exit merely unmap; the
# backing memory is freed when the owner unlinks AND the last mapping
# closes, in either order.


class SegmentRegistry:
    """Process-local cache of attached segments, keyed by name.

    Pool workers use the module singleton (:func:`segment_registry`) to
    attach task segments: the first task naming a segment maps it, every
    later task reuses the pinned mapping and only rebuilds the cheap
    per-column views (layouts travel with each handle, so one segment
    can back differently-sized tables across its lifetime — the arena
    recycling contract).

    ``max_segments`` bounds worker memory: mappings are evicted LRU
    once the pin count exceeds it.  Eviction (and :meth:`clear`, which
    runs at interpreter exit) closes the mapping; if column views built
    from it are still referenced the unmap is deferred to process exit
    — safe, because only the exporting side ever unlinks.
    """

    def __init__(self, max_segments: int = 8) -> None:
        self.max_segments = max_segments
        self._mappings: OrderedDict[str, shared_memory.SharedMemory] = (
            OrderedDict()
        )
        #: Mappings created / reused since construction (observability:
        #: a healthy persistent-worker run shows hits >> attaches).
        self.attaches = 0
        self.hits = 0

    def _mapping(self, name: str) -> shared_memory.SharedMemory:
        mapping = self._mappings.get(name)
        if mapping is not None:
            self.hits += 1
            self._mappings.move_to_end(name)
            return mapping
        mapping = shared_memory.SharedMemory(name=name)
        _unregister_attached(name)
        self._mappings[name] = mapping
        self.attaches += 1
        while len(self._mappings) > self.max_segments:
            _evicted, old = self._mappings.popitem(last=False)
            _close_quietly(old)
        return mapping

    def table(self, handle: SharedTableHandle) -> PacketTable:
        """A pinned zero-copy :class:`PacketTable` for ``handle``."""
        return _table_view(self._mapping(handle.name), handle.n_rows)

    def alarm_table(self, handle: SharedAlarmTableHandle) -> AlarmTable:
        """A pinned zero-copy :class:`AlarmTable` for ``handle``."""
        return handle._view(self._mapping(handle.name))

    def planes(self, handle: SharedPlanesHandle) -> dict:
        """Pinned zero-copy ``{spec: plane}`` views for ``handle``."""
        return handle._view(self._mapping(handle.name))

    def names(self) -> tuple[str, ...]:
        """Currently pinned segment names, LRU-oldest first."""
        return tuple(self._mappings)

    def release(self, name: str) -> None:
        """Unpin one segment (idempotent)."""
        mapping = self._mappings.pop(name, None)
        if mapping is not None:
            _close_quietly(mapping)

    def clear(self) -> None:
        """Unpin every segment (idempotent; registered atexit)."""
        while self._mappings:
            _name, mapping = self._mappings.popitem(last=False)
            _close_quietly(mapping)


def _close_quietly(mapping: shared_memory.SharedMemory) -> None:
    try:
        mapping.close()
    except BufferError:  # pragma: no cover - views still alive
        pass


_registry: Optional[SegmentRegistry] = None


def segment_registry() -> SegmentRegistry:
    """The process-wide :class:`SegmentRegistry` (created lazily).

    In pool workers this is the pin store that survives across tasks;
    its :meth:`~SegmentRegistry.clear` is registered ``atexit`` so a
    cleanly exiting worker unmaps everything it pinned.
    """
    global _registry
    if _registry is None:
        _registry = SegmentRegistry()
        atexit.register(_registry.clear)
    return _registry


class TableArena:
    """A reusable shared segment for successive packet-table exports.

    ``export`` packs the table into the owned segment and returns a
    fresh :class:`SharedTableHandle` naming it.  The segment is created
    on first use and *recycled* on every later export that fits; a
    bigger table reallocates (with ``slack`` headroom, so ingest-sized
    jitter doesn't thrash) under a new name and unlinks the old
    segment.  Stable names are what make worker-side pinning pay:
    after warm-up, an export is one memcpy in the parent and zero
    map/unmap work in the workers.

    The caller owns the recycle discipline: never export over a
    segment while a task holding its previous handle may still read it
    (the session recycles an arena only after the shard's report
    arrives).  :meth:`close` unlinks the segment; the arena is
    reusable afterwards (a later export allocates fresh).
    """

    def __init__(self, slack: float = 1.25) -> None:
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1, got {slack}")
        self.slack = slack
        self._shm: Optional[shared_memory.SharedMemory] = None
        #: Segments allocated over the arena's lifetime (observability:
        #: steady state is 1).
        self.allocations = 0

    def export(self, table: PacketTable) -> SharedTableHandle:
        """Pack ``table`` into the (recycled or grown) segment."""
        need = segment_bytes(len(table))
        if self._shm is None or self._shm.size < need:
            self.close()
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(int(need * self.slack), need)
            )
            _owned_names.add(self._shm.name)
            self.allocations += 1
        _write_table(self._shm, table)
        return SharedTableHandle(name=self._shm.name, n_rows=len(table))

    @property
    def name(self) -> Optional[str]:
        """Current segment name (``None`` before first export)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Unlink and unmap the current segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        _owned_names.discard(shm.name)
        _register_owned(shm.name)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _close_quietly(shm)

    def __enter__(self) -> "TableArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Either transport handle type (task fields accept both).
AnyHandle = Union[SharedTableHandle, SharedAlarmTableHandle]
