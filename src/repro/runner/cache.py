"""On-disk cache of Step 1 alarm sets.

Detection dominates pipeline runtime, and its output depends only on
(trace, ensemble) — not on the combiner, granularity or similarity
measure.  Caching alarms keyed by ``(archive, trace, ensemble)``
therefore lets a re-labeling sweep with a different combiner skip
Step 1 entirely.

Entries are pickle files written atomically (temp file + ``os.replace``)
so concurrent pool workers never observe a torn entry; a corrupt or
unreadable entry is treated as a miss and evicted.

Cache keys are **engine-agnostic**: the columnar and reference kernels
are asserted byte-identical by the engine parity suite, so an alarm set
computed under one engine is valid under the other and the key hashes
only ``(archive, trace, ensemble)``.  Keys written before the engine
layer additionally hashed the engine name; :meth:`AlarmCache.get`
accepts those as ``legacy`` keys and migrates a hit to its new key
once, so old caches keep paying off after an upgrade.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.detectors.base import Alarm


class AlarmCache:
    """Pickle-per-entry alarm cache rooted at ``cache_dir``."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(
        archive_fingerprint: str,
        trace_name: str,
        ensemble_fingerprint: str,
    ) -> str:
        """Filesystem-safe key for one (archive, trace, ensemble).

        Deliberately independent of the execution engine: engines emit
        identical alarms (enforced by the parity suite), so an entry
        written under one engine must hit under any other.
        """
        digest = hashlib.sha256(
            f"{archive_fingerprint}:{trace_name}:{ensemble_fingerprint}"
            .encode()
        ).hexdigest()[:24]
        return f"alarms-{digest}"

    @staticmethod
    def legacy_keys(
        archive_fingerprint: str,
        trace_name: str,
        ensemble_fingerprint: str,
    ) -> list[str]:
        """Pre-engine-layer keys for the same entry.

        Early versions suffixed the resolved engine name into the
        digest; both historical spellings are candidates for the
        one-time migration in :meth:`get`.
        """
        return [
            "alarms-"
            + hashlib.sha256(
                f"{archive_fingerprint}:{trace_name}:{ensemble_fingerprint}"
                f":{name}".encode()
            ).hexdigest()[:24]
            for name in ("numpy", "python")
        ]

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def get(
        self, key: str, legacy: Sequence[str] = ()
    ) -> Optional[list[Alarm]]:
        """Cached alarms for ``key``, or ``None`` on a miss.

        ``legacy`` lists older keys that denote the same entry (see
        :meth:`legacy_keys`); a hit on one is re-written under ``key``
        so the migration happens exactly once per entry.
        """
        alarms = self._read(key)
        if alarms is not None:
            self.hits += 1
            return alarms
        for old_key in legacy:
            alarms = self._read(old_key)
            if alarms is not None:
                self.put(key, alarms)
                self.hits += 1
                return alarms
        self.misses += 1
        return None

    def _read(self, key: str) -> Optional[list[Alarm]]:
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Torn/corrupt entry (e.g. from a killed worker): evict.
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, alarms: list[Alarm]) -> None:
        """Store ``alarms`` under ``key`` atomically."""
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(alarms, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("alarms-*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.cache_dir.glob("alarms-*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
