"""Batch runner: sharding determinism, caching, resume semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.mawi.archive import SyntheticArchive
from repro.runner import (
    AlarmCache,
    BatchRunner,
    PipelineConfig,
    parallel_map,
)
from repro.runner import worker as worker_module
from repro.runner.worker import csv_path_for

DATES = ["2004-06-01", "2004-06-02", "2004-06-03"]


@pytest.fixture(scope="module")
def small_archive() -> SyntheticArchive:
    return SyntheticArchive(seed=7, trace_duration=15.0)


def _csv_bytes(out_dir, dates):
    return [csv_path_for(out_dir, date).read_bytes() for date in dates]


def double(x: int) -> int:  # module-level so pool workers can import it
    return 2 * x


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(double, [], workers=4) == []

    def test_serial_preserves_order(self):
        assert parallel_map(double, [3, 1, 2]) == [6, 2, 4]

    def test_pool_preserves_order(self):
        items = list(range(12))
        assert parallel_map(double, items, workers=3) == [
            2 * i for i in items
        ]

    def test_progress_fires_per_item(self):
        seen = []
        parallel_map(
            double, [1, 2, 3], progress=lambda d, t, r: seen.append((d, t))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestAlarmCache:
    def test_roundtrip(self, tmp_path, day_alarms):
        cache = AlarmCache(tmp_path)
        key = AlarmCache.make_key("arch", "2004-06-01", "ens")
        assert cache.get(key) is None
        cache.put(key, day_alarms)
        # Entries are stored columnarly; views give the objects back.
        assert cache.get(key).to_alarms() == day_alarms
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_distinct_keys(self):
        base = AlarmCache.make_key("a", "d", "e")
        assert AlarmCache.make_key("a2", "d", "e") != base
        assert AlarmCache.make_key("a", "d2", "e") != base
        assert AlarmCache.make_key("a", "d", "e2") != base

    def test_corrupt_entry_is_evicted_miss(self, tmp_path):
        cache = AlarmCache(tmp_path)
        key = AlarmCache.make_key("arch", "day", "ens")
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()


class TestBatchRunner:
    def test_parallel_matches_serial_byte_identical(
        self, small_archive, tmp_path
    ):
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial = BatchRunner(workers=1, out_dir=str(serial_dir)).run(
            small_archive, DATES
        )
        pooled = BatchRunner(workers=4, out_dir=str(pool_dir)).run(
            small_archive, DATES
        )
        assert [r.date for r in serial.reports] == DATES
        assert [r.date for r in pooled.reports] == DATES
        assert [r.csv_sha256 for r in serial.reports] == [
            r.csv_sha256 for r in pooled.reports
        ]
        assert _csv_bytes(serial_dir, DATES) == _csv_bytes(pool_dir, DATES)

    def test_matches_direct_pipeline_run(self, small_archive):
        from repro.labeling.mawilab import labels_to_csv

        batch = BatchRunner().run(small_archive, DATES[:1])
        pipeline = PipelineConfig().build_pipeline()
        result = pipeline.run(small_archive.day(DATES[0]).trace)
        import hashlib

        expected = hashlib.sha256(
            labels_to_csv(result.labels).encode()
        ).hexdigest()
        assert batch.reports[0].csv_sha256 == expected

    def test_cache_miss_then_hit_across_combiners(
        self, small_archive, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        first = BatchRunner(cache_dir=cache_dir).run(small_archive, DATES)
        assert first.cache_hits == 0
        assert first.cache_misses == len(DATES)

        # Different combiner + granularity: Step 1 output is reused.
        relabel = BatchRunner(
            config=PipelineConfig(strategy="average", granularity="packet"),
            cache_dir=cache_dir,
        ).run(small_archive, DATES)
        assert relabel.cache_hits == len(DATES)
        assert all(r.ok for r in relabel.reports)

        # Cached alarms must label identically to a cache-less run.
        fresh = BatchRunner(
            config=PipelineConfig(strategy="average", granularity="packet")
        ).run(small_archive, DATES)
        assert [r.csv_sha256 for r in relabel.reports] == [
            r.csv_sha256 for r in fresh.reports
        ]

    def test_different_ensemble_does_not_share_cache(
        self, small_archive, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        BatchRunner(cache_dir=cache_dir).run(small_archive, DATES[:1])
        trimmed = BatchRunner(
            config=PipelineConfig(detectors=("kl", "pca")),
            cache_dir=cache_dir,
        ).run(small_archive, DATES[:1])
        assert trimmed.cache_hits == 0

    def test_worker_failure_is_isolated_and_resume_completes(
        self, small_archive, tmp_path, monkeypatch
    ):
        out_dir = str(tmp_path / "out")
        real_inner = worker_module._run_task_inner

        def flaky(task):
            if task.date == DATES[1]:
                raise RuntimeError("simulated worker crash")
            return real_inner(task)

        monkeypatch.setattr(worker_module, "_run_task_inner", flaky)
        crashed = BatchRunner(out_dir=out_dir).run(small_archive, DATES)
        assert [r.status for r in crashed.reports] == ["ok", "failed", "ok"]
        assert "simulated worker crash" in crashed.failures()[0].error
        assert not csv_path_for(out_dir, DATES[1]).exists()

        # Resume after the "crash" recomputes only the failed shard.
        monkeypatch.setattr(worker_module, "_run_task_inner", real_inner)
        resumed = BatchRunner(out_dir=out_dir, resume=True).run(
            small_archive, DATES
        )
        assert [r.status for r in resumed.reports] == [
            "skipped",
            "ok",
            "skipped",
        ]

        # The resumed output set is byte-identical to a clean full run.
        clean_dir = str(tmp_path / "clean")
        clean = BatchRunner(out_dir=clean_dir).run(small_archive, DATES)
        assert [r.csv_sha256 for r in resumed.reports] == [
            r.csv_sha256 for r in clean.reports
        ]
        assert _csv_bytes(out_dir, DATES) == _csv_bytes(clean_dir, DATES)

    def test_resume_requires_out_dir(self):
        with pytest.raises(ValueError):
            BatchRunner(resume=True)

    def test_duplicate_dates_rejected(self, small_archive):
        with pytest.raises(ValueError):
            BatchRunner().run(small_archive, [DATES[0], DATES[0]])

    def test_run_traces_matches_archive_path(self, small_archive):
        by_date = BatchRunner().run(small_archive, DATES[:2])
        traces = [small_archive.day(date).trace for date in DATES[:2]]
        by_trace = BatchRunner().run_traces(traces)
        # Label content is trace-derived only, so the CSVs agree even
        # though the shard keys differ (trace names vs ISO dates).
        assert sorted(r.csv_sha256 for r in by_trace.reports) == sorted(
            r.csv_sha256 for r in by_date.reports
        )

    def test_report_json_and_describe(self, small_archive):
        import json

        batch = BatchRunner().run(small_archive, DATES[:1])
        payload = json.loads(batch.to_json())
        assert payload["n_completed"] == 1
        assert payload["traces"][0]["date"] == DATES[0]
        assert payload["totals"]["n_communities"] > 0
        assert DATES[0] in batch.describe()

    def test_progress_reports_each_shard(self, small_archive):
        seen = []
        BatchRunner().run(
            small_archive,
            DATES[:2],
            progress=lambda done, total, report: seen.append(
                (done, total, report.status)
            ),
        )
        assert seen == [(1, 2, "ok"), (2, 2, "ok")]

    def test_tasks_are_picklable(self, small_archive):
        task = worker_module.TraceTask(
            date=DATES[0], config=PipelineConfig(strategy="majority")
        )
        assert pickle.loads(pickle.dumps(task)) == task

    def test_inline_trace_fingerprint_is_content_derived(self, small_archive):
        from dataclasses import replace

        from repro.net.trace import Trace, TraceMetadata

        day = small_archive.day(DATES[0])
        twin = Trace(
            [replace(p, dport=p.dport ^ 1) for p in day.trace.packets],
            metadata=TraceMetadata(name=day.trace.metadata.name),
        )
        # Same name, packet count and duration — different content must
        # still produce a different alarm-cache fingerprint.
        assert len(twin) == len(day.trace)
        assert worker_module.fingerprint_trace(
            day.trace
        ) != worker_module.fingerprint_trace(twin)
        assert worker_module.fingerprint_trace(
            day.trace
        ) == worker_module.fingerprint_trace(day.trace)
