"""Fig. 7 — attack-ratio time series, 2001-2010.

Paper shapes:
* SCANN's accepted attack ratio stays above its rejected attack ratio
  (2-3x between 2007 and 2010);
* SCANN never has the worst accepted attack ratio among strategies;
* attack ratios drop after 2007 because random-port P2P elephant flows
  are mislabeled "Unknown" by the Table-1 heuristics.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.scann import SCANNStrategy
from repro.core.strategies import (
    AverageStrategy,
    MaximumStrategy,
    MinimumStrategy,
)
from repro.eval.metrics import attack_ratio_by_class
from repro.eval.report import format_table

STRATEGIES = [
    AverageStrategy(),
    MinimumStrategy(),
    MaximumStrategy(),
    SCANNStrategy(),
]


def test_fig7_timeseries(corpus, pipeline, benchmark):
    def compute():
        series = {s.name: [] for s in STRATEGIES}  # (date, acc, rej)
        for day in corpus:
            for strategy in STRATEGIES:
                decisions = strategy.classify(
                    day.result.community_set, pipeline.config_names
                )
                acc, rej = attack_ratio_by_class(
                    day.heuristics, [d.accepted for d in decisions]
                )
                series[strategy.name].append((day.date, acc, rej))
        return series

    series = run_once(benchmark, compute)

    rows = []
    for date, acc, rej in series["scann"]:
        rows.append([date, acc, rej])
    print()
    print(
        format_table(
            ["date", "accepted ratio", "rejected ratio"],
            rows,
            title="Fig. 7 — SCANN attack-ratio time series",
        )
    )

    scann = series["scann"]
    acc = np.array([a for _, a, _ in scann])
    rej = np.array([r for _, _, r in scann])

    # Accepted above rejected on a clear majority of sampled days.
    days_with_accepts = [(a, r) for a, r in zip(acc, rej) if a > 0 or r > 0]
    above = sum(1 for a, r in days_with_accepts if a >= r)
    assert above >= 0.6 * len(days_with_accepts)
    # Aggregate contrast of about the paper's 2-3x.
    assert acc.mean() > 1.5 * rej.mean()

    # SCANN never the worst accepted ratio (mean comparison).
    means = {
        name: np.mean([a for _, a, _ in values])
        for name, values in series.items()
    }
    assert means["scann"] >= min(means.values())

    # Post-2007 degradation from P2P elephant flows (paper Fig. 7).
    early = [a for d, a, _ in scann if d < "2007-01-01"]
    late = [a for d, a, _ in scann if d >= "2007-01-01"]
    if early and late:
        assert np.mean(late) <= np.mean(early) + 0.1
