"""Section 2.2.1 — the Condorcet Jury Theorem curve P_maj(L).

Regenerates the theoretical motivation for combining detectors, both
analytically and by Monte-Carlo simulation: with detector accuracy
p > 0.5 the majority vote's accuracy increases monotonically with the
number of detectors and tends to 1; with p < 0.5 it tends to 0;
p = 0.5 is invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.majority import condorcet_probability
from repro.eval.report import format_table

SIZES = (1, 3, 5, 9, 15, 25, 51)
ACCURACIES = (0.4, 0.5, 0.6, 0.7, 0.9)


def test_condorcet_curve(benchmark):
    def compute():
        analytic = {
            p: [condorcet_probability(n, p) for n in SIZES]
            for p in ACCURACIES
        }
        rng = np.random.default_rng(0)
        trials = 40000
        simulated = {}
        for p in ACCURACIES:
            row = []
            for n in SIZES:
                votes = rng.random((trials, n)) < p
                row.append(float((votes.sum(axis=1) > n // 2).mean()))
            simulated[p] = row
        return analytic, simulated

    analytic, simulated = run_once(benchmark, compute)

    rows = [[f"p={p}"] + [f"{v:.3f}" for v in analytic[p]] for p in ACCURACIES]
    print()
    print(
        format_table(
            ["accuracy", *(f"L={n}" for n in SIZES)],
            rows,
            title="Condorcet P_maj(L) (analytic)",
        )
    )

    for p in ACCURACIES:
        for a, s in zip(analytic[p], simulated[p]):
            assert a == pytest.approx(s, abs=0.02)

    # Monotone increasing above 0.5, decreasing below, flat at 0.5.
    for p in (0.6, 0.7, 0.9):
        values = analytic[p]
        assert all(b > a for a, b in zip(values, values[1:]))
    values = analytic[0.4]
    assert all(b < a for a, b in zip(values, values[1:]))
    assert all(v == pytest.approx(0.5) for v in analytic[0.5])
    # Limits.
    assert analytic[0.7][-1] > 0.99
    assert analytic[0.4][-1] < 0.1
