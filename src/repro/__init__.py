"""MAWILab reproduction.

A full reimplementation of the pipeline described in

    Fontugne, Borgnat, Abry, Fukuda.
    "MAWILab: Combining Diverse Anomaly Detectors for Automated Anomaly
    Labeling and Performance Benchmarking", ACM CoNEXT 2010.

The package combines the alarms of four heterogeneous, unsupervised
anomaly detectors through a graph-based similarity estimator and an
unsupervised combiner (average / minimum / maximum / SCANN), then labels
the analyzed traffic with concise association rules and the MAWILab
taxonomy (anomalous / suspicious / notice / benign).

Subpackages
-----------
``repro.net``
    Network substrate: packets, flows, traces, pcap I/O, anonymization.
``repro.mawi``
    Synthetic MAWI-like archive: background traffic generation, anomaly
    injection and the 2001-2010 event timeline.
``repro.detectors``
    The four detectors combined in the paper (PCA, Gamma, Hough, KL),
    each with three parameter configurations.
``repro.core``
    The paper's contribution: similarity estimator (traffic extractor,
    similarity graph, Louvain community mining) and combiner
    (confidence scores, combination strategies, SCANN).
``repro.rules``
    Modified Apriori association-rule mining with percentage support.
``repro.labeling``
    Table-1 heuristics, MAWILab taxonomy, end-to-end pipeline.
``repro.eval``
    Attack-ratio metrics, gain/cost accounting and detector
    benchmarking against the produced labels.
``repro.engine``
    The execution-engine layer: per-engine kernel registries
    (vectorized NumPy vs pure-Python reference), capability flags and
    scratch allocators, replacing ad-hoc backend switches.
``repro.session``
    :class:`~repro.session.LabelingSession` — the single orchestrator
    exposing offline, archive/batch (shared-memory fan-out) and
    streaming labeling as run modes of one configuration.

Quickstart
----------
>>> from repro.mawi import WorkloadSpec, generate_trace
>>> from repro.labeling import MAWILabPipeline
>>> trace, truth = generate_trace(WorkloadSpec(seed=7))
>>> pipeline = MAWILabPipeline()
>>> result = pipeline.run(trace)
>>> len(result.labels) > 0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
