"""Unit tests for the columnar packet table (repro.net.table)."""

import numpy as np
import pytest

from repro.net.flow import Granularity, aggregate_flows
from repro.net.packet import PROTO_ICMP, PROTO_UDP, SYN
from repro.net.table import (
    COLUMNS,
    PacketTable,
    aggregate_flows_table,
    flow_codes,
)
from repro.net.trace import Trace
from tests.conftest import make_packet


@pytest.fixture
def packets():
    return [
        make_packet(time=2.0, src=1, dst=2, sport=10, dport=80),
        make_packet(time=0.0, src=1, dst=2, sport=10, dport=80, tcp_flags=SYN),
        make_packet(time=1.0, src=3, dst=4, sport=20, dport=53, proto=PROTO_UDP),
        make_packet(
            time=1.5, src=5, dst=6, sport=0, dport=0, proto=PROTO_ICMP,
            icmp_type=8,
        ),
    ]


class TestConstruction:
    def test_from_packets_round_trips(self, packets):
        table = PacketTable.from_packets(packets)
        assert len(table) == 4
        for i, packet in enumerate(packets):
            assert table.packet(i) == packet

    def test_column_dtypes(self, packets):
        table = PacketTable.from_packets(packets)
        assert table.time.dtype == np.float64
        assert table.src.dtype == np.uint32
        assert table.sport.dtype == np.uint16
        assert table.proto.dtype == np.uint8

    def test_column_by_name(self, packets):
        table = PacketTable.from_packets(packets)
        assert table.column("dport")[0] == 80
        with pytest.raises(KeyError):
            table.column("payload")

    def test_mismatched_lengths_rejected(self):
        good = PacketTable.from_packets([make_packet()])
        kwargs = {name: getattr(good, name) for name in COLUMNS}
        kwargs["src"] = np.array([1, 2], dtype=np.uint32)
        with pytest.raises(ValueError):
            PacketTable(**kwargs)

    def test_invalid_protocol_rejected(self):
        good = PacketTable.from_packets([make_packet()])
        kwargs = {name: getattr(good, name) for name in COLUMNS}
        kwargs["proto"] = np.array([99], dtype=np.uint8)
        with pytest.raises(ValueError, match="unsupported protocol"):
            PacketTable(**kwargs)

    def test_immutable(self, packets):
        table = PacketTable.from_packets(packets)
        with pytest.raises(AttributeError):
            table.src = np.zeros(4, dtype=np.uint32)


class TestSortTakeConcat:
    def test_sorted_by_time_is_stable(self):
        table = PacketTable.from_packets(
            [
                make_packet(time=1.0, sport=1),
                make_packet(time=0.0, sport=2),
                make_packet(time=1.0, sport=3),
            ]
        )
        ordered = table.sorted_by_time()
        assert list(ordered.sport) == [2, 1, 3]
        assert ordered.is_time_sorted()

    def test_sorted_table_returned_as_is(self, packets):
        table = PacketTable.from_packets(sorted(packets, key=lambda p: p.time))
        assert table.sorted_by_time() is table

    def test_take_mask_and_indices(self, packets):
        table = PacketTable.from_packets(packets)
        by_mask = table.take(table.proto == PROTO_UDP)
        by_index = table.take(np.array([2]))
        assert len(by_mask) == 1
        assert by_mask.packet(0) == by_index.packet(0) == packets[2]

    def test_concatenate(self, packets):
        one = PacketTable.from_packets(packets[:2])
        two = PacketTable.from_packets(packets[2:])
        merged = PacketTable.concatenate([one, two])
        assert [merged.packet(i) for i in range(4)] == packets

    def test_concatenate_empty(self):
        assert len(PacketTable.concatenate([])) == 0


class TestFlowCodes:
    def test_codes_number_by_first_appearance(self, packets):
        table = PacketTable.from_packets(packets)
        codes, keys = flow_codes(table, Granularity.UNIFLOW)
        # Three distinct uniflows, first-appearance numbering.
        assert list(codes) == [0, 0, 1, 2]
        assert len(keys) == 3
        assert keys[0].dport == 80

    def test_biflow_codes_merge_directions(self):
        fwd = make_packet(time=0.0, src=1, dst=2, sport=10, dport=80)
        rev = make_packet(time=1.0, src=2, dst=1, sport=80, dport=10)
        table = PacketTable.from_packets([fwd, rev])
        codes, keys = flow_codes(table, Granularity.BIFLOW)
        assert list(codes) == [0, 0]
        assert len(keys) == 1

    def test_packet_granularity_rejected(self, packets):
        table = PacketTable.from_packets(packets)
        with pytest.raises(ValueError):
            flow_codes(table, Granularity.PACKET)

    def test_aggregate_matches_reference(self, packets):
        ordered = sorted(packets, key=lambda p: p.time)
        table = PacketTable.from_packets(ordered)
        for granularity in (Granularity.UNIFLOW, Granularity.BIFLOW):
            assert aggregate_flows_table(table, granularity) == aggregate_flows(
                ordered, granularity
            )


class TestTraceBacking:
    def test_trace_exposes_table(self, packets):
        trace = Trace(packets)
        assert isinstance(trace.table, PacketTable)
        assert trace.table.is_time_sorted()
        assert len(trace.table) == len(trace)

    def test_from_table_equals_from_packets(self, packets):
        via_objects = Trace(packets)
        via_table = Trace.from_table(PacketTable.from_packets(packets))
        assert via_objects.packets == via_table.packets

    def test_lazy_packets_are_cached(self, packets):
        trace = Trace(packets)
        assert trace[0] is trace[0]
        assert trace.packets is trace.packets

    def test_getitem_supports_slices_and_negative_indices(self, packets):
        trace = Trace(packets)
        ordered = sorted(packets, key=lambda p: p.time)
        assert trace[0:2] == tuple(ordered[0:2])
        assert trace[::-1] == tuple(ordered[::-1])
        assert trace[-1] == ordered[-1]

    def test_merge_traces_columnar(self, packets):
        from repro.net.trace import merge_traces

        merged = merge_traces([Trace(packets[:2]), Trace(packets[2:])])
        assert merged.packets == Trace(packets).packets

    def test_trace_pickles_for_pool_workers(self, packets):
        """BatchRunner.run_traces ships traces into pool workers."""
        import pickle

        trace = Trace(packets)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.packets == trace.packets
        assert clone.flows().keys() == trace.flows().keys()
