"""The serving layer: feeds, backpressure, HTTP surface, parity.

The daemon's contract, end to end: a fully ingested feed serves
``/labels`` byte-identical to the offline ``repro label`` CSV, a slow
consumer blocks its producer at the configured ring bound instead of
growing memory, queries never touch the pipeline, and shutdown drains
cleanly.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServeError
from repro.labeling.mawilab import labels_to_csv
from repro.net.table import COLUMNS, PacketTable
from repro.serve import LabelServer, LabelingService
from repro.serve.daemon import _FeedRing, _p95
from repro.serve.http import rows_to_table, table_to_rows
from repro.stream.window import chunk_table

DATE = "2004-06-01"


@pytest.fixture(scope="module")
def served(archive_day, pipeline_result):
    """One service with the shared archive day fully ingested, plus
    its HTTP server — the expensive boot shared by the read-only
    tests below."""
    service = LabelingService(window=archive_day.trace.duration * 2)
    service.open_feed("day", date=DATE)
    for chunk in chunk_table(archive_day.trace.table, 4096):
        service.push("day", chunk)
    service.close_feed("day")
    server = LabelServer(service).start_background()
    yield service, server, f"http://127.0.0.1:{server.port}"
    server.stop_background()
    service.shutdown()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        body = response.read().decode()
        if response.headers.get("Content-Type") == "text/csv":
            return body
        return json.loads(body)


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


class TestFeedRing:
    def test_bounded_push_blocks_until_popped(self):
        ring = _FeedRing(max_packets=100)
        ring.push(_packets(60))

        def producer():
            ring.push(_packets(60))  # 60 + 60 > 100: must block

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        assert thread.is_alive()  # still blocked
        assert ring.depth_packets == 60
        assert ring.pop() is not None
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert ring.peak_packets <= 100
        assert ring.pushes_blocked == 1
        assert ring.blocked_seconds > 0

    def test_oversized_chunk_admitted_into_empty_ring(self):
        ring = _FeedRing(max_packets=10)
        ring.push(_packets(50))  # would deadlock forever otherwise
        assert ring.depth_packets == 50
        assert ring.pop() is not None

    def test_push_timeout_raises(self):
        ring = _FeedRing(max_packets=10)
        ring.push(_packets(10))
        with pytest.raises(ServeError, match="timed out"):
            ring.push(_packets(5), timeout=0.05)

    def test_closed_ring_rejects_push_and_drains_pop(self):
        ring = _FeedRing(max_packets=100)
        ring.push(_packets(3))
        ring.close()
        with pytest.raises(ServeError, match="closed"):
            ring.push(_packets(1))
        assert len(ring.pop()) == 3
        assert ring.pop() is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ServeError):
            _FeedRing(max_packets=0)


def _packets(n: int) -> PacketTable:
    return PacketTable(
        time=np.arange(n, dtype=np.float64),
        src=np.full(n, 0x0A000001, np.uint32),
        dst=np.full(n, 0x0A000002, np.uint32),
        sport=np.full(n, 1234, np.uint16),
        dport=np.full(n, 80, np.uint16),
        proto=np.full(n, 6, np.uint8),
        size=np.full(n, 100, np.int64),
        tcp_flags=np.full(n, 16, np.uint8),
        icmp_type=np.zeros(n, np.uint8),
    )


class TestWireFormat:
    def test_rows_round_trip(self, archive_day):
        table = archive_day.trace.table
        restored = rows_to_table(table_to_rows(table))
        for name in COLUMNS:
            np.testing.assert_array_equal(
                getattr(restored, name), getattr(table, name)
            )

    def test_empty_rows(self):
        assert len(rows_to_table([])) == 0

    def test_ragged_rows_rejected(self):
        with pytest.raises(ServeError, match="fields"):
            rows_to_table([[0.0, 1, 2]])


class TestParity:
    def test_served_csv_identical_to_offline_label(
        self, served, pipeline_result
    ):
        """The acceptance anchor: /labels for a fully ingested day is
        record-identical to the offline `repro label` CSV."""
        _, _, base = served
        offline = labels_to_csv(pipeline_result.labels)
        assert _get(base, f"/labels?date={DATE}&format=csv") == offline

    def test_index_store_matches_offline(self, served, pipeline_result):
        service, _, _ = served
        store = service.index.store_for(DATE)
        assert labels_to_csv(store.to_records()) == labels_to_csv(
            pipeline_result.labels
        )


class TestHTTP:
    def test_health(self, served):
        _, _, base = served
        health = _get(base, "/health")
        assert health["status"] == "ok"
        assert health["days_published"] == 1
        assert health["feeds_failed"] == []

    def test_metrics(self, served, archive_day):
        _, _, base = served
        metrics = _get(base, "/metrics")
        assert metrics["ingest"]["packets"] == len(archive_day.trace)
        assert metrics["ingest"]["windows"] >= 1
        assert metrics["latency"]["p95_commit_seconds"] > 0
        queue = metrics["queues"]["day"]
        assert queue["peak_packets"] <= queue["max_packets"]
        assert metrics["index"]["days"] == 1
        assert metrics["http"]["requests"] >= 1

    def test_feeds_listing(self, served, archive_day):
        _, _, base = served
        feeds = _get(base, "/feeds")["feeds"]
        assert [f["name"] for f in feeds] == ["day"]
        assert feeds[0]["state"] == "closed"
        assert feeds[0]["packets_in"] == len(archive_day.trace)

    def test_labels_json_filters(self, served, pipeline_result):
        _, _, base = served
        rows = _get(base, f"/labels?date={DATE}")["labels"]
        assert len(rows) == len(pipeline_result.labels)
        anomalous = _get(base, f"/labels?date={DATE}&taxonomy=anomalous")
        assert anomalous["count"] == len(pipeline_result.anomalous())
        limited = _get(base, f"/labels?date={DATE}&limit=2")
        assert limited["count"] == 2

    def test_labels_src_filter(self, served, pipeline_result):
        from repro.net.addresses import ip_to_str

        _, _, base = served
        record = next(
            r
            for r in pipeline_result.labels
            if any(rule.src is not None for rule in r.summary.rules)
        )
        src = next(
            rule.src for rule in record.summary.rules if rule.src is not None
        )
        rows = _get(base, f"/labels?date={DATE}&src={ip_to_str(src)}")
        assert rows["count"] >= 1
        assert any(
            row["community"] == record.community_id
            for row in rows["labels"]
        )

    def test_unknown_route_404(self, served):
        _, _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/nope")
        assert excinfo.value.code == 404

    def test_bad_query_400(self, served):
        _, _, base = served
        for path in (
            f"/labels?date={DATE}&format=yaml",
            f"/labels?date={DATE}&t0=abc",
            f"/labels?date={DATE}&taxonomy=bogus",
            "/labels?format=csv",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, path)
            assert excinfo.value.code == 400, path

    def test_csv_for_unknown_date_404(self, served):
        _, _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/labels?date=1999-01-01&format=csv")
        assert excinfo.value.code == 404

    def test_duplicate_feed_open_409(self, served):
        _, _, base = served
        _post(base, "/feeds/dup", {"date": "2004-06-09"})
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/feeds/dup", {})
            assert excinfo.value.code == 409
        finally:
            _post(base, "/feeds/dup/close", {})

    def test_push_to_unknown_feed_409(self, served):
        _, _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/feeds/ghost/packets", {"packets": []})
        assert excinfo.value.code == 409

    def test_http_ingest_round_trip(self, served, archive_day):
        """The full wire path labels identically to direct pushes."""
        service, _, base = served
        _post(base, "/feeds/wire", {"date": "2004-06-10"})
        for chunk in chunk_table(archive_day.trace.table, 8192):
            _post(
                base,
                "/feeds/wire/packets",
                {"packets": table_to_rows(chunk)},
            )
        status = _post(base, "/feeds/wire/close", {})
        assert status["state"] == "closed"
        assert labels_to_csv(
            service.index.store_for("2004-06-10").to_records()
        ) == labels_to_csv(service.index.store_for(DATE).to_records())


class TestBackpressure:
    def test_peak_ring_bounded_while_consumer_lags(self, archive_day):
        """The acceptance bound: a producer outrunning the labeler
        blocks at the configured ring size — the peak never exceeds
        the bound, and the producer demonstrably waited."""
        bound = 2048
        table = archive_day.trace.table
        with LabelingService(
            window=archive_day.trace.duration / 4,
            max_ring_packets=bound,
        ) as service:
            feed = service.open_feed("slow", date="2004-06-11")
            for chunk in chunk_table(table, 512):
                service.push("slow", chunk)
            service.close_feed("slow")
            status = feed.status()
        assert status["queue"]["peak_packets"] <= bound
        assert status["queue"]["pushes_blocked"] > 0
        assert status["queue"]["blocked_seconds"] > 0
        assert status["packets_in"] == len(table)


class TestServiceLifecycle:
    def test_shutdown_idempotent_and_terminal(self, archive_day):
        service = LabelingService(window=60.0)
        service.open_feed("f", date="2004-06-12")
        service.push("f", archive_day.trace.table)
        service.shutdown()
        service.shutdown()
        with pytest.raises(ServeError):
            service.open_feed("g")

    def test_unknown_feed_rejected(self):
        with LabelingService(window=60.0) as service:
            with pytest.raises(ServeError, match="unknown feed"):
                service.push("ghost", PacketTable.empty())

    def test_failed_feed_surfaces_on_close(self, archive_day):
        service = LabelingService(window=60.0)
        feed = service.open_feed("boom", date="2004-06-13")

        def exploding(*a, **k):
            raise RuntimeError("kaput")

        # Safe to patch: the consumer thread is parked in ring.pop()
        # until the first push, and _emit only fires per window.
        feed.pipeline._emit = exploding
        service.push("boom", archive_day.trace.table)
        with pytest.raises(ServeError, match="failed while labeling"):
            service.close_feed("boom")
        assert service.health()["status"] == "degraded"
        service.shutdown()

    def test_close_feed_persists_day(self, tmp_path, archive_day):
        from repro.labeling.database import LabelDatabase

        with LabelingService(
            window=archive_day.trace.duration * 2,
            db_root=str(tmp_path / "db"),
        ) as service:
            service.open_feed("persist", date=DATE)
            service.push("persist", archive_day.trace.table)
            service.close_feed("persist")
        db = LabelDatabase(str(tmp_path / "db"))
        assert db.dates() == [DATE]
        assert db.load_day_records(DATE)


class TestP95:
    def test_p95_helper(self):
        assert _p95([]) == 0.0
        assert _p95([5.0]) == 5.0
        values = [float(i) for i in range(1, 101)]
        assert _p95(values) == 95.0


class TestServeCLI:
    def test_parser_wires_serve_command(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--feeds",
                "a:2004-06-01",
                "--feeds",
                "b",
                "--schedule",
                "60",
                "--db-root",
                "db",
                "--max-ring-packets",
                "1024",
            ]
        )
        assert args.port == 0
        assert args.feeds == ["a:2004-06-01", "b"]
        assert args.schedule == 60.0
        assert args.max_ring_packets == 1024
        assert args.func.__name__ == "_cmd_serve"

    def test_schedule_requires_db_root(self, capsys):
        from repro.cli import main

        assert main(["serve", "--schedule", "60"]) == 2
        assert "--db-root" in capsys.readouterr().err
